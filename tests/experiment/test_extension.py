"""Tests for the simulated extension's report grid and ad replacement."""

import numpy as np
import pytest

from repro.ads.inventory import Ad
from repro.ads.replacement import ReplacementPolicy
from repro.experiment.extension import SimulatedExtension
from repro.traffic.events import HostKind, Request
from repro.utils.timeutils import minutes


class FakeBackend:
    """Records reports; returns a fixed replacement list."""

    def __init__(self, ads=None):
        self.reports = []
        self.ads = ads if ads is not None else []

    def handle_report(self, user_id, reported, now):
        self.reports.append((user_id, list(reported), now))
        return list(self.ads)


def _ad(ad_id=0, size=(300, 250)):
    return Ad(
        ad_id=ad_id, landing_domain="x.com", categories=np.array([1.0]),
        width=size[0], height=size[1], created_day=0,
    )


def _req(t, host="a.com", user=0):
    return Request(
        user_id=user, timestamp=t, hostname=host,
        kind=HostKind.SITE, site_domain=host,
    )


def _extension(backend, user=0, attempt_prob=1.0):
    return SimulatedExtension(
        user_id=user,
        backend=backend,
        policy=ReplacementPolicy(0.1),
        report_interval_seconds=minutes(10),
        list_ttl_seconds=minutes(10),
        attempt_prob=attempt_prob,
        rng=np.random.default_rng(0),
    )


class TestReportGrid:
    def test_first_request_anchors_no_report(self):
        backend = FakeBackend()
        ext = _extension(backend)
        ext.on_request(_req(100.0))
        assert backend.reports == []

    def test_report_after_interval(self):
        backend = FakeBackend()
        ext = _extension(backend)
        ext.on_request(_req(0.0))
        ext.on_request(_req(minutes(10) + 1))
        assert len(backend.reports) == 1
        _, reported, now = backend.reports[0]
        assert now == minutes(10)            # tick time, not arrival time
        assert [h for _, h in reported] == ["a.com"]

    def test_missed_ticks_caught_up_lazily(self):
        backend = FakeBackend()
        ext = _extension(backend)
        ext.on_request(_req(0.0, host="a.com"))
        # next activity hours later: exactly one report (the tick right
        # after the pending data), idle ticks are skipped
        ext.on_request(_req(minutes(300), host="b.com"))
        assert len(backend.reports) == 1
        assert backend.reports[0][2] == minutes(10)

    def test_pending_after_tick_held_back(self):
        backend = FakeBackend()
        ext = _extension(backend)
        ext.on_request(_req(0.0, host="a.com"))
        ext.on_request(_req(minutes(9), host="b.com"))
        ext.on_request(_req(minutes(11), host="c.com"))
        # tick at minute 10 reports a and b but not c
        _, reported, _ = backend.reports[0]
        assert [h for _, h in reported] == ["a.com", "b.com"]

    def test_wrong_user_rejected(self):
        ext = _extension(FakeBackend(), user=1)
        with pytest.raises(ValueError):
            ext.on_request(_req(0.0, user=2))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SimulatedExtension(
                0, FakeBackend(), ReplacementPolicy(),
                report_interval_seconds=0,
            )
        with pytest.raises(ValueError):
            SimulatedExtension(
                0, FakeBackend(), ReplacementPolicy(), attempt_prob=2.0
            )


class TestReplacement:
    def _primed_extension(self, ads, attempt_prob=1.0):
        backend = FakeBackend(ads=ads)
        ext = _extension(backend, attempt_prob=attempt_prob)
        ext.on_request(_req(0.0))
        ext.on_request(_req(minutes(10) + 1))  # triggers report -> list
        return ext

    def test_no_list_no_replacement(self):
        ext = _extension(FakeBackend())
        assert ext.on_ad_detected(50.0, (300, 250)) is None
        assert ext.stats.ads_detected == 1
        assert ext.stats.ads_replaced == 0

    def test_fresh_list_replaces_matching_size(self):
        ext = self._primed_extension([_ad(1, (300, 250))])
        chosen = ext.on_ad_detected(minutes(12), (300, 250))
        assert chosen is not None and chosen.ad_id == 1
        assert ext.stats.ads_replaced == 1

    def test_size_mismatch_keeps_original(self):
        ext = self._primed_extension([_ad(1, (728, 90))])
        assert ext.on_ad_detected(minutes(12), (300, 250)) is None

    def test_stale_list_not_used(self):
        ext = self._primed_extension([_ad(1, (300, 250))])
        late = minutes(10) + minutes(10) + minutes(5)  # > ttl past receipt
        assert ext.on_ad_detected(late, (300, 250)) is None

    def test_attempt_probability_zero_never_replaces(self):
        ext = self._primed_extension(
            [_ad(1, (300, 250))], attempt_prob=0.0
        )
        for _ in range(20):
            assert ext.on_ad_detected(minutes(12), (300, 250)) is None

    def test_empty_backend_list_keeps_old_list(self):
        """A report returning no ads must not clear a previous list."""
        backend = FakeBackend(ads=[_ad(1, (300, 250))])
        ext = _extension(backend)
        ext.on_request(_req(0.0))
        ext.on_request(_req(minutes(10) + 1))      # list installed
        backend.ads = []                            # backend goes quiet
        ext.on_request(_req(minutes(20) + 1))      # second report: empty
        # old list is stale by now, so no replacement — but no crash either
        assert ext.on_ad_detected(minutes(21), (300, 250)) is None
