"""Tests for the end-to-end experiment runner (slow-ish; small config)."""

import pytest

from repro.experiment import ExperimentConfig, ExperimentRunner


@pytest.fixture(scope="module")
def result_and_runner():
    config = ExperimentConfig.small(seed=99)
    config.profiling_days = 2
    runner = ExperimentRunner(config)
    return runner.run(), runner


class TestWorldConstruction:
    def test_build_cached(self):
        runner = ExperimentRunner(ExperimentConfig.small())
        assert runner.build() is runner.build()

    def test_world_pieces_consistent(self, result_and_runner):
        _, runner = result_and_runner
        world = runner.build()
        assert len(world.extensions) == len(world.population)
        assert world.labelled
        coverage = len(world.labelled) / len(world.web.all_hostnames())
        assert coverage == pytest.approx(0.106, abs=0.01)


class TestRun:
    def test_both_arms_served(self, result_and_runner):
        result, _ = result_and_runner
        assert result.ad_network.impressions > 100
        assert result.eavesdropper.impressions > 10

    def test_replacements_counted_consistently(self, result_and_runner):
        result, _ = result_and_runner
        assert result.ads_replaced == result.eavesdropper.impressions
        assert (
            result.ads_detected
            == result.eavesdropper.impressions
            + result.ad_network.impressions
        )

    def test_ctrs_in_plausible_range(self, result_and_runner):
        result, _ = result_and_runner
        # expected CTRs are variance-free; both arms must land in the
        # paper's ballpark (0.05%..0.5%)
        assert 0.0005 < result.ad_network.expected_ctr < 0.005
        assert 0.0005 < result.eavesdropper.expected_ctr < 0.005

    def test_arms_comparable(self, result_and_runner):
        """The paper's headline: eavesdropper profiles are comparable to
        the ad-network's (CTR ratio near 1)."""
        result, _ = result_and_runner
        ratio = (
            result.eavesdropper.expected_ctr
            / result.ad_network.expected_ctr
        )
        assert 0.6 < ratio < 1.8

    def test_daily_retraining_happened(self, result_and_runner):
        result, runner = result_and_runner
        assert len(result.train_stats) == runner.config.profiling_days
        world = runner.build()
        expected_days = list(
            range(
                runner.config.first_profiling_day - 1,
                runner.config.first_profiling_day
                + runner.config.profiling_days - 1,
            )
        )
        assert world.profiler.trained_days == expected_days

    def test_reports_flowed(self, result_and_runner):
        result, _ = result_and_runner
        assert result.reports_sent > 50

    def test_topic_series_populated(self, result_and_runner):
        result, _ = result_and_runner
        assert result.topics_visited.days
        assert result.topics_ad_network.days
        assert result.topics_eavesdropper.days
        for series in (
            result.topics_visited,
            result.topics_ad_network,
            result.topics_eavesdropper,
        ):
            for day in series.days:
                assert series.shares(day).sum() == pytest.approx(100.0)

    def test_summary_renders(self, result_and_runner):
        result, _ = result_and_runner
        text = result.summary()
        assert "eavesdropper ads" in text
        assert "%" in text

    def test_paired_test_present(self, result_and_runner):
        result, _ = result_and_runner
        assert result.paired is not None
        assert 0.0 <= result.paired.p_value <= 1.0
        assert result.proportions is not None

    def test_counterfactual_bounds(self, result_and_runner):
        """Random-ad floor < both arms < oracle-ad ceiling."""
        result, _ = result_and_runner
        floor = result.shadow_random.expected_ctr
        ceiling = result.shadow_oracle.expected_ctr
        assert floor > 0
        assert ceiling > floor
        for arm in (result.eavesdropper, result.ad_network):
            assert floor < arm.expected_ctr < ceiling

    def test_shadow_arms_do_not_perturb_experiment(self):
        """Shadow sampling uses its own stream: main-arm outcomes equal a
        run where shadow logging is disabled (checked via determinism of
        the real arms against the recorded per-user tallies)."""
        config = ExperimentConfig.small(seed=17)
        config.profiling_days = 1
        a = ExperimentRunner(config).run()
        config_b = ExperimentConfig.small(seed=17)
        config_b.profiling_days = 1
        b = ExperimentRunner(config_b).run()
        assert a.eavesdropper.by_user_day == b.eavesdropper.by_user_day
        assert a.ad_network.by_user_day == b.ad_network.by_user_day


class TestStoreIntegration:
    def test_each_profiling_day_publishes_a_generation(self, tmp_path):
        from repro.store import ArtifactStore

        config = ExperimentConfig.small(seed=11)
        config.profiling_days = 2
        store = ArtifactStore(tmp_path / "models")
        runner = ExperimentRunner(config, store=store)
        runner.run()
        records = store.list_generations()
        assert len(records) == config.profiling_days
        assert store.latest_id() == records[-1].generation_id
        # Generations carry the day they were trained from, in order.
        days = [r.created_from_day for r in records]
        assert days == sorted(days)
        assert runner.supervisor.history[-1].generation == \
            records[-1].generation_id


class TestFlightIntegration:
    def test_retrain_lifecycle_lands_in_flight_ring(self):
        from repro.obs.flight import FlightRecorder

        config = ExperimentConfig.small(seed=11)
        config.profiling_days = 1
        flight = FlightRecorder()
        runner = ExperimentRunner(config, flight=flight)
        runner.run()
        assert runner.supervisor.flight is flight
        kinds = {event["kind"] for event in flight.events()}
        assert "state" in kinds
        names = {event["name"] for event in flight.events()}
        assert "retrain-published" in names


class TestDeterminism:
    def test_same_seed_same_result(self):
        config = ExperimentConfig.small(seed=5)
        config.profiling_days = 1
        a = ExperimentRunner(config).run()
        config_b = ExperimentConfig.small(seed=5)
        config_b.profiling_days = 1
        b = ExperimentRunner(config_b).run()
        assert a.eavesdropper.impressions == b.eavesdropper.impressions
        assert a.eavesdropper.clicks == b.eavesdropper.clicks
        assert a.ad_network.impressions == b.ad_network.impressions
        assert a.ad_network.clicks == b.ad_network.clicks
