"""Tests for the profiling back-end."""

import pytest

from repro.ads.inventory import Ad, AdDatabase
from repro.ads.selection import EavesdropperSelector, SelectorConfig
from repro.core.pipeline import NetworkObserverProfiler, PipelineConfig
from repro.core.skipgram import SkipGramConfig
from repro.experiment.backend import Backend
from repro.utils.timeutils import minutes


@pytest.fixture()
def backend(labelled, trace, web):
    profiler = NetworkObserverProfiler(
        labelled,
        config=PipelineConfig(skipgram=SkipGramConfig(epochs=3, seed=0)),
    )
    profiler.train_on_day(trace, 0)
    ads = []
    for i, (host, vec) in enumerate(sorted(labelled.items())[:50]):
        ads.append(
            Ad(
                ad_id=i, landing_domain=host, categories=vec,
                width=300, height=250, created_day=0,
            )
        )
    selector = EavesdropperSelector(
        labelled, AdDatabase(ads), SelectorConfig(ads_per_report=5)
    )
    return Backend(profiler, selector)


class TestReports:
    def test_report_returns_ads(self, backend, trace):
        sequences = trace.user_sequences(1)
        user_id = sorted(sequences)[0]
        requests = sequences[user_id]
        now = requests[-1].timestamp
        reported = [(r.timestamp, r.hostname) for r in requests]
        ads = backend.handle_report(user_id, reported, now)
        assert len(ads) == 5
        assert backend.stats.reports_received == 1
        assert backend.stats.profiles_computed == 1

    def test_empty_report_no_history_is_empty_profile(self, backend):
        ads = backend.handle_report(0, [], now=1000.0)
        assert ads == []
        assert backend.stats.empty_profiles == 1

    def test_profile_uses_only_last_window(self, backend, trace):
        sequences = trace.user_sequences(1)
        user_id = sorted(sequences)[0]
        requests = sequences[user_id]
        reported = [(r.timestamp, r.hostname) for r in requests]
        # "now" far past everything: session window is empty
        far_future = requests[-1].timestamp + minutes(120)
        ads = backend.handle_report(user_id, reported, far_future)
        assert ads == []

    def test_history_accumulates_across_reports(self, backend):
        host_a = backend.profiler.embeddings.vocabulary.host_of(0)
        host_b = backend.profiler.embeddings.vocabulary.host_of(1)
        backend.handle_report(7, [(100.0, host_a)], now=110.0)
        ads = backend.handle_report(7, [(200.0, host_b)], now=210.0)
        # both hosts are within the 20-minute window at t=210
        session = backend._session_hosts(7, 210.0)
        assert set(session) == {host_a, host_b}
        assert ads  # profile is non-empty

    def test_history_horizon_trims(self, backend):
        host = backend.profiler.embeddings.vocabulary.host_of(0)
        backend.handle_report(3, [(0.0, host)], now=10.0)
        backend.handle_report(
            3, [(200_000.0, host)], now=200_010.0
        )
        assert all(
            t >= 200_010.0 - backend.history_horizon
            for t, _ in backend._history[3]
        )
