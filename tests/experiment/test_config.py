"""Tests for experiment configuration."""

import pytest

from repro.experiment.config import ExperimentConfig


class TestValidation:
    def test_defaults_valid(self):
        ExperimentConfig().validate()

    def test_small_and_paper_scaled_valid(self):
        ExperimentConfig.small().validate()
        ExperimentConfig.paper_scaled().validate()

    def test_phase_lengths(self):
        with pytest.raises(ValueError):
            ExperimentConfig(collection_days=0).validate()
        with pytest.raises(ValueError):
            ExperimentConfig(profiling_days=0).validate()

    def test_coverage_bounds(self):
        with pytest.raises(ValueError):
            ExperimentConfig(ontology_coverage=1.5).validate()

    def test_attempt_prob_bounds(self):
        with pytest.raises(ValueError):
            ExperimentConfig(replacement_attempt_prob=-0.1).validate()

    def test_nested_configs_validated(self):
        config = ExperimentConfig()
        config.web.num_sites = 0
        with pytest.raises(ValueError):
            config.validate()

    def test_derived_days(self):
        config = ExperimentConfig(collection_days=3, profiling_days=7)
        assert config.total_days == 10
        assert config.first_profiling_day == 3

    def test_small_is_smaller(self):
        small = ExperimentConfig.small()
        paper = ExperimentConfig.paper_scaled()
        assert small.web.num_sites < paper.web.num_sites
        assert small.population.num_users < paper.population.num_users
        assert small.total_days < paper.total_days

    def test_paper_constants_preserved_at_all_scales(self):
        for config in (ExperimentConfig.small(), ExperimentConfig.paper_scaled()):
            assert config.pipeline.session_minutes == 20.0
            assert config.pipeline.report_interval_minutes == 10.0
            assert config.selector.ads_per_report == 20
            assert config.ontology_coverage == 0.106
