"""Tests for the decoy-injection defense."""

import pytest

from repro.defense.decoys import DecoyConfig, DecoyInjector, evaluate_defense
from repro.core.pipeline import PipelineConfig
from repro.core.skipgram import SkipGramConfig
from repro.traffic import TraceGenerator


@pytest.fixture()
def injector(web):
    return DecoyInjector(web, DecoyConfig(decoy_rate=1.0))


class TestProtect:
    def test_adds_roughly_rate_decoys(self, web, trace, rng):
        injector = DecoyInjector(web, DecoyConfig(decoy_rate=2.0))
        requests = next(iter(trace.user_sequences(0).values()))
        protected = injector.protect(requests, rng)
        overhead = (len(protected) - len(requests)) / len(requests)
        assert 1.0 < overhead < 3.0

    def test_zero_rate_is_identity(self, web, trace, rng):
        injector = DecoyInjector(web, DecoyConfig(decoy_rate=0.0))
        requests = next(iter(trace.user_sequences(0).values()))
        assert injector.protect(requests, rng) == requests

    def test_output_sorted_by_time(self, injector, trace, rng):
        requests = next(iter(trace.user_sequences(0).values()))
        protected = injector.protect(requests, rng)
        times = [r.timestamp for r in protected]
        assert times == sorted(times)

    def test_genuine_requests_preserved(self, injector, trace, rng):
        requests = next(iter(trace.user_sequences(0).values()))
        protected = injector.protect(requests, rng)
        for request in requests:
            assert request in protected

    def test_empty_stream(self, injector, rng):
        assert injector.protect([], rng) == []

    def test_chaff_avoids_browsed_verticals(self, web, trace, rng):
        injector = DecoyInjector(
            web, DecoyConfig(decoy_rate=3.0, strategy="chaff")
        )
        requests = next(iter(trace.user_sequences(0).values()))
        browsed = {
            web.site(r.site_domain).vertical
            for r in requests
            if r.is_content() and r.site_domain in
            {s.domain for s in web.content_sites}
        }
        protected = injector.protect(requests, rng)
        decoys = [r for r in protected if r not in set(requests)]
        assert decoys
        decoy_verticals = {
            web.site(r.site_domain).vertical for r in decoys
        }
        assert not (decoy_verticals & browsed)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            DecoyConfig(decoy_rate=-1).validate()
        with pytest.raises(ValueError):
            DecoyConfig(strategy="magic").validate()


class TestProtectTrace:
    def test_trace_grows(self, injector, trace, rng):
        protected = injector.protect_trace(trace, rng)
        assert protected.num_requests > trace.num_requests
        assert len(protected) == len(trace)

    def test_user_ids_preserved(self, injector, trace, rng):
        protected = injector.protect_trace(trace, rng)
        assert protected.user_ids() == trace.user_ids()


class TestEvaluateDefense:
    def test_defense_degrades_fidelity(
        self, web, population, labelled, rng
    ):
        trace = TraceGenerator(web, population, seed=41).generate(2)
        injector = DecoyInjector(
            web, DecoyConfig(decoy_rate=3.0, strategy="chaff")
        )
        report = evaluate_defense(
            web, trace, labelled, injector, rng,
            pipeline_config=PipelineConfig(
                skipgram=SkipGramConfig(epochs=6, seed=0)
            ),
            max_windows=120,
        )
        assert report.overhead > 1.5
        # Judge on centered (background-free) fidelity: raw affinity is
        # dominated by the shared core categories and barely moves.
        baseline = report.baseline_fidelity.mean_centered_affinity
        defended = report.fidelity.mean_centered_affinity
        assert baseline - defended > 0.25 * baseline, (
            "heavy chaff must measurably blunt the profiler"
        )

    def test_report_fields(self, web, population, labelled, rng):
        trace = TraceGenerator(web, population, seed=43).generate(2)
        injector = DecoyInjector(web, DecoyConfig(decoy_rate=0.5))
        report = evaluate_defense(
            web, trace, labelled, injector, rng,
            pipeline_config=PipelineConfig(
                skipgram=SkipGramConfig(epochs=4, seed=0)
            ),
            max_windows=60,
        )
        assert report.baseline_fidelity.sessions_profiled > 0
        assert report.fidelity.sessions_profiled > 0
        assert 0.2 < report.overhead < 1.0
