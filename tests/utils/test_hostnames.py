"""Tests for hostname parsing helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.hostnames import (
    is_valid_hostname,
    normalize_hostname,
    public_suffix,
    registrable_domain,
    second_level_domain,
)


class TestNormalize:
    def test_lowercases(self):
        assert normalize_hostname("WWW.Example.COM") == "www.example.com"

    def test_strips_trailing_dot(self):
        assert normalize_hostname("example.com.") == "example.com"

    def test_strips_whitespace(self):
        assert normalize_hostname("  example.com \n") == "example.com"

    def test_idempotent(self):
        once = normalize_hostname(" A.B.C. ")
        assert normalize_hostname(once) == once


class TestValidity:
    @pytest.mark.parametrize(
        "hostname",
        [
            "example.com",
            "mail.google.com",
            "ds-aksb-a.akamaihd.net",
            "xn--sinnimo-n0a.es",
            "a.b",
            "under_score.example.org",
        ],
    )
    def test_valid(self, hostname):
        assert is_valid_hostname(hostname)

    @pytest.mark.parametrize(
        "hostname",
        [
            "",
            "nodots",
            "-leading.example.com",
            "trailing-.example.com",
            "exa mple.com",
            "1.2.3.4",          # IP, not a hostname
            "a." + "b" * 64 + ".com",   # label too long
            "x" * 260 + ".com",         # name too long
        ],
    )
    def test_invalid(self, hostname):
        assert not is_valid_hostname(hostname)


class TestRegistrableDomain:
    @pytest.mark.parametrize(
        ("hostname", "expected"),
        [
            ("mail.google.com", "google.com"),
            ("google.com", "google.com"),
            ("ds-aksb-a.akamaihd.net", "akamaihd.net"),
            ("www.bbc.co.uk", "bbc.co.uk"),
            ("api.seniat.gob.ve", "seniat.gob.ve"),
            ("foo.bar.mercadolibre.com.ar", "mercadolibre.com.ar"),
            ("deep.sub.domain.example.es", "example.es"),
        ],
    )
    def test_collapses_to_sld(self, hostname, expected):
        assert registrable_domain(hostname) == expected

    def test_bare_suffix_stays(self):
        assert registrable_domain("co.uk") == "co.uk"

    def test_single_label_tld(self):
        assert public_suffix("example.com") == "com"

    def test_two_part_suffix(self):
        assert public_suffix("x.gob.ve") == "gob.ve"

    def test_alias_matches(self):
        assert second_level_domain("a.b.example.com") == registrable_domain(
            "a.b.example.com"
        )


@given(
    st.from_regex(r"[a-z][a-z0-9-]{0,10}[a-z0-9]", fullmatch=True),
    st.from_regex(r"[a-z][a-z0-9-]{0,10}[a-z0-9]", fullmatch=True),
    st.sampled_from(["com", "net", "es", "co.uk", "com.ve", "gob.ve"]),
)
def test_property_registrable_is_suffix_plus_one(label, sld, suffix):
    hostname = f"{label}.{sld}.{suffix}"
    result = registrable_domain(hostname)
    assert result == f"{sld}.{suffix}"
    # idempotence: collapsing twice changes nothing
    assert registrable_domain(result) == result
