"""Tests for simulated time helpers."""

import pytest

from repro.utils.timeutils import (
    DAY_SECONDS,
    SimulatedClock,
    day_index,
    day_label,
    hour_of_day,
    minutes,
)


class TestConversions:
    def test_minutes(self):
        assert minutes(20) == 1200.0

    def test_day_index_boundaries(self):
        assert day_index(0.0) == 0
        assert day_index(DAY_SECONDS - 1e-9) == 0
        assert day_index(DAY_SECONDS) == 1

    def test_day_index_rejects_negative(self):
        with pytest.raises(ValueError):
            day_index(-1.0)

    def test_day_label(self):
        assert day_label(3) == "day 03"

    def test_hour_of_day_wraps(self):
        assert hour_of_day(DAY_SECONDS + 3600.0) == pytest.approx(1.0)


class TestSimulatedClock:
    def test_advance_accumulates(self):
        clock = SimulatedClock()
        clock.advance(10)
        clock.advance(5)
        assert clock.now == 15.0

    def test_advance_rejects_negative(self):
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            clock.advance(-1)

    def test_advance_to_rejects_past(self):
        clock = SimulatedClock(now=100.0)
        with pytest.raises(ValueError):
            clock.advance_to(50.0)

    def test_day_property(self):
        clock = SimulatedClock()
        clock.advance(2 * DAY_SECONDS + 5)
        assert clock.day == 2

    def test_elapsed(self):
        clock = SimulatedClock()
        clock.advance(42.0)
        assert clock.elapsed() == 42.0
