"""Tests for atomic/deterministic serialization helpers."""

import hashlib
import json

import numpy as np
import pytest

from repro.utils.serialization import (
    atomic_write_bytes,
    atomic_write_json,
    file_sha256,
    load_npz_mapped,
    npz_bytes_deterministic,
    save_npz_deterministic,
)


class TestAtomicWrites:
    def test_write_bytes_lands_and_cleans_tmp(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomic_write_bytes(path, b"payload")
        assert path.read_bytes() == b"payload"
        assert list(tmp_path.iterdir()) == [path]   # no .tmp sibling left

    def test_interrupted_write_preserves_original(self, tmp_path, monkeypatch):
        import os

        path = tmp_path / "blob.bin"
        atomic_write_bytes(path, b"original")

        def explode(src, dst):
            raise OSError("power cut")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError):
            atomic_write_bytes(path, b"replacement")
        # The crash happened before the rename commit point: the old
        # contents are untouched.
        assert path.read_bytes() == b"original"

    def test_write_json_is_canonical(self, tmp_path):
        path = tmp_path / "data.json"
        atomic_write_json(path, {"b": 2, "a": 1})
        text = path.read_text()
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')   # sorted keys
        assert json.loads(text) == {"a": 1, "b": 2}


class TestDeterministicNpz:
    def test_loadable_by_numpy(self, tmp_path):
        arrays = {
            "vectors": np.arange(12, dtype=np.float64).reshape(3, 4),
            "hosts": np.asarray(["a.com", "b.com", "c.com"], dtype=np.str_),
        }
        path = tmp_path / "out.npz"
        save_npz_deterministic(path, arrays)
        with np.load(path) as archive:
            assert np.array_equal(archive["vectors"], arrays["vectors"])
            assert [str(h) for h in archive["hosts"]] == [
                "a.com", "b.com", "c.com",
            ]

    def test_same_content_same_bytes(self):
        arrays = {"x": np.arange(100, dtype=np.float64)}
        assert npz_bytes_deterministic(arrays) == npz_bytes_deterministic(
            {"x": np.arange(100, dtype=np.float64)}
        )

    def test_member_order_does_not_matter(self):
        a = {"x": np.zeros(3), "y": np.ones(3)}
        b = {"y": np.ones(3), "x": np.zeros(3)}
        assert npz_bytes_deterministic(a) == npz_bytes_deterministic(b)

    def test_object_dtype_rejected(self):
        with pytest.raises(ValueError):
            npz_bytes_deterministic(
                {"bad": np.asarray(["a", 1], dtype=object)}
            )


class TestZeroCopyLoads:
    """Zero-copy maps over deterministic archives (sharded runtime)."""

    @staticmethod
    def _arrays():
        return {
            "vectors": np.arange(24, dtype=np.float64).reshape(4, 6) / 7.0,
            "counts": np.asarray([5, 4, 3, 2], dtype=np.int64),
            "hosts": np.asarray(["a.com", "b.com"], dtype=np.str_),
            "scalar": np.float64(3.5),
        }

    def test_mapped_load_bitwise_identical_to_eager(self, tmp_path):
        path = tmp_path / "model.npz"
        save_npz_deterministic(path, self._arrays(), compress=False)
        mapped = load_npz_mapped(path)
        with np.load(path) as eager:
            assert set(mapped) == set(eager.files)
            for name in eager.files:
                lhs, rhs = np.asarray(mapped[name]), eager[name]
                assert lhs.dtype == rhs.dtype
                assert lhs.shape == rhs.shape
                assert lhs.tobytes() == rhs.tobytes()   # bitwise

    def test_stored_members_are_true_memmaps(self, tmp_path):
        path = tmp_path / "model.npz"
        save_npz_deterministic(path, self._arrays(), compress=False)
        mapped = load_npz_mapped(path)
        assert isinstance(mapped["vectors"], np.memmap)
        import os

        assert os.path.samefile(mapped["vectors"].filename, path)

    def test_numpy_mmap_mode_on_deterministic_output(self, tmp_path):
        # The satellite contract verbatim: np.load(..., mmap_mode="r")
        # over our writer's output round-trips bitwise.  numpy ignores
        # mmap_mode inside zip archives and reads eagerly, but the
        # loaded values must still match exactly.
        path = tmp_path / "model.npz"
        arrays = self._arrays()
        save_npz_deterministic(path, arrays, compress=False)
        loaded = np.load(path, mmap_mode="r")
        for name, source in arrays.items():
            assert loaded[name].tobytes() == np.asanyarray(source).tobytes()

    def test_writes_rejected_while_map_is_live(self, tmp_path):
        path = tmp_path / "model.npz"
        save_npz_deterministic(path, self._arrays(), compress=False)
        mapped = load_npz_mapped(path)
        vectors = mapped["vectors"]
        with pytest.raises((ValueError, RuntimeError)):
            vectors[0, 0] = 99.0
        # And re-publishing over a live map must go through the atomic
        # rename, never an in-place truncate: the map stays valid on the
        # old inode while the path points at the new file.
        before = vectors[0, 1]
        save_npz_deterministic(path, self._arrays(), compress=False)
        assert vectors[0, 1] == before

    def test_compressed_members_fall_back_read_only(self, tmp_path):
        path = tmp_path / "model.npz"
        save_npz_deterministic(path, self._arrays(), compress=True)
        mapped = load_npz_mapped(path)
        assert not isinstance(mapped["vectors"], np.memmap)
        assert not mapped["vectors"].flags.writeable
        with np.load(path) as eager:
            for name in eager.files:
                assert np.asarray(mapped[name]).tobytes() == (
                    eager[name].tobytes()
                )

    def test_write_modes_rejected(self, tmp_path):
        path = tmp_path / "model.npz"
        save_npz_deterministic(path, self._arrays(), compress=False)
        with pytest.raises(ValueError):
            load_npz_mapped(path, mmap_mode="r+")

    def test_compress_flag_still_deterministic(self):
        arrays = {"x": np.arange(64, dtype=np.float64)}
        assert npz_bytes_deterministic(
            arrays, compress=False
        ) == npz_bytes_deterministic(
            {"x": np.arange(64, dtype=np.float64)}, compress=False
        )


class TestFileSha256:
    def test_matches_hashlib(self, tmp_path):
        path = tmp_path / "blob.bin"
        payload = bytes(range(256)) * 100
        path.write_bytes(payload)
        assert file_sha256(path) == hashlib.sha256(payload).hexdigest()
