"""Tests for atomic/deterministic serialization helpers."""

import hashlib
import json

import numpy as np
import pytest

from repro.utils.serialization import (
    atomic_write_bytes,
    atomic_write_json,
    file_sha256,
    npz_bytes_deterministic,
    save_npz_deterministic,
)


class TestAtomicWrites:
    def test_write_bytes_lands_and_cleans_tmp(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomic_write_bytes(path, b"payload")
        assert path.read_bytes() == b"payload"
        assert list(tmp_path.iterdir()) == [path]   # no .tmp sibling left

    def test_interrupted_write_preserves_original(self, tmp_path, monkeypatch):
        import os

        path = tmp_path / "blob.bin"
        atomic_write_bytes(path, b"original")

        def explode(src, dst):
            raise OSError("power cut")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError):
            atomic_write_bytes(path, b"replacement")
        # The crash happened before the rename commit point: the old
        # contents are untouched.
        assert path.read_bytes() == b"original"

    def test_write_json_is_canonical(self, tmp_path):
        path = tmp_path / "data.json"
        atomic_write_json(path, {"b": 2, "a": 1})
        text = path.read_text()
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')   # sorted keys
        assert json.loads(text) == {"a": 1, "b": 2}


class TestDeterministicNpz:
    def test_loadable_by_numpy(self, tmp_path):
        arrays = {
            "vectors": np.arange(12, dtype=np.float64).reshape(3, 4),
            "hosts": np.asarray(["a.com", "b.com", "c.com"], dtype=np.str_),
        }
        path = tmp_path / "out.npz"
        save_npz_deterministic(path, arrays)
        with np.load(path) as archive:
            assert np.array_equal(archive["vectors"], arrays["vectors"])
            assert [str(h) for h in archive["hosts"]] == [
                "a.com", "b.com", "c.com",
            ]

    def test_same_content_same_bytes(self):
        arrays = {"x": np.arange(100, dtype=np.float64)}
        assert npz_bytes_deterministic(arrays) == npz_bytes_deterministic(
            {"x": np.arange(100, dtype=np.float64)}
        )

    def test_member_order_does_not_matter(self):
        a = {"x": np.zeros(3), "y": np.ones(3)}
        b = {"y": np.ones(3), "x": np.zeros(3)}
        assert npz_bytes_deterministic(a) == npz_bytes_deterministic(b)

    def test_object_dtype_rejected(self):
        with pytest.raises(ValueError):
            npz_bytes_deterministic(
                {"bad": np.asarray(["a", 1], dtype=object)}
            )


class TestFileSha256:
    def test_matches_hashlib(self, tmp_path):
        path = tmp_path / "blob.bin"
        payload = bytes(range(256)) * 100
        path.write_bytes(payload)
        assert file_sha256(path) == hashlib.sha256(payload).hexdigest()
