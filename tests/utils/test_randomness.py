"""Tests for deterministic randomness plumbing."""

import numpy as np

from repro.utils.randomness import RandomSource, derive_rng


class TestDeriveRng:
    def test_same_inputs_same_stream(self):
        a = derive_rng(7, "x")
        b = derive_rng(7, "x")
        assert np.array_equal(a.random(16), b.random(16))

    def test_different_namespace_different_stream(self):
        a = derive_rng(7, "x").random(16)
        b = derive_rng(7, "y").random(16)
        assert not np.array_equal(a, b)

    def test_different_seed_different_stream(self):
        a = derive_rng(7, "x").random(16)
        b = derive_rng(8, "x").random(16)
        assert not np.array_equal(a, b)

    def test_namespace_collision_resistance(self):
        # "1:2x" vs "12:x"-style ambiguity must not alias streams.
        a = derive_rng(1, "2x").random(8)
        b = derive_rng(12, "x").random(8)
        assert not np.array_equal(a, b)


class TestRandomSource:
    def test_rng_cached_per_namespace(self):
        source = RandomSource(3)
        assert source.rng("a") is source.rng("a")
        assert source.rng("a") is not source.rng("b")

    def test_fresh_restarts_stream(self):
        source = RandomSource(3)
        first = source.fresh("a").random(4)
        again = source.fresh("a").random(4)
        assert np.array_equal(first, again)

    def test_cached_stream_advances(self):
        source = RandomSource(3)
        first = source.rng("a").random(4)
        second = source.rng("a").random(4)
        assert not np.array_equal(first, second)

    def test_child_is_deterministic(self):
        a = RandomSource(3).child("sub")
        b = RandomSource(3).child("sub")
        assert a.seed == b.seed
        assert a.seed != RandomSource(3).child("other").seed

    def test_repr_contains_seed(self):
        assert "42" in repr(RandomSource(42))
