"""Cross-cutting property-based tests (hypothesis).

These encode the invariants listed in DESIGN.md §5 against randomly
generated small worlds — embedding spaces, label sets and sessions are
drawn by hypothesis, so the invariants must hold for *any* shape of
input, not just the fixtures the unit tests use.
"""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.embeddings import HostnameEmbeddings
from repro.core.profiler import SessionProfiler
from repro.core.session import first_visits
from repro.core.vocabulary import Vocabulary

N_CATEGORIES = 6


@st.composite
def embedding_spaces(draw):
    """A small random embedding space with a random labelled subset."""
    n_hosts = draw(st.integers(min_value=3, max_value=12))
    dim = draw(st.integers(min_value=2, max_value=6))
    hosts = [f"h{i}.example" for i in range(n_hosts)]
    counts = Counter(
        {h: draw(st.integers(min_value=1, max_value=50)) for h in hosts}
    )
    matrix = np.array(
        [
            [
                draw(
                    st.floats(
                        min_value=-1.0, max_value=1.0,
                        allow_nan=False, allow_infinity=False,
                    )
                )
                for _ in range(dim)
            ]
            for _ in range(n_hosts)
        ]
    )
    # avoid fully degenerate all-zero spaces
    matrix[0, 0] += 1.0
    vocabulary = Vocabulary(counts)
    embeddings = HostnameEmbeddings(matrix, vocabulary)

    n_labelled = draw(st.integers(min_value=1, max_value=n_hosts))
    labelled_hosts = draw(
        st.permutations(hosts).map(lambda p: p[:n_labelled])
    )
    labelled = {}
    for host in labelled_hosts:
        vector = np.zeros(N_CATEGORIES)
        category = draw(st.integers(0, N_CATEGORIES - 1))
        vector[category] = draw(
            st.floats(min_value=0.1, max_value=1.0, allow_nan=False)
        )
        labelled[host] = vector
    return embeddings, labelled


@st.composite
def sessions_for(draw, hosts):
    size = draw(st.integers(min_value=0, max_value=8))
    return [
        draw(st.sampled_from(hosts + ["unknown.example"]))
        for _ in range(size)
    ]


class TestProfilerInvariants:
    @given(embedding_spaces(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_profile_components_in_unit_interval(self, space, data):
        embeddings, labelled = space
        profiler = SessionProfiler(
            embeddings, labelled, neighbourhood_size=5,
            max_neighbourhood_fraction=1.0,
        )
        session = data.draw(sessions_for(embeddings.vocabulary.hosts))
        profile = profiler.profile(session)
        assert ((profile.categories >= 0) & (profile.categories <= 1)).all()
        assert np.isfinite(profile.categories).all()

    @given(embedding_spaces(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_profile_invariant_to_duplicates(self, space, data):
        """Eq. 3/4 only count first visits: duplicating session hostnames
        must not change the profile."""
        embeddings, labelled = space
        profiler = SessionProfiler(
            embeddings, labelled, neighbourhood_size=5,
            max_neighbourhood_fraction=1.0,
        )
        session = data.draw(sessions_for(embeddings.vocabulary.hosts))
        doubled = [h for h in session for _ in range(2)]
        a = profiler.profile(session)
        b = profiler.profile(doubled)
        assert np.allclose(a.categories, b.categories)
        assert a.support == b.support

    @given(embedding_spaces())
    @settings(max_examples=60, deadline=None)
    def test_uniform_labels_give_uniform_profile(self, space):
        """If every labelled host carries the SAME category vector, any
        non-empty profile must equal that vector (Eq. 4 is a weighted
        average)."""
        embeddings, labelled = space
        shared = np.zeros(N_CATEGORIES)
        shared[2] = 0.7
        uniform = {host: shared.copy() for host in labelled}
        profiler = SessionProfiler(
            embeddings, uniform, neighbourhood_size=5,
            max_neighbourhood_fraction=1.0,
        )
        session = list(embeddings.vocabulary.hosts)
        profile = profiler.profile(session)
        if not profile.is_empty:
            assert np.allclose(profile.categories, shared)

    @given(embedding_spaces())
    @settings(max_examples=40, deadline=None)
    def test_empty_session_empty_profile(self, space):
        embeddings, labelled = space
        profiler = SessionProfiler(embeddings, labelled)
        assert profiler.profile([]).is_empty

    @given(embedding_spaces())
    @settings(max_examples=40, deadline=None)
    def test_in_session_labelled_host_guarantees_support(self, space):
        embeddings, labelled = space
        profiler = SessionProfiler(
            embeddings, labelled, neighbourhood_size=5,
            max_neighbourhood_fraction=1.0,
        )
        some_labelled = next(iter(labelled))
        profile = profiler.profile([some_labelled])
        assert profile.support >= 1
        assert not profile.is_empty


class TestSessionInvariants:
    @given(st.lists(st.sampled_from("abcdef"), max_size=30))
    def test_first_visits_idempotent_and_duplicate_free(self, hostnames):
        once = first_visits(hostnames)
        assert len(set(once)) == len(once)
        assert first_visits(once) == once
        assert set(once) == set(hostnames)

    @given(st.lists(st.sampled_from("abcdef"), max_size=30))
    def test_first_visits_order_is_subsequence(self, hostnames):
        once = list(first_visits(hostnames))
        iterator = iter(hostnames)
        for item in once:
            # each deduped item appears in the original, in order
            for candidate in iterator:
                if candidate == item:
                    break
            else:
                pytest.fail(f"{item} out of order")


class TestEmbeddingInvariants:
    @given(embedding_spaces())
    @settings(max_examples=40, deadline=None)
    def test_self_similarity_is_max(self, space):
        embeddings, _ = space
        host = embeddings.vocabulary.host_of(0)
        norm = np.linalg.norm(embeddings.vector(host))
        if norm < 1e-9:
            return  # zero vector: cosine undefined, skip
        results = embeddings.most_similar(host, n=len(embeddings),
                                          exclude_self=False)
        assert results[0][0] == host or results[0][1] == pytest.approx(
            1.0, abs=1e-9
        )

    @given(embedding_spaces(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_aggregate_mean_inside_convex_hull_bounds(self, space, data):
        embeddings, _ = space
        hosts = data.draw(
            st.lists(
                st.sampled_from(embeddings.vocabulary.hosts),
                min_size=1, max_size=6,
            )
        )
        aggregated = embeddings.aggregate(hosts)
        stacked = np.vstack([embeddings.vector(h) for h in hosts])
        assert (aggregated <= stacked.max(axis=0) + 1e-12).all()
        assert (aggregated >= stacked.min(axis=0) - 1e-12).all()
