"""Tests for survival functions."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.ccdf import ccdf_of_counts


class TestCCDF:
    def test_simple_values(self):
        ccdf = ccdf_of_counts([1, 2, 2, 4])
        assert ccdf.at(1) == 100.0
        assert ccdf.at(2) == 75.0
        assert ccdf.at(3) == 25.0
        assert ccdf.at(4) == 25.0
        assert ccdf.at(5) == 0.0

    def test_survival_non_increasing(self):
        ccdf = ccdf_of_counts([5, 1, 3, 3, 9, 2])
        assert (np.diff(ccdf.survival) <= 0).all()

    def test_quantile_count(self):
        # paper phrasing: "75% of the users visit at least N hostnames"
        ccdf = ccdf_of_counts([10, 20, 30, 40])
        assert ccdf.quantile_count(75) == 20.0
        assert ccdf.quantile_count(100) == 10.0
        assert ccdf.quantile_count(25) == 40.0

    def test_quantile_invalid(self):
        ccdf = ccdf_of_counts([1])
        with pytest.raises(ValueError):
            ccdf.quantile_count(0)
        with pytest.raises(ValueError):
            ccdf.quantile_count(101)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ccdf_of_counts([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ccdf_of_counts([3, -1])

    @given(
        st.lists(st.integers(min_value=0, max_value=500), min_size=1,
                 max_size=80)
    )
    def test_property_bounds_and_monotonicity(self, counts):
        ccdf = ccdf_of_counts(counts)
        assert ((ccdf.survival > 0) & (ccdf.survival <= 100)).all()
        assert (np.diff(ccdf.survival) <= 0).all()
        # minimum observed count is reached by everyone
        assert ccdf.at(min(counts)) == 100.0
        assert ccdf.at(max(counts) + 1) == 0.0
