"""Tests for daily topic-share series (Fig. 6)."""

import numpy as np
import pytest

from repro.analysis.topics import TopicShareSeries


@pytest.fixture()
def series(taxonomy):
    return TopicShareSeries(taxonomy)


class TestRecording:
    def test_shares_sum_to_100(self, series, taxonomy):
        vec = np.zeros(taxonomy.num_truncated)
        vec[0] = 1.0
        series.record_vector(0, vec)
        vec2 = np.zeros(taxonomy.num_truncated)
        vec2[-1] = 1.0
        series.record_vector(0, vec2)
        assert series.shares(0).sum() == pytest.approx(100.0)

    def test_argmax_attribution(self, series, taxonomy):
        vec = np.zeros(taxonomy.num_truncated)
        vec[5] = 0.3
        vec[10] = 0.9
        series.record_vector(2, vec)
        top_of_10 = taxonomy.top_level_index_of(10)
        assert series.shares(2)[top_of_10] == 100.0

    def test_zero_vector_ignored(self, series, taxonomy):
        series.record_vector(0, np.zeros(taxonomy.num_truncated))
        assert series.days == []

    def test_record_topic_direct(self, series):
        series.record_topic(1, 3)
        assert series.shares(1)[3] == 100.0

    def test_empty_day_shares(self, series):
        assert (series.shares(99) == 0).all()


class TestMatrixAndStats:
    def _fill(self, series, taxonomy):
        vec_a = np.zeros(taxonomy.num_truncated)
        vec_a[0] = 1.0
        vec_b = np.zeros(taxonomy.num_truncated)
        vec_b[-1] = 1.0
        for day in range(3):
            for _ in range(3):
                series.record_vector(day, vec_a)
            series.record_vector(day, vec_b)

    def test_matrix_shape(self, series, taxonomy):
        self._fill(series, taxonomy)
        days, matrix = series.matrix()
        assert days == [0, 1, 2]
        assert matrix.shape == (3, len(series.topic_names))
        assert np.allclose(matrix.sum(axis=1), 100.0)

    def test_mean_shares(self, series, taxonomy):
        self._fill(series, taxonomy)
        means = series.mean_shares()
        assert means.max() == pytest.approx(75.0)

    def test_top_topics_sorted(self, series, taxonomy):
        self._fill(series, taxonomy)
        tops = series.top_topics(3)
        shares = [s for _, s in tops]
        assert shares == sorted(shares, reverse=True)

    def test_stability_zero_for_constant_mix(self, series, taxonomy):
        self._fill(series, taxonomy)
        assert series.stability() == pytest.approx(0.0)

    def test_stability_positive_for_shifting_mix(self, series, taxonomy):
        vec_a = np.zeros(taxonomy.num_truncated)
        vec_a[0] = 1.0
        vec_b = np.zeros(taxonomy.num_truncated)
        vec_b[-1] = 1.0
        series.record_vector(0, vec_a)
        series.record_vector(1, vec_b)
        assert series.stability() == pytest.approx(100.0)

    def test_empty_series(self, series):
        days, matrix = series.matrix()
        assert days == []
        assert series.stability() == 0.0
        assert (series.mean_shares() == 0).all()
