"""Tests for the profile-fidelity oracle."""

import pytest

from repro.analysis.fidelity import profile_fidelity
from repro.core.profiler import SessionProfiler


@pytest.fixture(scope="module")
def profiler(embeddings, labelled):
    return SessionProfiler(embeddings, labelled)


class TestProfileFidelity:
    def test_report_shape(self, profiler, trace, web):
        report = profile_fidelity(
            profiler, trace, 1, web, max_windows=60
        )
        assert report.sessions_profiled > 10
        assert 0.0 <= report.mean_affinity <= 1.0
        assert 0.0 <= report.median_affinity <= 1.0
        assert report.mean_session_size > 0
        assert 0.0 <= report.empty_fraction <= 1.0

    def test_trained_profiles_score_well(self, profiler, trace, web):
        report = profile_fidelity(
            profiler, trace, 1, web, max_windows=120
        )
        assert report.mean_affinity > 0.35

    def test_max_windows_limits_work(self, profiler, trace, web):
        small = profile_fidelity(profiler, trace, 1, web, max_windows=10)
        assert small.sessions_profiled + small.sessions_empty <= 10

    def test_target_window_changes_score(self, profiler, trace, web):
        """A 4-hour profile judged against the last 20 minutes must be
        worse than a 20-minute profile judged the same way."""
        long_window = profile_fidelity(
            profiler, trace, 1, web,
            session_minutes=240.0, target_minutes=20.0, max_windows=150,
        )
        matched = profile_fidelity(
            profiler, trace, 1, web,
            session_minutes=20.0, target_minutes=20.0, max_windows=150,
        )
        assert matched.mean_affinity > long_window.mean_affinity

    def test_tracker_filter_shrinks_sessions(
        self, profiler, trace, web, tracker_filter
    ):
        unfiltered = profile_fidelity(
            profiler, trace, 1, web, max_windows=80
        )
        filtered = profile_fidelity(
            profiler, trace, 1, web,
            tracker_filter=tracker_filter, max_windows=80,
        )
        assert filtered.mean_session_size <= unfiltered.mean_session_size

    def test_empty_report_when_nothing_profilable(
        self, embeddings, trace, web, taxonomy
    ):
        import numpy as np

        # labels on hosts that never occur -> every session is empty
        profiler = SessionProfiler(
            embeddings,
            {"never-visited.example": np.zeros(taxonomy.num_truncated)},
        )
        report = profile_fidelity(
            profiler, trace, 1, web, max_windows=30
        )
        assert report.sessions_profiled == 0
        assert report.mean_affinity == 0.0
