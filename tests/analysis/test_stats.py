"""Tests for statistical machinery."""

import pytest
from hypothesis import given
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.analysis.stats import (
    bootstrap_mean_ci,
    paired_t_test,
    two_proportion_z_test,
)


class TestPairedTTest:
    def test_matches_scipy(self, rng):
        a = rng.normal(0.002, 0.001, size=40)
        b = rng.normal(0.0017, 0.001, size=40)
        ours = paired_t_test(a, b)
        ref = scipy_stats.ttest_rel(a, b)
        assert ours.statistic == pytest.approx(ref.statistic)
        assert ours.p_value == pytest.approx(ref.pvalue)
        assert ours.dof == 39

    def test_identical_samples(self):
        a = [0.1, 0.2, 0.3]
        result = paired_t_test(a, a)
        assert result.p_value == 1.0
        assert not result.significant()

    def test_deterministic_shift(self):
        a = [1.0, 2.0, 3.0]
        b = [0.5, 1.5, 2.5]
        result = paired_t_test(a, b)
        assert result.p_value == 0.0
        assert result.significant()

    def test_swap_symmetry(self, rng):
        a = rng.normal(size=20)
        b = rng.normal(size=20)
        fwd = paired_t_test(a, b)
        rev = paired_t_test(b, a)
        assert fwd.p_value == pytest.approx(rev.p_value)
        assert fwd.statistic == pytest.approx(-rev.statistic)
        assert fwd.mean_difference == pytest.approx(-rev.mean_difference)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            paired_t_test([1, 2], [1, 2, 3])

    def test_too_few_pairs(self):
        with pytest.raises(ValueError):
            paired_t_test([1], [2])

    @given(
        st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=3, max_size=40,
        )
    )
    def test_property_pvalue_in_unit_interval(self, a):
        b = [x + 0.1 for x in a]
        result = paired_t_test(a, b)
        assert 0.0 <= result.p_value <= 1.0


class TestTwoProportion:
    def test_obvious_difference(self):
        result = two_proportion_z_test(500, 1000, 100, 1000)
        assert result.p_value < 1e-6
        assert result.rate_a == 0.5

    def test_no_difference(self):
        result = two_proportion_z_test(50, 1000, 50, 1000)
        assert result.p_value == pytest.approx(1.0)

    def test_zero_clicks_everywhere(self):
        result = two_proportion_z_test(0, 100, 0, 100)
        assert result.p_value == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            two_proportion_z_test(1, 0, 1, 10)
        with pytest.raises(ValueError):
            two_proportion_z_test(11, 10, 1, 10)

    def test_symmetry(self):
        fwd = two_proportion_z_test(30, 1000, 20, 1000)
        rev = two_proportion_z_test(20, 1000, 30, 1000)
        assert fwd.p_value == pytest.approx(rev.p_value)
        assert fwd.statistic == pytest.approx(-rev.statistic)


class TestBootstrap:
    def test_ci_contains_mean_for_tight_sample(self, rng):
        sample = rng.normal(10.0, 0.1, size=200)
        low, high = bootstrap_mean_ci(sample, rng)
        assert low < 10.0 < high
        assert high - low < 0.1

    def test_ci_ordered(self, rng):
        sample = rng.exponential(size=50)
        low, high = bootstrap_mean_ci(sample, rng)
        assert low <= high

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0], rng)
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0, 2.0], rng, confidence=1.5)
