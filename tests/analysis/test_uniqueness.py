"""Tests for hostname-fingerprint re-identification."""

import pytest

from repro.analysis.uniqueness import jaccard, reidentify
from repro.traffic import TraceGenerator


class TestJaccard:
    def test_identical(self):
        assert jaccard({"a", "b"}, {"a", "b"}) == 1.0

    def test_disjoint(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_partial(self):
        assert jaccard({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)

    def test_both_empty(self):
        assert jaccard(set(), set()) == 1.0

    def test_one_empty(self):
        assert jaccard({"a"}, set()) == 0.0


class TestReidentify:
    def test_perfect_fingerprints(self):
        enrollment = {
            0: {"a", "b", "c"},
            1: {"d", "e", "f"},
            2: {"g", "h", "i"},
        }
        report = reidentify(enrollment, enrollment)
        assert report.top1_accuracy == 1.0
        assert report.mean_reciprocal_rank == 1.0
        assert report.users_matched == 3
        assert report.chance_accuracy == pytest.approx(1 / 3)

    def test_noisy_fingerprints_still_match(self):
        enrollment = {
            0: {"a", "b", "c", "x"},
            1: {"d", "e", "f", "x"},
        }
        observation = {
            0: {"a", "b", "z", "x"},
            1: {"d", "e", "w", "x"},
        }
        report = reidentify(enrollment, observation)
        assert report.top1_accuracy == 1.0

    def test_excluded_core_removed(self):
        # without exclusion everyone looks like user 0 (big shared core)
        core = {f"core{i}" for i in range(20)}
        enrollment = {
            0: core | {"a", "b", "c"},
            1: core | {"d", "e", "f"},
        }
        observation = {
            0: core | {"a", "b", "q"},
            1: core | {"d", "e", "q"},
        }
        with_core = reidentify(enrollment, observation)
        without_core = reidentify(enrollment, observation, exclude=core)
        assert without_core.top1_accuracy >= with_core.top1_accuracy

    def test_min_items_skips_thin_users(self):
        enrollment = {0: {"a", "b", "c"}, 1: {"d"}}
        observation = {0: {"a", "b", "c"}, 1: {"d"}}
        report = reidentify(enrollment, observation, min_items=3)
        assert report.users_matched == 1

    def test_empty_enrollment_rejected(self):
        with pytest.raises(ValueError):
            reidentify({0: {"a"}}, {0: {"a"}}, min_items=5)

    def test_no_common_users_rejected(self):
        with pytest.raises(ValueError):
            reidentify(
                {0: {"a", "b", "c"}}, {9: {"a", "b", "c"}}
            )

    def test_synthetic_users_reidentifiable_across_days(
        self, web, population
    ):
        """The Fig. 2/3 claim quantified: outside-core behaviour is a
        fingerprint that survives across days."""
        generator = TraceGenerator(web, population, seed=31)
        trace = generator.generate(4)
        week1 = {}
        week2 = {}
        for day in (0, 1):
            for user, requests in trace.user_sequences(day).items():
                week1.setdefault(user, set()).update(
                    r.hostname for r in requests
                )
        for day in (2, 3):
            for user, requests in trace.user_sequences(day).items():
                week2.setdefault(user, set()).update(
                    r.hostname for r in requests
                )
        report = reidentify(week1, week2, min_items=5)
        assert report.users_matched > 10
        assert report.top1_accuracy > 0.5
        assert report.lift_over_chance > 5
