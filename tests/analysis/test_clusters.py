"""Tests for cluster-quality inspection (Fig. 5 machinery)."""

import pytest

from repro.analysis.clusters import (
    collapse_to_slds,
    neighbourhood_purity,
    satellite_attachment,
)


class TestNeighbourhoodPurity:
    def test_purity_beats_baseline(self, embeddings, web):
        report = neighbourhood_purity(embeddings, web, k=5)
        assert 0.0 <= report.overall <= 1.0
        assert report.overall > report.baseline

    def test_per_vertical_values_bounded(self, embeddings, web):
        report = neighbourhood_purity(embeddings, web, k=5)
        assert report.per_vertical
        for value in report.per_vertical.values():
            assert 0.0 <= value <= 1.0

    def test_invalid_k(self, embeddings, web):
        with pytest.raises(ValueError):
            neighbourhood_purity(embeddings, web, k=0)


class TestSatelliteAttachment:
    def test_satellites_attach_to_parents(self, embeddings, web, rng):
        report = satellite_attachment(embeddings, web, rng)
        assert report.tested > 10
        assert report.parent_beats_random > 0.8
        assert report.mean_parent_similarity > report.mean_random_similarity

    def test_sampling_bounded(self, embeddings, web, rng):
        report = satellite_attachment(
            embeddings, web, rng, max_satellites=5
        )
        assert report.tested == 5


class TestCollapseToSlds:
    def test_collapses_hostnames(self):
        sequences = [["mail.google.com", "ds-a.akamaihd.net"]]
        assert collapse_to_slds(sequences) == [
            ["google.com", "akamaihd.net"]
        ]

    def test_shrinks_vocabulary(self, corpus):
        full = {h for s in corpus for h in s}
        collapsed = {h for s in collapse_to_slds(corpus) for h in s}
        assert len(collapsed) < len(full)
