"""Tests for the exact t-SNE implementation."""

import numpy as np
import pytest

from repro.analysis.tsne import TSNE, TSNEConfig, joint_probabilities


def _two_blobs(rng, n_per=20, dim=10, separation=20.0):
    a = rng.normal(0.0, 1.0, size=(n_per, dim))
    b = rng.normal(separation, 1.0, size=(n_per, dim))
    X = np.vstack([a, b])
    labels = np.array([0] * n_per + [1] * n_per)
    return X, labels


class TestJointProbabilities:
    def test_symmetric_and_normalized(self, rng):
        X, _ = _two_blobs(rng, n_per=10)
        P = joint_probabilities(X, perplexity=5)
        assert np.allclose(P, P.T)
        assert P.sum() == pytest.approx(1.0, abs=1e-6)
        assert (P > 0).all()

    def test_perplexity_too_large(self, rng):
        X, _ = _two_blobs(rng, n_per=5)
        with pytest.raises(ValueError):
            joint_probabilities(X, perplexity=10)

    def test_near_neighbours_more_probable(self, rng):
        X, labels = _two_blobs(rng, n_per=10)
        P = joint_probabilities(X, perplexity=5)
        same = P[labels[:, None] == labels[None, :]].mean()
        cross = P[labels[:, None] != labels[None, :]].mean()
        assert same > cross * 10


class TestTSNE:
    def test_separates_blobs(self, rng):
        X, labels = _two_blobs(rng)
        tsne = TSNE(TSNEConfig(perplexity=10, n_iter=500, seed=0))
        Y = tsne.fit_transform(X)
        centroid_a = Y[labels == 0].mean(axis=0)
        centroid_b = Y[labels == 1].mean(axis=0)
        spread = max(Y[labels == 0].std(), Y[labels == 1].std())
        assert np.linalg.norm(centroid_a - centroid_b) > 3 * spread

    def test_output_shape_and_finiteness(self, rng):
        X, _ = _two_blobs(rng, n_per=12)
        Y = TSNE(TSNEConfig(perplexity=8, n_iter=60, seed=0)).fit_transform(X)
        assert Y.shape == (24, 2)
        assert np.isfinite(Y).all()

    def test_kl_decreases(self, rng):
        X, _ = _two_blobs(rng)
        tsne = TSNE(TSNEConfig(perplexity=10, n_iter=260, seed=0))
        tsne.fit_transform(X)
        # compare post-exaggeration KL values
        assert tsne.kl_history[-1] < tsne.kl_history[2]

    def test_deterministic(self, rng):
        X, _ = _two_blobs(rng, n_per=10)
        config = TSNEConfig(perplexity=6, n_iter=50, seed=3)
        a = TSNE(config).fit_transform(X)
        b = TSNE(config).fit_transform(X)
        assert np.allclose(a, b)

    def test_random_init(self, rng):
        X, _ = _two_blobs(rng, n_per=10)
        config = TSNEConfig(perplexity=6, n_iter=30, seed=3, init="random")
        Y = TSNE(config).fit_transform(X)
        assert np.isfinite(Y).all()

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            TSNE(TSNEConfig(perplexity=0))
        with pytest.raises(ValueError):
            TSNE(TSNEConfig(init="magic"))
        with pytest.raises(ValueError):
            TSNE(dims=0)
        tsne = TSNE()
        with pytest.raises(ValueError):
            tsne.fit_transform(np.zeros((2, 3)))
