"""Tests for core computation and the diversity report (Fig. 2/3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.diversity import (
    categories_per_user,
    compute_cores,
    diversity_report,
)


@pytest.fixture()
def toy_users():
    # "g.com" seen by all, "f.com" by 3/4, "x/y/z" personal
    return {
        0: {"g.com", "f.com", "x.com"},
        1: {"g.com", "f.com", "y.com"},
        2: {"g.com", "f.com", "z.com"},
        3: {"g.com", "w.com"},
    }


class TestCores:
    def test_core_membership(self, toy_users):
        cores = compute_cores(toy_users, levels=(100, 75, 25))
        assert cores[100] == {"g.com"}
        assert cores[75] == {"g.com", "f.com"}
        assert "x.com" in cores[25]

    def test_cores_are_nested(self, toy_users):
        cores = compute_cores(toy_users, levels=(80, 60, 40, 20))
        assert cores[80] <= cores[60] <= cores[40] <= cores[20]

    def test_empty_users_rejected(self):
        with pytest.raises(ValueError):
            compute_cores({})

    def test_invalid_level(self, toy_users):
        with pytest.raises(ValueError):
            compute_cores(toy_users, levels=(0,))

    @given(
        st.dictionaries(
            st.integers(0, 20),
            st.sets(st.sampled_from("abcdefghij"), max_size=10),
            min_size=1,
        )
    )
    def test_property_nesting(self, users):
        cores = compute_cores(users, levels=(80, 60, 40, 20))
        assert cores[80] <= cores[60] <= cores[40] <= cores[20]


class TestDiversityReport:
    def test_core_sizes(self, toy_users):
        report = diversity_report(toy_users, levels=(100, 75))
        assert report.core_sizes[100] == 1
        assert report.core_sizes[75] == 2

    def test_outside_core_counts(self, toy_users):
        report = diversity_report(toy_users, levels=(100,))
        # outside Core100 (= {g.com}): users have 2,2,2,1 items
        assert report.outside_core[100].at(1) == 100.0
        assert report.outside_core[100].at(2) == 75.0

    def test_users_with_nothing_outside(self, toy_users):
        users = dict(toy_users)
        users[4] = {"g.com"}   # entirely inside Core100
        report = diversity_report(users, levels=(100,))
        assert report.users_with_nothing_outside[100] == pytest.approx(20.0)

    def test_summary_rows_complete(self, toy_users):
        report = diversity_report(toy_users, levels=(80, 20))
        keys = [k for k, _ in report.summary_rows()]
        assert "core80_size" in keys
        assert "p75_items" in keys
        assert "pct_users_zero_outside_core20" in keys

    def test_on_synthetic_trace(self, trace):
        """Paper shape: hostname cores exist and are small relative to
        per-user diversity."""
        report = diversity_report(trace.per_user_hostnames())
        assert report.core_sizes[80] >= 1
        assert (
            report.core_sizes[80] <= report.core_sizes[60]
            <= report.core_sizes[40] <= report.core_sizes[20]
        )
        # most users see many hosts outside the tightest core
        assert report.outside_core[80].quantile_count(75) > 10


class TestCategoriesPerUser:
    def test_mapping(self):
        hostnames = {0: {"a.com", "b.com"}, 1: {"c.com"}}
        labels = {"a.com": {1, 2}, "b.com": {2, 3}}
        cats = categories_per_user(hostnames, labels)
        assert cats[0] == {1, 2, 3}
        assert cats[1] == set()
