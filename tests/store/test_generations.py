"""End-to-end tests for model generations: pipeline publish/load, the
kill-and-restore serving path, and supervisor-driven publish/rollback."""

import numpy as np
import pytest

from repro.core.pipeline import NetworkObserverProfiler, PipelineConfig
from repro.core.skipgram import SkipGramConfig
from repro.core.streaming import StreamingConfig, StreamingProfiler
from repro.core.supervisor import RetrainSupervisor, SupervisorConfig
from repro.index import IndexConfig
from repro.netobs.flows import HostnameEvent
from repro.store import (
    EMBEDDINGS_COMPONENT,
    INDEX_COMPONENT,
    PROFILER_CONFIG_COMPONENT,
    ArtifactIntegrityError,
    ArtifactStore,
)
from repro.utils.timeutils import minutes


def _pipeline(labelled, tracker_filter, backend="ivf", seed=0):
    return NetworkObserverProfiler(
        labelled,
        config=PipelineConfig(
            skipgram=SkipGramConfig(epochs=2, seed=seed),
            index=IndexConfig(backend=backend),
        ),
        tracker_filter=tracker_filter,
    )


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


@pytest.fixture(scope="module")
def trained(trace, labelled, tracker_filter):
    """One IVF-backed pipeline trained on day 0, shared read-only."""
    pipeline = _pipeline(labelled, tracker_filter)
    pipeline.train_on_day(trace, 0)
    return pipeline


def _event(host, t, client="10.0.0.1"):
    return HostnameEvent(
        client_ip=client, timestamp=t, hostname=host, source="tls-sni"
    )


class TestPublishLoadRoundTrip:
    def test_publish_writes_all_components(self, trained, store):
        record = trained.publish_generation(store, day=0)
        assert record.generation_id == "g000001"
        assert record.created_from_day == 0
        for name in (
            EMBEDDINGS_COMPONENT, INDEX_COMPONENT, PROFILER_CONFIG_COMPONENT,
        ):
            assert record.has_component(name)
        assert record.index_meta["backend"] == "ivf"
        assert record.extra["vocabulary_size"] == len(trained.embeddings)

    def test_fresh_pipeline_serves_identical_profiles(
        self, trained, store, labelled, tracker_filter
    ):
        trained.publish_generation(store, day=0)
        session = trained.embeddings.vocabulary.hosts[:6]
        expected = trained.profile_session(session)

        restored = _pipeline(labelled, tracker_filter)
        record = restored.load_generation(store)
        assert record.generation_id == "g000001"
        assert restored.is_trained
        got = restored.profile_session(session)
        np.testing.assert_allclose(got.categories, expected.categories)
        assert restored.profiler.index_backend == "ivf"

    def test_load_does_not_recluster_ivf(
        self, trained, store, labelled, tracker_filter, monkeypatch
    ):
        import repro.index.ivf as ivf_module

        trained.publish_generation(store, day=0)

        def explode(*args, **kwargs):
            raise AssertionError("restore must not re-run k-means")

        monkeypatch.setattr(ivf_module, "_kmeans", explode)
        restored = _pipeline(labelled, tracker_filter)
        restored.load_generation(store)
        session = trained.embeddings.vocabulary.hosts[:4]
        assert restored.profile_session(session).categories is not None

    def test_corrupt_component_refuses_to_load(
        self, trained, store, labelled, tracker_filter
    ):
        record = trained.publish_generation(store, day=0)
        target = record.component_path(EMBEDDINGS_COMPONENT)
        target.write_bytes(target.read_bytes()[:-7] + b"garbage")
        restored = _pipeline(labelled, tracker_filter)
        with pytest.raises(ArtifactIntegrityError):
            restored.load_generation(store)
        assert not restored.is_trained

    def test_named_generation_loads_old_model(
        self, trace, store, labelled, tracker_filter
    ):
        pipeline = _pipeline(labelled, tracker_filter)
        pipeline.train_on_day(trace, 0)
        pipeline.publish_generation(store, day=0)
        day0 = pipeline.embeddings.vectors.copy()
        pipeline.train_on_day(trace, 1)
        pipeline.publish_generation(store, day=1)

        restored = _pipeline(labelled, tracker_filter)
        record = restored.load_generation(store, "g000001")
        assert record.created_from_day == 0
        assert np.array_equal(restored.embeddings.vectors, day0)


class TestKillAndRestore:
    def test_restarted_observer_serves_from_latest(
        self, trained, store, labelled, tracker_filter, tmp_path, monkeypatch
    ):
        """The acceptance scenario: kill a serving observer, restart from
        checkpoint + store.latest(), and the resumed stream must emit on
        the original report grid exactly what an uninterrupted run emits
        — without re-training or re-clustering."""
        hosts = trained.embeddings.vocabulary.hosts[:6]
        events = []
        t = 0.0
        for i in range(30):
            t += minutes(1.7)
            events.append(_event(hosts[i % 6], t, client=f"c{i % 3}"))
        cut = 13

        continuous = StreamingProfiler(StreamingConfig())
        continuous.swap_model(trained.profiler)
        baseline = continuous.ingest_many(events)
        expected_tail = [
            e for e in baseline if e.timestamp > events[cut - 1].timestamp
        ]

        serving = StreamingProfiler(StreamingConfig())
        serving.swap_model(trained.profiler)
        serving.ingest_many(events[:cut])
        checkpoint = tmp_path / "state.json"
        serving.checkpoint(checkpoint)
        trained.publish_generation(store, day=0)
        del serving   # the crash

        # The restarted process rebuilds its world and warm-restarts in
        # one call; k-means is forbidden to prove the index was loaded.
        import repro.index.ivf as ivf_module

        def explode(*args, **kwargs):
            raise AssertionError("warm restart must not re-cluster")

        monkeypatch.setattr(ivf_module, "_kmeans", explode)
        fresh = _pipeline(labelled, tracker_filter)
        resumed = StreamingProfiler.restore(
            checkpoint, store=store, pipeline=fresh
        )
        assert resumed.has_model
        assert resumed.index_backend == "ivf"

        tail = resumed.ingest_many(events[cut:])
        assert len(tail) == len(expected_tail)
        for ours, theirs in zip(tail, expected_tail):
            assert ours.client == theirs.client
            assert ours.timestamp == theirs.timestamp
            assert ours.window_hosts == theirs.window_hosts
            np.testing.assert_allclose(
                ours.profile.categories, theirs.profile.categories
            )

    def test_restore_without_generations_keeps_stream_bare(
        self, store, labelled, tracker_filter, tmp_path
    ):
        stream = StreamingProfiler(StreamingConfig())
        checkpoint = tmp_path / "state.json"
        stream.checkpoint(checkpoint)
        fresh = _pipeline(labelled, tracker_filter)
        resumed = StreamingProfiler.restore(
            checkpoint, store=store, pipeline=fresh
        )
        assert not resumed.has_model

    def test_restore_does_not_inflate_swap_counter(
        self, trained, store, labelled, tracker_filter, tmp_path
    ):
        stream = StreamingProfiler(StreamingConfig())
        stream.swap_model(trained.profiler)
        checkpoint = tmp_path / "state.json"
        stream.checkpoint(checkpoint)
        trained.publish_generation(store, day=0)
        fresh = _pipeline(labelled, tracker_filter)
        resumed = StreamingProfiler.restore(
            checkpoint, store=store, pipeline=fresh
        )
        # Re-arming the model at restore is not a deploy-time swap: the
        # counter must match what the checkpoint recorded.
        assert resumed.model_swaps == stream.model_swaps


class TestSupervisorStore:
    def _supervisor(self, pipeline, store, **kwargs):
        return RetrainSupervisor(
            pipeline, store=store,
            config=SupervisorConfig(
                max_attempts=1, backoff_base_seconds=0.0, jitter_fraction=0.0
            ),
            **kwargs,
        )

    def test_each_retrain_publishes_a_generation(
        self, trace, store, labelled, tracker_filter
    ):
        pipeline = _pipeline(labelled, tracker_filter, backend="exact")
        supervisor = self._supervisor(pipeline, store)
        first = supervisor.retrain(trace, 0)
        second = supervisor.retrain(trace, 1)
        assert first.generation == "g000001"
        assert second.generation == "g000002"
        assert store.latest_id() == "g000002"
        assert store.latest().created_from_day == 1
        assert supervisor._generations_published_total.value == 2

    def test_validation_failure_rolls_back_to_previous(
        self, trace, store, labelled, tracker_filter
    ):
        pipeline = _pipeline(labelled, tracker_filter, backend="exact")
        verdicts = iter([True, False])
        supervisor = self._supervisor(
            pipeline, store, validate=lambda p: next(verdicts)
        )
        assert supervisor.retrain(trace, 0).succeeded
        day0_vectors = pipeline.embeddings.vectors.copy()

        outcome = supervisor.retrain(trace, 1)
        assert not outcome.succeeded
        assert outcome.rolled_back
        assert outcome.generation is None
        assert outcome.stats is None
        assert "validation" in outcome.error
        # The store serves day 0 again and the bad generation is gone.
        assert store.latest_id() == "g000001"
        assert [r.generation_id for r in store.list_generations()] == [
            "g000001"
        ]
        # The pipeline was reloaded from the rolled-back generation.
        assert np.array_equal(pipeline.embeddings.vectors, day0_vectors)
        assert supervisor._validation_failures_total.value == 1
        assert supervisor._rollbacks_total.value == 1

    def test_first_generation_rejection_empties_store(
        self, trace, store, labelled, tracker_filter
    ):
        pipeline = _pipeline(labelled, tracker_filter, backend="exact")
        supervisor = self._supervisor(
            pipeline, store, validate=lambda p: False
        )
        outcome = supervisor.retrain(trace, 0)
        assert not outcome.succeeded
        assert not outcome.rolled_back   # nothing earlier to roll back to
        assert store.latest_id() is None
        assert store.list_generations() == []

    def test_stream_keeps_old_model_through_rollback(
        self, trace, store, labelled, tracker_filter
    ):
        pipeline = _pipeline(labelled, tracker_filter, backend="exact")
        stream = StreamingProfiler(StreamingConfig())
        verdicts = iter([True, False])
        supervisor = RetrainSupervisor(
            pipeline, stream=stream, store=store,
            config=SupervisorConfig(max_attempts=1, jitter_fraction=0.0),
            validate=lambda p: next(verdicts),
        )
        supervisor.retrain(trace, 0)
        serving = stream._profiler
        supervisor.retrain(trace, 1)   # rejected
        assert stream._profiler is serving
        assert stream.model_swaps == 1

    def test_publish_failure_does_not_fail_the_retrain(
        self, trace, store, labelled, tracker_filter, monkeypatch
    ):
        pipeline = _pipeline(labelled, tracker_filter, backend="exact")
        supervisor = self._supervisor(pipeline, store)

        def explode(self, *args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(ArtifactStore, "publish", explode)
        outcome = supervisor.retrain(trace, 0)
        # The in-memory model serves even though persistence failed.
        assert outcome.succeeded
        assert outcome.generation is None
        assert supervisor._publish_failures_total.value == 1

    def test_validation_pass_keeps_generation(
        self, trace, store, labelled, tracker_filter
    ):
        pipeline = _pipeline(labelled, tracker_filter, backend="exact")
        supervisor = self._supervisor(
            pipeline, store, validate=lambda p: p.is_trained
        )
        outcome = supervisor.retrain(trace, 0)
        assert outcome.succeeded
        assert outcome.generation == "g000001"
        assert not outcome.rolled_back
        assert store.latest_id() == "g000001"
