"""Tests for the generation-oriented artifact store."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.store import (
    LATEST_NAME,
    MANIFEST_NAME,
    ArtifactIntegrityError,
    ArtifactStore,
    GenerationNotFoundError,
    StoreError,
)


def _writer(payload: bytes):
    return lambda path: path.write_bytes(payload)


def _publish(store, payload=b"model bytes", **kwargs):
    return store.publish({"model.bin": _writer(payload)}, **kwargs)


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store", registry=MetricsRegistry())


class TestPublish:
    def test_publish_creates_generation_and_latest(self, store):
        record = _publish(store, created_from_day=3)
        assert record.generation_id == "g000001"
        assert record.created_from_day == 3
        assert (record.path / "model.bin").read_bytes() == b"model bytes"
        assert store.latest_id() == "g000001"
        assert store.latest().generation_id == "g000001"

    def test_generation_ids_are_sequential(self, store):
        assert _publish(store).generation_id == "g000001"
        assert _publish(store).generation_id == "g000002"
        assert _publish(store).generation_id == "g000003"
        assert store.latest_id() == "g000003"

    def test_manifest_records_digests_and_sizes(self, store):
        record = _publish(store, payload=b"abc")
        meta = record.components["model.bin"]
        assert meta["bytes"] == 3
        assert len(meta["sha256"]) == 64

    def test_index_meta_and_extra_land_in_manifest(self, store):
        record = _publish(
            store,
            index_meta={"backend": "ivf", "nprobe": 4},
            extra={"dim": 32},
        )
        assert record.index_meta == {"backend": "ivf", "nprobe": 4}
        assert record.extra == {"dim": 32}

    def test_empty_components_rejected(self, store):
        with pytest.raises(StoreError):
            store.publish({})

    def test_bad_component_names_rejected(self, store):
        with pytest.raises(StoreError):
            store.publish({"../evil": _writer(b"x")})
        with pytest.raises(StoreError):
            store.publish({MANIFEST_NAME: _writer(b"x")})

    def test_failed_writer_leaves_store_unchanged(self, store):
        _publish(store)

        def explode(path):
            path.write_bytes(b"partial")
            raise RuntimeError("disk full")

        with pytest.raises(RuntimeError):
            store.publish({"model.bin": explode})
        # The crashed publish left neither a generation nor scratch debris.
        assert store.latest_id() == "g000001"
        assert [p.name for p in store.generations_dir.iterdir()] == [
            "g000001"
        ]
        # The id is not burned: the next publish reuses it.
        assert _publish(store).generation_id == "g000002"

    def test_writer_that_writes_nothing_rejected(self, store):
        with pytest.raises(StoreError, match="did not"):
            store.publish({"model.bin": lambda path: None})
        assert store.latest_id() is None


class TestReadPath:
    def test_restore_returns_verified_latest(self, store):
        _publish(store)
        record = store.restore()
        assert record.generation_id == "g000001"

    def test_restore_named_generation(self, store):
        _publish(store, payload=b"one")
        _publish(store, payload=b"two")
        record = store.restore("g000001")
        assert (record.path / "model.bin").read_bytes() == b"one"

    def test_restore_empty_store_raises(self, store):
        with pytest.raises(GenerationNotFoundError):
            store.restore()

    def test_corrupt_component_fails_digest_check(self, store):
        record = _publish(store)
        (record.path / "model.bin").write_bytes(b"flipped bits")
        with pytest.raises(ArtifactIntegrityError, match="digest mismatch"):
            store.restore()
        assert store._digest_failures_total.value == 1

    def test_missing_component_fails_verification(self, store):
        record = _publish(store)
        (record.path / "model.bin").unlink()
        with pytest.raises(ArtifactIntegrityError, match="missing"):
            store.restore()

    def test_latest_survives_missing_pointer(self, store):
        _publish(store)
        _publish(store)
        # A crash between directory rename and pointer replace: the newest
        # generation on disk is authoritative.
        (store.root / LATEST_NAME).unlink()
        assert store.latest_id() == "g000002"

    def test_component_path_unknown_component_raises(self, store):
        record = _publish(store)
        with pytest.raises(GenerationNotFoundError):
            record.component_path("nope.bin")

    def test_list_generations_oldest_first(self, store):
        _publish(store)
        _publish(store)
        ids = [r.generation_id for r in store.list_generations()]
        assert ids == ["g000001", "g000002"]

    def test_describe_is_one_line(self, store):
        record = _publish(store, index_meta={"backend": "exact"})
        line = record.describe()
        assert "\n" not in line
        assert "g000001" in line and "exact" in line


class TestRollbackRetractGc:
    def test_rollback_repoints_latest(self, store):
        _publish(store, payload=b"one")
        _publish(store, payload=b"two")
        record = store.rollback()
        assert record.generation_id == "g000001"
        assert store.latest_id() == "g000001"
        # The rolled-back generation stays on disk for forensics/gc.
        assert (store.generations_dir / "g000002").is_dir()

    def test_rollback_empty_store_raises(self, store):
        with pytest.raises(StoreError, match="empty"):
            store.rollback()

    def test_rollback_past_oldest_raises(self, store):
        _publish(store)
        with pytest.raises(StoreError, match="oldest"):
            store.rollback()

    def test_publish_after_rollback_moves_forward(self, store):
        _publish(store)
        _publish(store)
        store.rollback()
        # New ids keep counting up past the rolled-back generation.
        assert _publish(store).generation_id == "g000003"
        assert store.latest_id() == "g000003"

    def test_retract_latest_repoints_to_previous(self, store):
        _publish(store)
        _publish(store)
        store.retract("g000002")
        assert store.latest_id() == "g000001"
        assert not (store.generations_dir / "g000002").exists()

    def test_retract_last_generation_empties_store(self, store):
        _publish(store)
        store.retract("g000001")
        assert store.latest_id() is None
        assert store.latest() is None

    def test_retract_unknown_raises(self, store):
        with pytest.raises(GenerationNotFoundError):
            store.retract("g000042")

    def test_gc_keeps_newest_and_serving(self, store):
        for _ in range(4):
            _publish(store)
        store.rollback()            # serving g000003, newest g000004
        removed = store.gc(keep_n=1)
        assert removed == ["g000001", "g000002"]
        remaining = [r.generation_id for r in store.list_generations()]
        assert remaining == ["g000003", "g000004"]
        assert store.latest_id() == "g000003"

    def test_gc_nothing_to_remove(self, store):
        _publish(store)
        assert store.gc(keep_n=3) == []

    def test_gc_keep_n_validated(self, store):
        with pytest.raises(ValueError):
            store.gc(keep_n=0)

    def test_gc_dry_run_deletes_nothing(self, store):
        for _ in range(4):
            _publish(store)
        store.rollback()            # serving g000003, newest g000004
        would_remove = store.gc(keep_n=1, dry_run=True)
        assert would_remove == ["g000001", "g000002"]
        # nothing was deleted, no metrics moved, serving unchanged
        remaining = [r.generation_id for r in store.list_generations()]
        assert remaining == ["g000001", "g000002", "g000003", "g000004"]
        assert store.latest_id() == "g000003"
        assert store._gc_removed_total.value == 0
        assert store._generations_gauge.value == 4
        # and a real gc removes exactly what the dry run predicted,
        # retaining the (older-than-keep_n) serving generation
        assert store.gc(keep_n=1) == would_remove
        assert [r.generation_id for r in store.list_generations()] == [
            "g000003", "g000004"
        ]
        assert store.latest_id() == "g000003"


class TestMetrics:
    def test_counters_and_gauge_track_operations(self, tmp_path):
        registry = MetricsRegistry()
        store = ArtifactStore(tmp_path / "store", registry=registry)
        _publish(store)
        _publish(store)
        store.restore()
        store.rollback()
        assert store._publishes_total.value == 2
        assert store._restores_total.value == 1
        assert store._rollbacks_total.value == 1
        assert store._generations_gauge.value == 2
        store.gc(keep_n=1)   # keeps g000002 (newest) + g000001 (serving)
        assert store._gc_removed_total.value == 0

    def test_reopened_store_sees_existing_generations(self, tmp_path):
        root = tmp_path / "store"
        first = ArtifactStore(root)
        _publish(first)
        _publish(first)
        # A fresh process opening the same directory serves the same state.
        second = ArtifactStore(root)
        assert second.latest_id() == "g000002"
        assert second._generations_gauge.value == 2


class TestCrashRecovery:
    def test_stale_scratch_is_swept_by_next_publish(self, store):
        _publish(store)
        scratch = store.generations_dir / ".scratch-g000002"
        scratch.mkdir()
        (scratch / "model.bin").write_bytes(b"half-written")
        record = _publish(store, payload=b"clean")
        assert record.generation_id == "g000002"
        assert (record.path / "model.bin").read_bytes() == b"clean"
        assert not scratch.exists()

    def test_manifest_is_valid_json_with_schema_version(self, store):
        record = _publish(store)
        manifest = json.loads((record.path / MANIFEST_NAME).read_text())
        assert manifest["schema_version"] == 1
        assert manifest["generation"] == "g000001"
        assert record.schema_version == 1
