"""End-to-end fault-tolerance proof (the ISSUE's acceptance scenario).

A synthesized multi-user day of traffic is pushed through the chaos
engine (corruption, truncation, duplication, bounded reordering), the
hardened observer, and the bounded-lateness streaming profiler, with the
daily retrain supervised through one forced failure.  The run must:

* raise nothing;
* quarantine exactly the injected corrupt/truncated packets;
* drop no event (reordering stays inside the lateness bound);
* still emit profiles for every client a fault-free run profiles;
* survive a kill-and-restore from checkpoint with byte-identical
  remaining emissions.
"""

import numpy as np
import pytest

from repro.core.pipeline import NetworkObserverProfiler, PipelineConfig
from repro.core.skipgram import SkipGramConfig
from repro.core.streaming import StreamingConfig, StreamingProfiler
from repro.core.supervisor import RetrainSupervisor, SupervisorConfig
from repro.netobs import (
    CaptureConfig,
    ChaosConfig,
    ChaosEngine,
    NetworkObserver,
    ObserverConfig,
    TrafficSynthesizer,
)

REORDER_DELAY = 2.0
LATENESS = 30.0


class _FailsOnce:
    """Wraps a pipeline so its first daily retrain dies (forced outage)."""

    def __init__(self, pipeline):
        self.pipeline = pipeline
        self.failures_injected = 0

    def train_on_day(self, trace, day):
        if not self.failures_injected:
            self.failures_injected = 1
            raise RuntimeError("forced retrain failure")
        return self.pipeline.train_on_day(trace, day)

    @property
    def profiler(self):
        return self.pipeline.profiler


@pytest.fixture(scope="module")
def clean_packets(trace):
    synthesizer = TrafficSynthesizer(
        seed=99, config=CaptureConfig(followup_packets=0)
    )
    return sorted(
        (
            packet
            for request in trace.day(1)[:1500]
            for packet in synthesizer.packets_for_request(request)
        ),
        key=lambda p: p.timestamp,
    )


def _streaming_model(trace, labelled, tracker_filter):
    """Train the serving model under supervision, one forced failure."""
    pipeline = NetworkObserverProfiler(
        labelled,
        config=PipelineConfig(skipgram=SkipGramConfig(epochs=2, seed=7)),
        tracker_filter=tracker_filter,
    )
    supervisor = RetrainSupervisor(
        _FailsOnce(pipeline),
        config=SupervisorConfig(max_attempts=2, seed=7),
    )
    outcome = supervisor.retrain(trace, 0)
    assert outcome.succeeded and outcome.attempts == 2
    assert supervisor.retries == 1
    return pipeline.profiler


def _run_stream(events, model, tracker_filter):
    stream = StreamingProfiler(
        StreamingConfig(max_lateness_seconds=LATENESS),
        tracker_filter=tracker_filter,
    )
    stream.swap_model(model)
    return stream, stream.ingest_many(events)


def test_chaos_end_to_end(trace, labelled, tracker_filter, clean_packets):
    chaos = ChaosEngine(
        ChaosConfig(
            corrupt_fraction=0.15,
            truncate_fraction=0.05,
            duplicate_fraction=0.05,
            reorder_fraction=0.10,
            reorder_max_delay_seconds=REORDER_DELAY,
            seed=13,
        )
    )
    dirty = chaos.apply(clean_packets)
    injected_bad = chaos.stats.corrupted + chaos.stats.truncated
    # The scenario calls for a meaningful fault volume: >= 5 % of all
    # packets corrupted/truncated, plus duplication and reordering.
    assert injected_bad >= 0.05 * len(clean_packets)
    assert chaos.stats.duplicated > 0
    assert chaos.stats.reordered > 0

    model = _streaming_model(trace, labelled, tracker_filter)

    # -- the faulted run (nothing here may raise) --------------------------
    observer = NetworkObserver(ObserverConfig(vantage="sni"))
    dirty_events = observer.ingest_many(dirty)
    stream, emissions = _run_stream(dirty_events, model, tracker_filter)

    # Quarantine counters match the injected faults exactly.
    assert observer.quarantine.total == injected_bad
    assert observer.flow_table.stats.parse_failures == injected_bad
    assert sum(observer.quarantine.counts.values()) == injected_bad
    assert observer.quarantine.records, "sampled payloads must be kept"

    # Reordering stayed inside the lateness bound: tolerated, not dropped.
    assert stream.late_events_dropped == 0

    # Every client a fault-free run profiles is still profiled.
    clean_observer = NetworkObserver(ObserverConfig(vantage="sni"))
    clean_events = clean_observer.ingest_many(list(clean_packets))
    assert clean_observer.quarantine.total == 0
    _, clean_emissions = _run_stream(clean_events, model, tracker_filter)
    clean_clients = {e.client for e in clean_emissions}
    dirty_clients = {e.client for e in emissions}
    assert clean_clients, "baseline must profile someone"
    assert clean_clients <= dirty_clients

    # Profiles remain well-formed under fault load.
    for emission in emissions:
        categories = emission.profile.categories
        assert ((categories >= 0) & (categories <= 1)).all()


def test_kill_and_restore_matches_uninterrupted_run(
    trace, labelled, tracker_filter, clean_packets, tmp_path
):
    chaos = ChaosEngine(
        ChaosConfig(
            corrupt_fraction=0.10,
            duplicate_fraction=0.05,
            reorder_fraction=0.10,
            reorder_max_delay_seconds=REORDER_DELAY,
            seed=21,
        )
    )
    observer = NetworkObserver()
    events = observer.ingest_many(chaos.apply(clean_packets))
    model = _streaming_model(trace, labelled, tracker_filter)

    continuous, _ = _run_stream(events[:0], model, tracker_filter)
    baseline = continuous.ingest_many(events)

    cut = len(events) // 2
    victim, _ = _run_stream(events[:0], model, tracker_filter)
    head = victim.ingest_many(events[:cut])
    checkpoint = tmp_path / "observer-state.json"
    victim.checkpoint(checkpoint)
    del victim                                    # the crash

    resumed = StreamingProfiler.restore(
        checkpoint, tracker_filter=tracker_filter
    )
    assert resumed.config.max_lateness_seconds == LATENESS
    resumed.swap_model(model)
    tail = resumed.ingest_many(events[cut:])

    expected_tail = baseline[len(head):]
    assert len(tail) == len(expected_tail)
    for ours, theirs in zip(tail, expected_tail):
        assert ours.client == theirs.client
        assert ours.timestamp == theirs.timestamp
        assert ours.window_hosts == theirs.window_hosts
        np.testing.assert_allclose(
            ours.profile.categories, theirs.profile.categories
        )
    # Counters resume seamlessly too.
    assert resumed.events_seen == continuous.events_seen
    assert resumed.profiles_emitted == continuous.profiles_emitted
