"""Tests for IPv4/TCP/UDP packet codecs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netobs.packets import (
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    Packet,
    PacketError,
    bytes_to_ip,
    checksum16,
    ip_to_bytes,
)

ips = st.tuples(
    st.integers(0, 255), st.integers(0, 255),
    st.integers(0, 255), st.integers(0, 255),
).map(lambda t: ".".join(map(str, t)))


class TestAddresses:
    def test_roundtrip(self):
        assert bytes_to_ip(ip_to_bytes("10.1.2.3")) == "10.1.2.3"

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "a.b.c.d", "256.1.1.1"])
    def test_invalid(self, bad):
        with pytest.raises(PacketError):
            ip_to_bytes(bad)


class TestChecksum:
    def test_verifies_to_zero(self):
        data = bytes(range(20))
        check = checksum16(data)
        # inserting the checksum makes the total sum verify to 0
        patched = data[:10] + check.to_bytes(2, "big") + data[12:]
        # (only true when the checksum field starts zeroed)
        data_zeroed = data[:10] + b"\x00\x00" + data[12:]
        check2 = checksum16(data_zeroed)
        patched = data_zeroed[:10] + check2.to_bytes(2, "big") + data_zeroed[12:]
        assert checksum16(patched) == 0

    def test_odd_length_padded(self):
        assert isinstance(checksum16(b"\x01\x02\x03"), int)


class TestPacketRoundTrip:
    def test_tcp(self):
        packet = Packet(
            "10.0.0.1", "192.0.2.1", IP_PROTO_TCP, 50000, 443,
            b"hello tls", timestamp=3.5,
        )
        parsed = Packet.from_bytes(packet.to_bytes(), timestamp=3.5)
        assert parsed == packet

    def test_udp(self):
        packet = Packet(
            "10.0.0.2", "9.9.9.9", IP_PROTO_UDP, 1234, 53, b"dns!",
        )
        parsed = Packet.from_bytes(packet.to_bytes())
        assert parsed.payload == b"dns!"
        assert parsed.src_port == 1234

    def test_empty_payload(self):
        packet = Packet("1.2.3.4", "5.6.7.8", IP_PROTO_UDP, 1, 2, b"")
        assert Packet.from_bytes(packet.to_bytes()).payload == b""

    @given(
        ips, ips,
        st.sampled_from([IP_PROTO_TCP, IP_PROTO_UDP]),
        st.integers(0, 65535), st.integers(0, 65535),
        st.binary(max_size=600),
    )
    def test_property_roundtrip(self, src, dst, proto, sport, dport, payload):
        packet = Packet(src, dst, proto, sport, dport, payload)
        parsed = Packet.from_bytes(packet.to_bytes())
        assert parsed == packet


class TestValidation:
    def test_bad_protocol(self):
        with pytest.raises(PacketError):
            Packet("1.2.3.4", "5.6.7.8", 1, 0, 0, b"")  # ICMP unsupported

    def test_bad_port(self):
        with pytest.raises(PacketError):
            Packet("1.2.3.4", "5.6.7.8", IP_PROTO_TCP, 70000, 0, b"")

    def test_flow_keys(self):
        packet = Packet("1.1.1.1", "2.2.2.2", IP_PROTO_TCP, 10, 20, b"")
        assert packet.flow_key == ("1.1.1.1", "2.2.2.2", IP_PROTO_TCP, 10, 20)
        assert packet.reversed_flow_key() == (
            "2.2.2.2", "1.1.1.1", IP_PROTO_TCP, 20, 10,
        )


class TestParserRobustness:
    def test_truncated_header(self):
        with pytest.raises(PacketError):
            Packet.from_bytes(b"\x45\x00")

    def test_not_ipv4(self):
        data = bytearray(
            Packet("1.2.3.4", "5.6.7.8", IP_PROTO_TCP, 1, 2, b"x").to_bytes()
        )
        data[0] = 0x65  # version 6
        with pytest.raises(PacketError, match="IPv4"):
            Packet.from_bytes(bytes(data))

    def test_corrupted_checksum_detected(self):
        data = bytearray(
            Packet("1.2.3.4", "5.6.7.8", IP_PROTO_TCP, 1, 2, b"x").to_bytes()
        )
        data[8] ^= 0xFF  # flip TTL without fixing the checksum
        with pytest.raises(PacketError, match="checksum"):
            Packet.from_bytes(bytes(data))

    @given(st.binary(max_size=80))
    def test_property_garbage_never_crashes(self, data):
        try:
            Packet.from_bytes(data)
        except PacketError:
            pass
