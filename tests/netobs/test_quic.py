"""Tests for QUIC Initial building/parsing and varints."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netobs.quic import (
    QUICParseError,
    build_initial_packet,
    decode_varint,
    encode_varint,
    parse_initial_sni,
)


class TestVarint:
    @pytest.mark.parametrize(
        ("value", "length"),
        [(0, 1), (63, 1), (64, 2), (16383, 2), (16384, 4),
         (2**30 - 1, 4), (2**30, 8), (2**62 - 1, 8)],
    )
    def test_encoding_lengths(self, value, length):
        assert len(encode_varint(value)) == length

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            encode_varint(2**62)
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_truncated_decode(self):
        with pytest.raises(QUICParseError):
            decode_varint(b"")
        with pytest.raises(QUICParseError):
            decode_varint(b"\x40")  # 2-byte varint, 1 byte present

    @given(st.integers(min_value=0, max_value=2**62 - 1))
    def test_property_roundtrip(self, value):
        encoded = encode_varint(value)
        decoded, consumed = decode_varint(encoded)
        assert decoded == value
        assert consumed == len(encoded)

    @given(st.integers(min_value=0, max_value=2**62 - 1), st.binary(max_size=8))
    def test_property_roundtrip_with_suffix(self, value, suffix):
        encoded = encode_varint(value) + suffix
        decoded, consumed = decode_varint(encoded)
        assert decoded == value
        assert consumed == len(encoded) - len(suffix)


class TestInitialPackets:
    def test_roundtrip(self):
        packet = build_initial_packet("quic.example.com")
        assert parse_initial_sni(packet) == "quic.example.com"

    def test_padded_to_1200(self):
        assert len(build_initial_packet("a.com")) == 1200

    def test_no_sni(self):
        packet = build_initial_packet(None)
        assert parse_initial_sni(packet) is None

    def test_custom_cids(self):
        packet = build_initial_packet(
            "b.example.net", dcid=b"\x01" * 20, scid=b""
        )
        assert parse_initial_sni(packet) == "b.example.net"

    def test_oversized_cid_rejected(self):
        with pytest.raises(ValueError):
            build_initial_packet("a.com", dcid=b"\x00" * 21)

    def test_short_header_rejected(self):
        packet = b"\x40" + bytes(30)
        with pytest.raises(QUICParseError, match="long-header"):
            parse_initial_sni(packet)

    def test_non_initial_rejected(self):
        packet = bytearray(build_initial_packet("a.com"))
        packet[0] = 0x80 | 0x40 | (2 << 4)  # handshake packet type
        with pytest.raises(QUICParseError, match="Initial"):
            parse_initial_sni(bytes(packet))

    def test_unknown_version_rejected(self):
        packet = bytearray(build_initial_packet("a.com"))
        packet[1:5] = b"\xde\xad\xbe\xef"
        with pytest.raises(QUICParseError, match="version"):
            parse_initial_sni(bytes(packet))

    def test_empty_datagram(self):
        with pytest.raises(QUICParseError):
            parse_initial_sni(b"")

    @given(st.binary(max_size=100))
    def test_property_garbage_never_crashes(self, data):
        try:
            result = parse_initial_sni(data)
        except QUICParseError:
            return
        assert result is None or isinstance(result, str)
