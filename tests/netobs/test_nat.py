"""Tests for the NAT box."""

import pytest

from repro.netobs.nat import NatBox, NatExhaustionError
from repro.netobs.packets import IP_PROTO_TCP, IP_PROTO_UDP, Packet


def _packet(src="192.168.1.10", sport=5000, proto=IP_PROTO_TCP):
    return Packet(src, "192.0.2.1", proto, sport, 443, b"x")


class TestTranslation:
    def test_source_rewritten(self):
        nat = NatBox(public_ip="203.0.113.9")
        out = nat.translate(_packet())
        assert out.src_ip == "203.0.113.9"
        assert out.dst_ip == "192.0.2.1"
        assert out.payload == b"x"

    def test_same_flow_same_port(self):
        nat = NatBox()
        a = nat.translate(_packet())
        b = nat.translate(_packet())
        assert a.src_port == b.src_port

    def test_different_clients_different_ports(self):
        nat = NatBox()
        a = nat.translate(_packet(src="192.168.1.10"))
        b = nat.translate(_packet(src="192.168.1.11"))
        assert a.src_port != b.src_port

    def test_same_port_different_protocols_mapped_separately(self):
        nat = NatBox()
        a = nat.translate(_packet(proto=IP_PROTO_TCP))
        b = nat.translate(_packet(proto=IP_PROTO_UDP))
        assert a.src_port != b.src_port

    def test_translate_many(self):
        nat = NatBox()
        packets = [_packet(sport=p) for p in range(5)]
        out = nat.translate_many(packets)
        assert len(out) == 5
        assert nat.stats.translated_packets == 5
        assert nat.stats.active_mappings == 5


class TestLimits:
    def test_port_exhaustion(self):
        nat = NatBox(port_range=(20000, 20002))
        for port in range(3):
            nat.translate(_packet(sport=port))
        with pytest.raises(NatExhaustionError):
            nat.translate(_packet(sport=99))

    def test_invalid_port_range(self):
        with pytest.raises(ValueError):
            NatBox(port_range=(500, 100))
