"""Tests for the encrypted-SNI / IP-only vantage (paper Section 7.2)."""

from repro.netobs.capture import TrafficSynthesizer
from repro.netobs.flows import FlowTable
from repro.netobs.observer import NetworkObserver, ObserverConfig
from repro.netobs.packets import IP_PROTO_TCP, IP_PROTO_UDP, Packet
from repro.netobs.tls import build_client_hello
from repro.traffic.events import HostKind, Request


def _tls_packet(host, sport=50000, dst="192.0.2.9"):
    return Packet(
        "10.0.0.1", dst, IP_PROTO_TCP, sport, 443,
        build_client_hello(host),
    )


class TestIpOnlyFlowTable:
    def test_emits_destination_address(self):
        table = FlowTable(ip_only=True)
        event = table.observe(_tls_packet("secret.example.com"))
        assert event is not None
        assert event.hostname == "ip:192.0.2.9"
        assert event.source == "ip"

    def test_hostname_never_leaks(self):
        table = FlowTable(ip_only=True)
        event = table.observe(_tls_packet("secret.example.com"))
        assert "secret" not in event.hostname

    def test_one_event_per_flow(self):
        table = FlowTable(ip_only=True)
        assert table.observe(_tls_packet("a.com")) is not None
        assert table.observe(_tls_packet("a.com")) is None

    def test_emits_even_without_clienthello(self):
        """Encrypted SNI: any first packet of a 443 flow identifies the
        destination, no parseable handshake needed."""
        table = FlowTable(ip_only=True)
        opaque = Packet(
            "10.0.0.1", "192.0.2.9", IP_PROTO_UDP, 40000, 443,
            b"\xff" * 50,  # unparseable (ESNI) bytes
        )
        event = table.observe(opaque)
        assert event is not None
        assert event.hostname == "ip:192.0.2.9"

    def test_non_https_ignored(self):
        table = FlowTable(ip_only=True)
        packet = Packet(
            "10.0.0.1", "192.0.2.9", IP_PROTO_TCP, 40000, 8080, b"x"
        )
        assert table.observe(packet) is None


class TestIpVantageObserver:
    def _requests(self):
        return [
            Request(
                user_id=0, timestamp=float(i), hostname=h,
                kind=HostKind.SITE, site_domain=h,
            )
            for i, h in enumerate(["a.example.com", "b.example.net"])
        ]

    def test_observer_collects_ip_tokens(self):
        observer = NetworkObserver(ObserverConfig(vantage="ip"))
        synth = TrafficSynthesizer(seed=1)
        observer.ingest_many(synth.synthesize(self._requests()))
        events = [
            e for c in observer.clients for e in observer.events_for(c)
        ]
        assert events
        assert all(e.hostname.startswith("ip:") for e in events)

    def test_sni_vantage_rejects_ip_source(self):
        observer = NetworkObserver(ObserverConfig(vantage="sni"))
        assert observer.flow_table.ip_only is False


class TestCdnIpPooling:
    def test_cdn_hostnames_share_small_pool(self):
        synth = TrafficSynthesizer()
        addresses = {
            synth.server_ip(f"x{i}-abcd-2.akamaihd.net") for i in range(100)
        }
        assert len(addresses) <= 8

    def test_different_cdns_different_pools(self):
        synth = TrafficSynthesizer()
        a = synth.server_ip("x1-abcd-2.akamaihd.net")
        b = synth.server_ip("x1-abcd-2.fastly.net")
        assert a.rsplit(".", 1)[0] != b.rsplit(".", 1)[0]

    def test_ordinary_sites_get_distinct_addresses(self):
        synth = TrafficSynthesizer()
        addresses = {
            synth.server_ip(f"site{i}.example.com") for i in range(50)
        }
        assert len(addresses) > 45  # hash collisions possible but rare
