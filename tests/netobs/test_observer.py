"""Tests for the network observer and its vantages."""

import pytest

from repro.netobs.capture import CaptureConfig, TrafficSynthesizer
from repro.netobs.observer import NetworkObserver, ObserverConfig
from repro.traffic.events import HostKind, Request


def _requests(n_users=3, hosts=("a.example.com", "b.example.net")):
    requests = []
    for user in range(n_users):
        for i, host in enumerate(hosts):
            requests.append(
                Request(
                    user_id=user, timestamp=100.0 * i + user,
                    hostname=host, kind=HostKind.SITE, site_domain=host,
                )
            )
    return requests


class TestVantages:
    def test_invalid_vantage(self):
        with pytest.raises(ValueError):
            NetworkObserver(ObserverConfig(vantage="wifi"))

    def test_sni_vantage_sees_all_requests(self):
        requests = _requests()
        observer = NetworkObserver(ObserverConfig(vantage="sni"))
        synth = TrafficSynthesizer(seed=1)
        observer.ingest_many(synth.synthesize(requests))
        total = sum(len(observer.events_for(c)) for c in observer.clients)
        assert total == len(requests)

    def test_dns_vantage_sees_only_queries(self):
        requests = _requests()
        observer = NetworkObserver(ObserverConfig(vantage="dns"))
        synth = TrafficSynthesizer(
            seed=1, config=CaptureConfig(dns_fraction=1.0)
        )
        observer.ingest_many(synth.synthesize(requests))
        for client in observer.clients:
            assert all(
                e.source == "dns" for e in observer.events_for(client)
            )

    def test_all_vantage_sees_both(self):
        requests = _requests()
        observer = NetworkObserver(ObserverConfig(vantage="all"))
        synth = TrafficSynthesizer(
            seed=1, config=CaptureConfig(dns_fraction=1.0)
        )
        observer.ingest_many(synth.synthesize(requests))
        sources = {
            e.source
            for c in observer.clients
            for e in observer.events_for(c)
        }
        assert "dns" in sources
        assert sources & {"tls-sni", "quic-sni"}


class TestSequences:
    def test_clients_separated_by_ip(self):
        requests = _requests(n_users=4)
        observer = NetworkObserver()
        synth = TrafficSynthesizer(seed=2)
        observer.ingest_many(synth.synthesize(requests))
        assert len(observer.clients) == 4

    def test_client_sequences_time_ordered(self):
        requests = sorted(_requests(), key=lambda r: r.timestamp)
        observer = NetworkObserver()
        synth = TrafficSynthesizer(seed=3)
        observer.ingest_many(synth.synthesize(requests))
        for client, seq in observer.client_sequences().items():
            times = [t for t, _ in seq]
            assert times == sorted(times)

    def test_as_requests_default_mapping(self):
        requests = _requests(n_users=2)
        observer = NetworkObserver()
        synth = TrafficSynthesizer(seed=4)
        observer.ingest_many(synth.synthesize(requests))
        streams = observer.as_requests()
        assert set(streams) == {0, 1}
        for user_id, stream in streams.items():
            assert all(r.user_id == user_id for r in stream)

    def test_as_requests_explicit_mapping(self):
        requests = _requests(n_users=2)
        observer = NetworkObserver()
        synth = TrafficSynthesizer(seed=4)
        observer.ingest_many(synth.synthesize(requests))
        mapping = {observer.clients[0]: 99}
        streams = observer.as_requests(mapping)
        assert set(streams) == {99}

    def test_ingest_bytes_roundtrip(self):
        requests = _requests(n_users=1)
        observer = NetworkObserver()
        synth = TrafficSynthesizer(seed=5)
        for packet in synth.synthesize(requests):
            observer.ingest_bytes(packet.to_bytes(), packet.timestamp)
        total = sum(len(observer.events_for(c)) for c in observer.clients)
        assert total == len(requests)
