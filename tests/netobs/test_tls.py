"""Tests for TLS ClientHello building and SNI parsing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netobs.tls import (
    TLSParseError,
    build_client_hello,
    build_sni_extension,
    parse_client_hello_sni,
)

hostnames = st.from_regex(
    r"[a-z0-9]([a-z0-9-]{0,20}[a-z0-9])?(\.[a-z0-9]([a-z0-9-]{0,15}[a-z0-9])?){1,3}",
    fullmatch=True,
)


class TestRoundTrip:
    def test_basic(self):
        record = build_client_hello("www.example.com")
        assert parse_client_hello_sni(record) == "www.example.com"

    def test_no_sni(self):
        record = build_client_hello(None)
        assert parse_client_hello_sni(record) is None

    def test_with_session_id(self):
        record = build_client_hello(
            "a.example.org", session_id=bytes(range(32))
        )
        assert parse_client_hello_sni(record) == "a.example.org"

    def test_with_unknown_extra_extension(self):
        # ALPN-ish unknown extension must be skipped gracefully.
        extra = b"\x00\x10" + b"\x00\x03" + b"h2!"
        record = build_client_hello("x.test.com", extra_extensions=extra)
        assert parse_client_hello_sni(record) == "x.test.com"

    def test_sni_after_unknown_extension(self):
        extra = build_sni_extension("late.example.com")
        record = build_client_hello(None, extra_extensions=extra)
        assert parse_client_hello_sni(record) == "late.example.com"

    @given(hostnames)
    def test_property_roundtrip(self, hostname):
        assert parse_client_hello_sni(build_client_hello(hostname)) == hostname


class TestBuilderValidation:
    def test_bad_random_length(self):
        with pytest.raises(ValueError):
            build_client_hello("a.com", random_bytes=b"\x00" * 31)

    def test_bad_session_id(self):
        with pytest.raises(ValueError):
            build_client_hello("a.com", session_id=bytes(33))


class TestParserRobustness:
    def test_not_handshake_record(self):
        record = bytearray(build_client_hello("a.com"))
        record[0] = 23  # application data
        with pytest.raises(TLSParseError, match="not a handshake"):
            parse_client_hello_sni(bytes(record))

    def test_not_client_hello(self):
        record = bytearray(build_client_hello("a.com"))
        record[5] = 2  # ServerHello
        with pytest.raises(TLSParseError, match="not a ClientHello"):
            parse_client_hello_sni(bytes(record))

    def test_truncated_record(self):
        record = build_client_hello("a.com")
        with pytest.raises(TLSParseError, match="truncated"):
            parse_client_hello_sni(record[:20])

    def test_empty_input(self):
        with pytest.raises(TLSParseError):
            parse_client_hello_sni(b"")

    @given(st.binary(max_size=200))
    def test_property_garbage_never_crashes(self, data):
        """Arbitrary bytes either parse or raise TLSParseError — nothing
        else (no IndexError/struct.error escapes to the caller)."""
        try:
            result = parse_client_hello_sni(data)
        except TLSParseError:
            return
        assert result is None or isinstance(result, str)

    @given(st.integers(min_value=0, max_value=120), hostnames)
    def test_property_truncation_never_crashes(self, cut, hostname):
        record = build_client_hello(hostname)
        data = record[: len(record) - cut]
        try:
            parse_client_hello_sni(data)
        except TLSParseError:
            pass
