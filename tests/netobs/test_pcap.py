"""Tests for pcap reading/writing."""

import struct

import pytest

from repro.netobs.capture import TrafficSynthesizer
from repro.netobs.observer import NetworkObserver
from repro.netobs.packets import IP_PROTO_TCP, IP_PROTO_UDP, Packet
from repro.netobs.pcap import (
    LINKTYPE_ETHERNET,
    LINKTYPE_RAW,
    PcapError,
    PcapWriter,
    read_pcap,
    write_pcap,
)
from repro.netobs.tls import build_client_hello
from repro.traffic.events import HostKind, Request


def _packets(n=5):
    return [
        Packet(
            "10.0.0.1", "192.0.2.1", IP_PROTO_TCP, 40000 + i, 443,
            build_client_hello(f"host{i}.example.com"),
            timestamp=100.0 + i * 0.5,
        )
        for i in range(n)
    ]


class TestRoundTrip:
    @pytest.mark.parametrize(
        "linktype", [LINKTYPE_RAW, LINKTYPE_ETHERNET]
    )
    def test_roundtrip(self, tmp_path, linktype):
        path = tmp_path / "trace.pcap"
        packets = _packets()
        assert write_pcap(path, packets, linktype=linktype) == 5
        loaded = list(read_pcap(path))
        assert loaded == packets

    def test_timestamps_preserved(self, tmp_path):
        path = tmp_path / "trace.pcap"
        packet = Packet(
            "1.2.3.4", "5.6.7.8", IP_PROTO_UDP, 1, 2, b"x",
            timestamp=1234.567891,
        )
        write_pcap(path, [packet])
        loaded = next(read_pcap(path))
        assert loaded.timestamp == pytest.approx(1234.567891, abs=1e-6)

    def test_empty_capture(self, tmp_path):
        path = tmp_path / "empty.pcap"
        write_pcap(path, [])
        assert list(read_pcap(path)) == []

    def test_context_manager(self, tmp_path):
        path = tmp_path / "cm.pcap"
        with PcapWriter(path) as writer:
            writer.write(_packets(1)[0])
        assert writer.packets_written == 1
        assert len(list(read_pcap(path))) == 1

    def test_big_endian_accepted(self, tmp_path):
        """Captures written on big-endian machines must parse."""
        path = tmp_path / "be.pcap"
        packet = _packets(1)[0]
        payload = packet.to_bytes()
        header = struct.pack(
            ">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, LINKTYPE_RAW
        )
        record = struct.pack(">IIII", 100, 0, len(payload), len(payload))
        path.write_bytes(header + record + payload)
        loaded = list(read_pcap(path))
        assert len(loaded) == 1
        assert loaded[0].src_ip == packet.src_ip


class TestRobustness:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\x00" * 40)
        with pytest.raises(PcapError, match="magic"):
            list(read_pcap(path))

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.pcap"
        path.write_bytes(b"\xd4\xc3\xb2\xa1")
        with pytest.raises(PcapError, match="truncated"):
            list(read_pcap(path))

    def test_truncated_record(self, tmp_path):
        path = tmp_path / "cut.pcap"
        write_pcap(path, _packets(1))
        data = path.read_bytes()
        path.write_bytes(data[:-10])
        with pytest.raises(PcapError, match="truncated packet"):
            list(read_pcap(path))

    def test_non_ip_ethernet_frames_skipped(self, tmp_path):
        path = tmp_path / "arp.pcap"
        header = struct.pack(
            "<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, LINKTYPE_ETHERNET
        )
        arp = b"\x02" * 12 + b"\x08\x06" + b"\x00" * 28  # ethertype ARP
        record = struct.pack("<IIII", 1, 0, len(arp), len(arp))
        path.write_bytes(header + record + arp)
        assert list(read_pcap(path)) == []

    def test_unsupported_linktype(self, tmp_path):
        path = tmp_path / "lt.pcap"
        header = struct.pack(
            "<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 113  # SLL
        )
        path.write_bytes(header)
        with pytest.raises(PcapError, match="linktype"):
            list(read_pcap(path))

    def test_writer_rejects_unknown_linktype(self, tmp_path):
        with pytest.raises(ValueError):
            PcapWriter(tmp_path / "x.pcap", linktype=999)


class TestObserverFromPcap:
    def test_capture_to_pcap_to_profiles(self, tmp_path):
        """The full offline workflow: synthesize -> pcap -> observer."""
        requests = [
            Request(
                user_id=0, timestamp=float(i * 10),
                hostname=f"site{i}.example.com",
                kind=HostKind.SITE, site_domain=f"site{i}.example.com",
            )
            for i in range(4)
        ]
        synthesizer = TrafficSynthesizer(seed=8)
        path = tmp_path / "capture.pcap"
        write_pcap(
            path, synthesizer.synthesize(requests),
            linktype=LINKTYPE_ETHERNET,
        )
        observer = NetworkObserver()
        for packet in read_pcap(path):
            observer.ingest(packet)
        hostnames = {
            e.hostname
            for c in observer.clients
            for e in observer.events_for(c)
        }
        assert hostnames == {r.hostname for r in requests}
