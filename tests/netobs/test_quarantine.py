"""Tests for the malformed-input quarantine and observer hardening."""

import pytest

from repro.netobs.dnswire import build_query
from repro.netobs.observer import NetworkObserver, ObserverConfig
from repro.netobs.packets import IP_PROTO_TCP, IP_PROTO_UDP, Packet
from repro.netobs.quarantine import Quarantine
from repro.netobs.tls import build_client_hello


def _packet(payload, protocol=IP_PROTO_TCP, dst_port=443, timestamp=0.0):
    return Packet(
        src_ip="10.0.0.1", dst_ip="198.51.100.1",
        protocol=protocol, src_port=50000, dst_port=dst_port,
        payload=payload, timestamp=timestamp,
    )


class TestQuarantine:
    def test_counts_and_records(self):
        q = Quarantine(capacity=4, sample_bytes=8)
        q.admit(ValueError("bad"), b"x" * 100, timestamp=5.0, context="tls")
        assert q.total == 1
        assert q.counts["ValueError"] == 1
        record = q.records[0]
        assert record.payload == b"x" * 8
        assert record.payload_length == 100
        assert record.timestamp == 5.0
        assert record.context == "tls"

    def test_buffer_is_bounded_counters_are_not(self):
        q = Quarantine(capacity=3)
        for i in range(10):
            q.admit(ValueError(str(i)), b"p")
        assert len(q) == 3
        assert q.total == 10
        # oldest evicted first: the sample holds the newest three
        assert [r.error for r in q.records] == ["7", "8", "9"]

    def test_zero_capacity_keeps_nothing_but_counts(self):
        q = Quarantine(capacity=0)
        q.admit(ValueError("x"), b"p")
        assert len(q) == 0
        assert q.total == 1

    def test_invalid_limits(self):
        with pytest.raises(ValueError):
            Quarantine(capacity=-1)
        with pytest.raises(ValueError):
            Quarantine(sample_bytes=-1)

    def test_summary_names_kinds(self):
        q = Quarantine()
        assert q.summary() == "quarantine: empty"
        q.admit(ValueError("x"), b"p")
        assert "ValueError=1" in q.summary()


class TestObserverHardening:
    def test_corrupt_client_hello_is_quarantined_not_raised(self):
        observer = NetworkObserver()
        # Promises a 0xffff-byte record it does not carry.
        bad = _packet(b"\x16\x03\x01\xff\xff" + bytes(8))
        assert observer.ingest(bad) is None
        assert observer.quarantine.total == 1
        assert observer.quarantine.counts["TLSParseError"] == 1
        assert observer.flow_table.stats.parse_failures == 1

    def test_corrupt_quic_initial_is_quarantined(self):
        observer = NetworkObserver()
        bad = _packet(b"\xc0\x00\x00\x00\x00" + bytes(8),
                      protocol=IP_PROTO_UDP)
        assert observer.ingest(bad) is None
        assert observer.quarantine.counts["QUICParseError"] == 1

    def test_corrupt_dns_query_is_quarantined(self):
        observer = NetworkObserver(ObserverConfig(vantage="dns"))
        bad = _packet(b"\x00\x00\x01", protocol=IP_PROTO_UDP, dst_port=53)
        assert observer.ingest(bad) is None
        assert observer.quarantine.counts["DNSParseError"] == 1

    def test_undecodable_bytes_are_quarantined(self):
        observer = NetworkObserver()
        assert observer.ingest_bytes(b"\x00garbage", timestamp=3.0) is None
        assert observer.quarantine.counts["PacketError"] == 1
        assert observer.quarantine.records[0].context == "ingest-bytes"

    def test_good_traffic_still_flows_around_bad(self):
        observer = NetworkObserver()
        bad = _packet(b"\x16\x03\x01\xff\xff" + bytes(8))
        good = Packet(
            src_ip="10.0.0.2", dst_ip="198.51.100.1",
            protocol=IP_PROTO_TCP, src_port=50001, dst_port=443,
            payload=build_client_hello("site.example.com"), timestamp=1.0,
        )
        observer.ingest(bad)
        event = observer.ingest(good)
        assert event is not None and event.hostname == "site.example.com"
        assert observer.quarantine.total == 1

    def test_quarantined_flow_is_remembered(self):
        """A corrupted handshake classifies its flow: retransmits of the
        same 5-tuple are not re-parsed (and not re-quarantined)."""
        observer = NetworkObserver()
        bad = _packet(b"\x16\x03\x01\xff\xff" + bytes(8))
        observer.ingest(bad)
        observer.ingest(bad)
        assert observer.quarantine.total == 1

    def test_dns_vantage_ignores_tls_but_still_quarantines_dns(self):
        observer = NetworkObserver(ObserverConfig(vantage="dns"))
        good = _packet(
            build_query("site.example.com"),
            protocol=IP_PROTO_UDP, dst_port=53,
        )
        assert observer.ingest(good) is not None
        assert observer.quarantine.total == 0


class TestObserverConfigValidation:
    def test_zero_max_flows_rejected(self):
        with pytest.raises(ValueError, match="max_flows"):
            ObserverConfig(max_flows=0).validate()

    def test_negative_max_flows_rejected(self):
        with pytest.raises(ValueError, match="max_flows"):
            NetworkObserver(ObserverConfig(max_flows=-5))

    def test_negative_quarantine_limits_rejected(self):
        with pytest.raises(ValueError):
            ObserverConfig(quarantine_capacity=-1).validate()
        with pytest.raises(ValueError):
            ObserverConfig(quarantine_sample_bytes=-1).validate()

    def test_valid_config_accepted(self):
        ObserverConfig(max_flows=1, quarantine_capacity=0).validate()
