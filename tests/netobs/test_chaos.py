"""Tests for the deterministic fault-injection harness."""

import pytest

from repro.netobs.capture import CaptureConfig, TrafficSynthesizer
from repro.netobs.chaos import ChaosConfig, ChaosEngine, _poison_for
from repro.netobs.flows import FlowTable
from repro.netobs.observer import NetworkObserver
from repro.netobs.packets import IP_PROTO_TCP, IP_PROTO_UDP, Packet
from repro.traffic.events import HostKind, Request


def _requests(n_users=4, n_hosts=6):
    requests = []
    t = 0.0
    for user in range(n_users):
        for i in range(n_hosts):
            t += 1.5
            host = f"site{i}.example{user}.com"
            requests.append(
                Request(
                    user_id=user, timestamp=t, hostname=host,
                    kind=HostKind.SITE, site_domain=host,
                )
            )
    return requests


def _clean_packets(seed=7, **capture_kwargs):
    synth = TrafficSynthesizer(
        seed=seed, config=CaptureConfig(**capture_kwargs)
    )
    return sorted(
        (
            packet
            for request in _requests()
            for packet in synth.packets_for_request(request)
        ),
        key=lambda p: p.timestamp,
    )


class TestDeterminism:
    def test_same_seed_same_faults(self):
        packets = _clean_packets()
        config = ChaosConfig(
            corrupt_fraction=0.2, duplicate_fraction=0.1,
            drop_fraction=0.1, reorder_fraction=0.2, seed=3,
        )
        one = ChaosEngine(config).apply(list(packets))
        two = ChaosEngine(config).apply(list(packets))
        assert [(p.timestamp, p.payload) for p in one] == \
            [(p.timestamp, p.payload) for p in two]

    def test_different_seed_different_faults(self):
        packets = _clean_packets()
        a = ChaosEngine(ChaosConfig(drop_fraction=0.3, seed=1))
        b = ChaosEngine(ChaosConfig(drop_fraction=0.3, seed=2))
        a.apply(list(packets))
        b.apply(list(packets))
        # Same expected count, different realizations (overwhelmingly).
        assert a.stats.packets_seen == b.stats.packets_seen


class TestContentFaults:
    def test_no_faults_is_identity(self):
        packets = _clean_packets()
        out = ChaosEngine(ChaosConfig()).apply(list(packets))
        assert [(p.timestamp, p.payload) for p in out] == \
            [(p.timestamp, p.payload) for p in packets]

    def test_every_corruption_causes_exactly_one_parse_failure(self):
        packets = _clean_packets(dns_fraction=1.0)
        engine = ChaosEngine(
            ChaosConfig(corrupt_fraction=0.3, truncate_fraction=0.2, seed=5)
        )
        table = FlowTable()
        for packet in engine.apply(packets):
            table.observe(packet)
        injected = engine.stats.corrupted + engine.stats.truncated
        assert injected > 0
        assert table.stats.parse_failures == injected

    def test_drop_removes_packets(self):
        packets = _clean_packets()
        engine = ChaosEngine(ChaosConfig(drop_fraction=0.5, seed=9))
        out = engine.apply(list(packets))
        assert engine.stats.dropped > 0
        assert len(out) == len(packets) - engine.stats.dropped

    def test_duplicates_add_packets_but_no_events(self):
        packets = _clean_packets(dns_fraction=0.0)
        engine = ChaosEngine(ChaosConfig(duplicate_fraction=0.4, seed=11))
        out = engine.apply(list(packets))
        assert engine.stats.duplicated > 0
        assert len(out) == len(packets) + engine.stats.duplicated
        # Flow dedup absorbs every duplicate handshake.
        observer = NetworkObserver()
        events = observer.ingest_many(out)
        baseline = NetworkObserver().ingest_many(packets)
        assert len(events) == len(baseline)

    def test_poison_targets_only_parseable_packets(self):
        followup = Packet(
            src_ip="10.0.0.1", dst_ip="198.51.100.1",
            protocol=IP_PROTO_TCP, src_port=50000, dst_port=443,
            payload=b"\x17\x03\x03\x00\x10" + bytes(16),
        )
        assert _poison_for(followup) is None
        quic_short = Packet(
            src_ip="10.0.0.1", dst_ip="198.51.100.1",
            protocol=IP_PROTO_UDP, src_port=50000, dst_port=443,
            payload=b"\x40" + bytes(24),
        )
        assert _poison_for(quic_short) is None


class TestTimingFaults:
    def test_reordering_is_bounded(self):
        packets = _clean_packets()
        delay = 2.0
        engine = ChaosEngine(
            ChaosConfig(
                reorder_fraction=0.5,
                reorder_max_delay_seconds=delay, seed=13,
            )
        )
        out = engine.apply(list(packets))
        assert engine.stats.reordered > 0
        assert len(out) == len(packets)
        # Arrival order may disagree with timestamp order, but never by
        # more than the configured delay bound.
        high_water = 0.0
        for packet in out:
            assert packet.timestamp >= high_water - delay
            high_water = max(high_water, packet.timestamp)

    def test_clock_skew_rewrites_timestamps(self):
        packets = _clean_packets()
        engine = ChaosEngine(
            ChaosConfig(
                clock_skew_fraction=0.3, clock_skew_seconds=10.0, seed=17
            )
        )
        out = engine.apply(list(packets))
        assert engine.stats.skewed > 0
        # No drops/dups here and arrival is anchored to the wire time, so
        # output order matches input order packet-for-packet.
        shifted = [
            (before, after) for before, after in zip(packets, out)
            if after.timestamp < before.timestamp
        ]
        assert len(shifted) == engine.stats.skewed
        # Skew is the full amount except where clamped at the epoch.
        for before, after in shifted:
            expected = max(0.0, before.timestamp - 10.0)
            assert after.timestamp == pytest.approx(expected)


class TestConfigValidation:
    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            ChaosConfig(corrupt_fraction=1.5).validate()
        with pytest.raises(ValueError):
            ChaosConfig(drop_fraction=-0.1).validate()

    def test_content_fractions_must_fit_one(self):
        with pytest.raises(ValueError, match="exceed 1"):
            ChaosConfig(
                corrupt_fraction=0.5, truncate_fraction=0.3,
                duplicate_fraction=0.2, drop_fraction=0.1,
            ).validate()

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            ChaosConfig(reorder_max_delay_seconds=-1).validate()
