"""Tests for the traffic synthesizer (requests -> packets)."""

import pytest

from repro.netobs.capture import CaptureConfig, RESOLVER_IP, TrafficSynthesizer
from repro.netobs.packets import IP_PROTO_TCP, IP_PROTO_UDP
from repro.traffic.events import HostKind, Request


def _req(host="a.example.com", user=0, t=0.0):
    return Request(
        user_id=user, timestamp=t, hostname=host,
        kind=HostKind.SITE, site_domain=host,
    )


class TestClientAddressing:
    def test_stable_client_ip(self):
        synth = TrafficSynthesizer()
        assert synth.client_ip(0) == synth.client_ip(0)
        assert synth.client_ip(0) != synth.client_ip(1)

    def test_subnet_layout(self):
        synth = TrafficSynthesizer()
        assert synth.client_ip(257) == "10.0.1.1"

    def test_user_id_out_of_subnet(self):
        synth = TrafficSynthesizer()
        with pytest.raises(ValueError):
            synth.client_ip(70_000)

    def test_wide_subnet_for_million_user_worlds(self):
        synth = TrafficSynthesizer(config=CaptureConfig(client_subnet="10"))
        # layout matches the /16 default for ids that fit both
        assert synth.client_ip(257) == "10.0.1.1"
        assert synth.client_ip(1_000_000) == "10.15.66.64"
        addresses = {synth.client_ip(u) for u in range(0, 2_000_000, 9999)}
        assert len(addresses) == len(range(0, 2_000_000, 9999))
        with pytest.raises(ValueError):
            synth.client_ip(256**3)

    def test_server_ip_stable_per_hostname(self):
        synth = TrafficSynthesizer()
        assert synth.server_ip("a.com") == synth.server_ip("a.com")
        assert synth.server_ip("a.com") != synth.server_ip("b.com")


class TestPacketsForRequest:
    def test_tls_only_config(self):
        config = CaptureConfig(
            quic_fraction=0.0, dns_fraction=0.0, followup_packets=0
        )
        synth = TrafficSynthesizer(seed=0, config=config)
        packets = synth.packets_for_request(_req())
        assert len(packets) == 1
        assert packets[0].protocol == IP_PROTO_TCP
        assert packets[0].dst_port == 443

    def test_quic_only_config(self):
        config = CaptureConfig(
            quic_fraction=1.0, dns_fraction=0.0, followup_packets=0
        )
        synth = TrafficSynthesizer(seed=0, config=config)
        packets = synth.packets_for_request(_req())
        assert len(packets) == 1
        assert packets[0].protocol == IP_PROTO_UDP
        assert packets[0].dst_port == 443

    def test_dns_always(self):
        config = CaptureConfig(
            quic_fraction=0.0, dns_fraction=1.0, followup_packets=0
        )
        synth = TrafficSynthesizer(seed=0, config=config)
        packets = synth.packets_for_request(_req())
        assert packets[0].dst_ip == RESOLVER_IP
        assert packets[0].dst_port == 53

    def test_followups_share_flow(self):
        config = CaptureConfig(
            quic_fraction=0.0, dns_fraction=0.0, followup_packets=3
        )
        synth = TrafficSynthesizer(seed=0, config=config)
        packets = synth.packets_for_request(_req())
        assert len(packets) == 4
        keys = {p.flow_key for p in packets}
        assert len(keys) == 1

    def test_timestamps_non_decreasing(self):
        synth = TrafficSynthesizer(seed=0)
        packets = synth.packets_for_request(_req(t=50.0))
        times = [p.timestamp for p in packets]
        assert times == sorted(times)
        assert times[0] >= 50.0

    def test_deterministic_given_seed(self):
        reqs = [_req(t=float(i)) for i in range(5)]
        a = list(TrafficSynthesizer(seed=9).synthesize(reqs))
        b = list(TrafficSynthesizer(seed=9).synthesize(reqs))
        assert a == b

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            CaptureConfig(quic_fraction=1.5).validate()
        with pytest.raises(ValueError):
            CaptureConfig(followup_packets=-1).validate()
