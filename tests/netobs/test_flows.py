"""Tests for the flow table (per-flow hostname dedup)."""

import pytest

from repro.netobs.flows import FlowTable
from repro.netobs.packets import IP_PROTO_TCP, IP_PROTO_UDP, Packet
from repro.netobs.quic import build_initial_packet
from repro.netobs.tls import build_client_hello
from repro.netobs.dnswire import build_query


def _tls_packet(host, sport=50000, src="10.0.0.1", t=0.0):
    return Packet(
        src, "192.0.2.1", IP_PROTO_TCP, sport, 443,
        build_client_hello(host), timestamp=t,
    )


class TestTLSFlows:
    def test_first_hello_emits(self):
        table = FlowTable()
        event = table.observe(_tls_packet("a.example.com"))
        assert event is not None
        assert event.hostname == "a.example.com"
        assert event.source == "tls-sni"
        assert event.client_ip == "10.0.0.1"

    def test_same_flow_emits_once(self):
        table = FlowTable()
        assert table.observe(_tls_packet("a.example.com")) is not None
        # retransmission of the same ClientHello
        assert table.observe(_tls_packet("a.example.com")) is None
        assert table.stats.events_emitted == 1

    def test_followup_data_ignored(self):
        table = FlowTable()
        table.observe(_tls_packet("a.example.com"))
        data = Packet(
            "10.0.0.1", "192.0.2.1", IP_PROTO_TCP, 50000, 443,
            b"\x17\x03\x03\x00\x05hello",
        )
        assert table.observe(data) is None

    def test_data_before_hello_keeps_waiting(self):
        table = FlowTable()
        data = Packet(
            "10.0.0.1", "192.0.2.1", IP_PROTO_TCP, 50000, 443,
            b"\x17\x03\x03\x00\x05hello",
        )
        assert table.observe(data) is None
        # the handshake then arrives on the same flow and still emits
        assert table.observe(_tls_packet("late.example.com")) is not None

    def test_different_flows_both_emit(self):
        table = FlowTable()
        assert table.observe(_tls_packet("a.com", sport=1000)) is not None
        assert table.observe(_tls_packet("b.com", sport=1001)) is not None

    def test_hello_without_sni_counts_absent(self):
        table = FlowTable()
        packet = Packet(
            "10.0.0.1", "192.0.2.1", IP_PROTO_TCP, 50000, 443,
            build_client_hello(None),
        )
        assert table.observe(packet) is None
        assert table.stats.sni_absent == 1

    def test_malformed_hello_counts_failure(self):
        table = FlowTable()
        packet = Packet(
            "10.0.0.1", "192.0.2.1", IP_PROTO_TCP, 50000, 443,
            b"\x16\x03\x01\x00\x05trash",
        )
        assert table.observe(packet) is None
        assert table.stats.parse_failures == 1

    def test_non_https_port_ignored(self):
        table = FlowTable()
        packet = Packet(
            "10.0.0.1", "192.0.2.1", IP_PROTO_TCP, 50000, 8080,
            build_client_hello("a.com"),
        )
        assert table.observe(packet) is None


class TestQUICFlows:
    def test_initial_emits(self):
        table = FlowTable()
        packet = Packet(
            "10.0.0.1", "192.0.2.1", IP_PROTO_UDP, 40000, 443,
            build_initial_packet("q.example.com"),
        )
        event = table.observe(packet)
        assert event.hostname == "q.example.com"
        assert event.source == "quic-sni"

    def test_same_flow_once(self):
        table = FlowTable()
        payload = build_initial_packet("q.example.com")
        packet = Packet(
            "10.0.0.1", "192.0.2.1", IP_PROTO_UDP, 40000, 443, payload,
        )
        assert table.observe(packet) is not None
        assert table.observe(packet) is None


class TestDNSFlows:
    def test_query_emits(self):
        table = FlowTable()
        packet = Packet(
            "10.0.0.1", "9.9.9.9", IP_PROTO_UDP, 1234, 53,
            build_query("dns.example.com"),
        )
        event = table.observe(packet)
        assert event.hostname == "dns.example.com"
        assert event.source == "dns"

    def test_dns_is_per_query_not_per_flow(self):
        table = FlowTable()
        for host in ("a.com", "b.com"):
            packet = Packet(
                "10.0.0.1", "9.9.9.9", IP_PROTO_UDP, 1234, 53,
                build_query(host),
            )
            assert table.observe(packet).hostname == host


class TestEviction:
    def test_bounded_state(self):
        table = FlowTable(max_flows=5)
        for sport in range(10):
            table.observe(_tls_packet("a.com", sport=sport))
        assert table.stats.evictions == 5

    def test_invalid_max_flows(self):
        with pytest.raises(ValueError):
            FlowTable(max_flows=0)
