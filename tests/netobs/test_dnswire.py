"""Tests for the DNS query codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netobs.dnswire import (
    DNSParseError,
    QTYPE_A,
    QTYPE_AAAA,
    build_query,
    decode_qname,
    encode_qname,
    parse_query,
)

hostnames = st.from_regex(
    r"[a-z0-9]([a-z0-9-]{0,20}[a-z0-9])?(\.[a-z0-9]([a-z0-9-]{0,15}[a-z0-9])?){1,3}",
    fullmatch=True,
)


class TestQname:
    def test_roundtrip(self):
        encoded = encode_qname("mail.google.com")
        assert decode_qname(encoded) == ("mail.google.com", len(encoded))

    def test_trailing_dot_stripped(self):
        assert encode_qname("a.com.") == encode_qname("a.com")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            encode_qname("")

    def test_long_label_rejected(self):
        with pytest.raises(ValueError):
            encode_qname("a" * 64 + ".com")

    def test_long_name_rejected(self):
        name = ".".join(["abcdefgh"] * 40)
        with pytest.raises(ValueError):
            encode_qname(name)

    def test_compression_pointer_rejected(self):
        with pytest.raises(DNSParseError, match="compression"):
            decode_qname(b"\xc0\x0c")

    def test_truncated_label(self):
        with pytest.raises(DNSParseError):
            decode_qname(b"\x05ab")

    def test_missing_terminator(self):
        with pytest.raises(DNSParseError):
            decode_qname(b"\x02ab")

    @given(hostnames)
    def test_property_roundtrip(self, hostname):
        encoded = encode_qname(hostname)
        decoded, consumed = decode_qname(encoded)
        assert decoded == hostname
        assert consumed == len(encoded)


class TestQuery:
    def test_roundtrip(self):
        query = build_query("www.example.com", query_id=42)
        assert parse_query(query) == ("www.example.com", QTYPE_A)

    def test_aaaa(self):
        query = build_query("v6.example.com", qtype=QTYPE_AAAA)
        assert parse_query(query)[1] == QTYPE_AAAA

    def test_bad_query_id(self):
        with pytest.raises(ValueError):
            build_query("a.com", query_id=70_000)

    def test_response_rejected(self):
        query = bytearray(build_query("a.com"))
        query[2] |= 0x80  # QR=1
        with pytest.raises(DNSParseError, match="QR=1"):
            parse_query(bytes(query))

    def test_no_question_rejected(self):
        query = bytearray(build_query("a.com"))
        query[4:6] = b"\x00\x00"  # QDCOUNT = 0
        with pytest.raises(DNSParseError, match="question"):
            parse_query(bytes(query))

    def test_truncated_header(self):
        with pytest.raises(DNSParseError):
            parse_query(b"\x00\x01")

    def test_truncated_question(self):
        query = build_query("a.com")
        with pytest.raises(DNSParseError):
            parse_query(query[:-3])

    @given(st.binary(max_size=64))
    def test_property_garbage_never_crashes(self, data):
        try:
            hostname, qtype = parse_query(data)
        except DNSParseError:
            return
        assert isinstance(hostname, str) and isinstance(qtype, int)
