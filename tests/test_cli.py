"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    @pytest.mark.parametrize(
        "argv",
        [
            ["experiment", "--scale", "small"],
            ["diversity", "--users", "10"],
            ["train", "--output", "x.npz"],
            ["neighbours", "v.npz", "a.com"],
            ["synthesize", "--output", "c.pcap"],
            ["synthesize", "--chaos-corrupt", "0.1", "--chaos-drop", "0.05"],
            ["observe", "c.pcap", "--vantage", "dns"],
            ["worldgen", "--population", "1000", "--batch-events", "256"],
            ["worldgen", "--cursor", "c.json", "--out", "t.jsonl.gz",
             "--shards", "shards", "--observe",
             "--observe-max-events", "100", "--bench-out", "b.json",
             "--rss-limit-mb", "500", "--sessions-mu", "-4"],
            ["worldgen", "--spill-dir", "spill",
             "--users-per-chunk", "100", "--max-batches", "3",
             "--metrics-out", "m.json"],
            ["stream", "c.pcap", "--max-lateness-seconds", "30"],
            ["stream", "c.pcap", "--train", "--train-split", "0.6",
             "--train-epochs", "2", "--seed", "3", "--sites", "80"],
            ["stream", "c.pcap", "--metrics-out", "m.prom",
             "--trace-out", "t.json"],
            ["experiment", "--retrain-attempts", "4",
             "--retrain-backoff", "30"],
            ["experiment", "--metrics-out", "m.json"],
            ["train", "--metrics-out", "m.json", "--trace-out", "t.json"],
            ["observe", "c.pcap", "--metrics-out", "m.prom"],
            ["metrics-dump", "m.json", "--grep", "stream_"],
            ["neighbours", "v.npz", "a.com", "--index-backend", "ivf",
             "--index-nprobe", "4"],
            ["experiment", "--index-backend", "blocked"],
            ["stream", "c.pcap", "--train", "--index-backend", "ivf"],
            ["train", "--store", "models"],
            ["stream", "c.pcap", "--store", "models"],
            ["experiment", "--store", "models"],
            ["store", "list", "models"],
            ["store", "rollback", "models"],
            ["store", "gc", "models", "--keep", "2"],
            ["store", "gc", "models", "--keep", "2", "--dry-run"],
            ["stream", "c.pcap", "--admin-port", "8321",
             "--admin-host", "0.0.0.0"],
            ["stream", "c.pcap", "--train", "--admin-port", "0",
             "--drift-gate", "--drift-inject", "label-shuffle"],
            ["stream", "c.pcap", "--drift-gate", "--drift-max-jsd", "0.1",
             "--drift-max-churn", "0.9"],
            ["stream", "c.pcap", "--metrics-out", "m.prom",
             "--metrics-flush-interval", "5", "--linger", "2"],
            ["experiment", "--admin-port", "8321"],
            ["doctor", "--out", "bundle",
             "--admin-url", "http://127.0.0.1:8321"],
            ["doctor", "--store", "models", "--metrics", "m.prom",
             "--trace", "t.json", "--timeout", "2"],
        ],
    )
    def test_known_commands_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert callable(args.func)

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile-the-world"])

    def test_unknown_store_action_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store", "drop-everything", "models"])

    def test_unknown_index_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["neighbours", "v.npz", "a.com",
                 "--index-backend", "faiss"]
            )

    def test_unknown_drift_injection_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["stream", "c.pcap", "--drift-inject", "vocab-wipe"]
            )


class TestCommands:
    """End-to-end CLI runs on tiny worlds (seconds each)."""

    WORLD = ["--seed", "5", "--sites", "120", "--users", "12", "--days", "1"]

    def test_diversity(self, capsys):
        assert main(["diversity", *self.WORLD]) == 0
        out = capsys.readouterr().out
        assert "Core 80" in out
        assert "75% of users" in out

    def test_train_npz_and_neighbours(self, tmp_path, capsys):
        out_path = tmp_path / "emb.npz"
        assert main(
            ["train", *self.WORLD, "--epochs", "3",
             "--output", str(out_path)]
        ) == 0
        assert out_path.exists()
        # query a hostname that certainly exists: read it from the file
        from repro.core import HostnameEmbeddings

        embeddings = HostnameEmbeddings.load(out_path)
        host = embeddings.vocabulary.host_of(0)
        capsys.readouterr()
        assert main(["neighbours", str(out_path), host, "-n", "3"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3

    def test_train_word2vec_format(self, tmp_path, capsys):
        out_path = tmp_path / "emb.txt"
        assert main(
            ["train", *self.WORLD, "--epochs", "3",
             "--output", str(out_path)]
        ) == 0
        first_line = out_path.read_text().splitlines()[0]
        count, dim = first_line.split()
        assert int(count) > 0 and int(dim) == 100

    def test_neighbours_index_backends_agree(self, tmp_path, capsys):
        """Every --index-backend answers the same nearest-host query."""
        out_path = tmp_path / "emb.npz"
        main(["train", *self.WORLD, "--epochs", "2",
              "--output", str(out_path)])
        from repro.core import HostnameEmbeddings

        host = HostnameEmbeddings.load(out_path).vocabulary.host_of(0)
        outputs = {}
        for backend in ("exact", "blocked", "ivf"):
            capsys.readouterr()
            assert main(
                ["neighbours", str(out_path), host, "-n", "3",
                 "--index-backend", backend]
            ) == 0
            lines = capsys.readouterr().out.strip().splitlines()
            assert len(lines) == 3
            outputs[backend] = [line.split()[-1] for line in lines]
        # blocked is exhaustive too: same hosts as exact, same order
        assert outputs["blocked"] == outputs["exact"]

    def test_neighbours_unknown_host(self, tmp_path, capsys):
        out_path = tmp_path / "emb.npz"
        main(["train", *self.WORLD, "--epochs", "2",
              "--output", str(out_path)])
        capsys.readouterr()
        assert main(
            ["neighbours", str(out_path), "not-a-host.example"]
        ) == 1

    def test_synthesize_then_observe(self, tmp_path, capsys):
        pcap = tmp_path / "capture.pcap"
        assert main(
            ["synthesize", *self.WORLD, "--output", str(pcap)]
        ) == 0
        assert pcap.exists()
        capsys.readouterr()
        assert main(["observe", str(pcap)]) == 0
        out = capsys.readouterr().out
        assert "hostname events" in out
        assert "10.0." in out  # per-client lines

    def test_observe_ip_vantage(self, tmp_path, capsys):
        pcap = tmp_path / "capture.pcap"
        main(["synthesize", *self.WORLD, "--output", str(pcap)])
        capsys.readouterr()
        assert main(["observe", str(pcap), "--vantage", "ip"]) == 0
        assert "ip:" in capsys.readouterr().out

    def test_synthesize_with_chaos_then_stream(self, tmp_path, capsys):
        pcap = tmp_path / "chaotic.pcap"
        assert main(
            ["synthesize", *self.WORLD, "--output", str(pcap),
             "--chaos-corrupt", "0.1", "--chaos-duplicate", "0.05",
             "--chaos-reorder", "0.1"]
        ) == 0
        out = capsys.readouterr().out
        assert "chaos:" in out
        assert main(
            ["stream", str(pcap), "--max-lateness-seconds", "30"]
        ) == 0
        out = capsys.readouterr().out
        assert "quarantine:" in out
        assert "late dropped" in out

    def test_stream_checkpoint_roundtrip(self, tmp_path, capsys):
        pcap = tmp_path / "capture.pcap"
        main(["synthesize", *self.WORLD, "--output", str(pcap)])
        state = tmp_path / "state.json"
        capsys.readouterr()
        assert main(
            ["stream", str(pcap), "--checkpoint", str(state)]
        ) == 0
        assert "checkpointed" in capsys.readouterr().out
        assert state.exists()
        # Second run restores the saved sessions.
        assert main(
            ["stream", str(pcap), "--checkpoint", str(state)]
        ) == 0
        assert "restored" in capsys.readouterr().out


class TestWorldgenCli:
    """The out-of-core generation surface, on a tiny world."""

    ARGS = ["worldgen", "--seed", "5", "--sites", "120",
            "--population", "30", "--days", "1",
            "--batch-events", "256", "--users-per-chunk", "10"]

    def test_stream_to_file_with_bench(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl.gz"
        bench = tmp_path / "bench.json"
        assert main(
            [*self.ARGS, "--out", str(out), "--bench-out", str(bench)]
        ) == 0
        text = capsys.readouterr().out
        assert "events/s" in text
        assert "spill shard" in text
        from repro.traffic import load_trace

        loaded = load_trace(out)
        assert loaded.num_requests > 0
        snapshot = json.loads(bench.read_text())
        assert snapshot["format"] == "repro-metrics-v1"
        names = {m["name"] for m in snapshot["metrics"]}
        assert "bench_worldgen_events_per_second" in names
        assert "bench_worldgen_peak_rss_mb" in names

    def test_cursor_resume_continues_exactly(self, tmp_path, capsys):
        """Kill after 3 batches, rerun with the cursor: the two sharded
        outputs concatenate to exactly the uninterrupted run."""
        cursor = tmp_path / "cursor.json"
        full = tmp_path / "full"
        first = tmp_path / "first"
        rest = tmp_path / "rest"
        assert main([*self.ARGS, "--shards", str(full)]) == 0
        assert main(
            [*self.ARGS, "--shards", str(first),
             "--cursor", str(cursor), "--max-batches", "3"]
        ) == 0
        capsys.readouterr()
        assert main(
            [*self.ARGS, "--shards", str(rest), "--cursor", str(cursor)]
        ) == 0
        assert "resuming from cursor" in capsys.readouterr().out
        from repro.traffic import iter_trace_shards

        whole = list(iter_trace_shards(full))
        assert whole
        resumed = list(iter_trace_shards(first))
        resumed += list(iter_trace_shards(rest))
        assert resumed == whole

    def test_rss_ceiling_enforced(self, capsys):
        assert main([*self.ARGS, "--rss-limit-mb", "1"]) == 1
        assert "exceeds the --rss-limit-mb" in capsys.readouterr().err

    def test_observe_cap_is_reported(self, capsys):
        assert main(
            [*self.ARGS, "--observe", "--observe-max-events", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "observe: capped at 5 events" in out
        assert "hostname events" in out


class TestStoreCli:
    """The --store / store subcommand surface, on a tiny world."""

    WORLD = ["--seed", "5", "--sites", "120", "--users", "12", "--days", "1"]

    @pytest.fixture(scope="class")
    def published(self, tmp_path_factory):
        """A store holding two trained generations + a matching pcap."""
        root = tmp_path_factory.mktemp("store-cli")
        store_dir = root / "models"
        for epochs in ("2", "3"):
            assert main(
                ["train", *self.WORLD, "--epochs", epochs,
                 "--output", str(root / f"emb{epochs}.npz"),
                 "--store", str(store_dir)]
            ) == 0
        pcap = root / "capture.pcap"
        main(["synthesize", *self.WORLD, "--output", str(pcap)])
        return store_dir, pcap

    def _copy(self, published, tmp_path):
        import shutil

        store_dir, _ = published
        clone = tmp_path / "models"
        shutil.copytree(store_dir, clone)
        return clone

    def test_list_marks_serving_generation(self, published, capsys):
        store_dir, _ = published
        capsys.readouterr()
        assert main(["store", "list", str(store_dir)]) == 0
        lines = capsys.readouterr().out.rstrip().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("  g000001")
        assert lines[1].startswith("* g000002")

    def test_list_empty_store(self, tmp_path, capsys):
        capsys.readouterr()
        assert main(["store", "list", str(tmp_path / "empty")]) == 0
        assert "store is empty" in capsys.readouterr().out

    def test_rollback_then_gc(self, published, tmp_path, capsys):
        store_dir = self._copy(published, tmp_path)
        capsys.readouterr()
        assert main(["store", "rollback", str(store_dir)]) == 0
        assert "now serving g000001" in capsys.readouterr().out
        # gc keeps the serving generation even though it is not newest.
        assert main(["store", "gc", str(store_dir), "--keep", "1"]) == 0
        assert "nothing to remove" in capsys.readouterr().out
        assert main(["store", "list", str(store_dir)]) == 0
        assert "* g000001" in capsys.readouterr().out

    def test_gc_dry_run_predicts_without_deleting(
        self, published, tmp_path, capsys
    ):
        store_dir = self._copy(published, tmp_path)
        capsys.readouterr()
        assert main(
            ["store", "gc", str(store_dir), "--keep", "1", "--dry-run"]
        ) == 0
        assert "would remove 1 generation(s): g000001" in (
            capsys.readouterr().out
        )
        # nothing was deleted: both generations still list
        assert main(["store", "list", str(store_dir)]) == 0
        assert len(capsys.readouterr().out.rstrip().splitlines()) == 2
        # the real gc removes exactly what the dry run predicted
        assert main(["store", "gc", str(store_dir), "--keep", "1"]) == 0
        assert "removed 1 generation(s): g000001" in capsys.readouterr().out

    def test_gc_dry_run_retains_serving_generation(
        self, published, tmp_path, capsys
    ):
        store_dir = self._copy(published, tmp_path)
        main(["store", "rollback", str(store_dir)])   # serving g000001
        capsys.readouterr()
        assert main(
            ["store", "gc", str(store_dir), "--keep", "1", "--dry-run"]
        ) == 0
        # keep-1 would normally leave only g000002, but the rolled-back
        # serving generation is never a gc candidate.
        assert "nothing to remove" in capsys.readouterr().out

    def test_rollback_past_oldest_fails(self, published, tmp_path, capsys):
        store_dir = self._copy(published, tmp_path)
        main(["store", "rollback", str(store_dir)])
        capsys.readouterr()
        assert main(["store", "rollback", str(store_dir)]) == 1
        assert "error" in capsys.readouterr().err

    def test_stream_serves_stored_generation(self, published, capsys):
        store_dir, pcap = published
        capsys.readouterr()
        assert main(
            ["stream", str(pcap), "--seed", "5", "--sites", "120",
             "--store", str(store_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "serving stored g000002" in out
        assert "profiles emitted (index:" in out

    def test_stream_checkpoint_warm_restart(
        self, published, tmp_path, capsys
    ):
        store_dir, pcap = published
        state = tmp_path / "state.json"
        main(["stream", str(pcap), "--seed", "5", "--sites", "120",
              "--store", str(store_dir), "--checkpoint", str(state)])
        capsys.readouterr()
        # The restart restores sessions AND re-arms the model in one run.
        assert main(
            ["stream", str(pcap), "--seed", "5", "--sites", "120",
             "--store", str(store_dir), "--checkpoint", str(state)]
        ) == 0
        out = capsys.readouterr().out
        assert "restored" in out
        assert "warm restart: serving g000002" in out


class TestOpsCli:
    """The live operations plane: admin endpoint, drift gate, doctor."""

    WORLD = ["--seed", "5", "--sites", "120", "--users", "12", "--days", "1"]

    def test_drift_injection_trips_the_gate(self, tmp_path, capsys):
        pcap = tmp_path / "capture.pcap"
        main(["synthesize", *self.WORLD, "--output", str(pcap)])
        capsys.readouterr()
        assert main(
            ["stream", str(pcap), "--train", "--seed", "5",
             "--sites", "120", "--train-epochs", "2",
             "--store", str(tmp_path / "models"),
             "--admin-port", "0", "--drift-gate",
             "--drift-inject", "label-shuffle"]
        ) == 0
        out = capsys.readouterr().out
        assert "admin server listening on http://127.0.0.1:" in out
        assert "published generation g000001" in out
        assert "drift injection: drift vs g000001" in out
        assert "BREACH" in out
        assert "drift gate rejected injected retrain" in out
        assert "rolled back to g000001" in out
        # the rejected generation was retracted from the store
        capsys.readouterr()
        assert main(["store", "list", str(tmp_path / "models")]) == 0
        lines = capsys.readouterr().out.rstrip().splitlines()
        assert len(lines) == 1
        assert lines[0].startswith("* g000001")

    def test_flush_interval_requires_metrics_out(self, tmp_path, capsys):
        pcap = tmp_path / "capture.pcap"
        main(["synthesize", *self.WORLD, "--output", str(pcap)])
        capsys.readouterr()
        assert main(
            ["stream", str(pcap), "--metrics-flush-interval", "1"]
        ) == 2
        assert "--metrics-out" in capsys.readouterr().err

    def test_doctor_offline_bundle(self, tmp_path, capsys):
        pcap = tmp_path / "capture.pcap"
        main(["synthesize", *self.WORLD, "--output", str(pcap)])
        main(["stream", str(pcap), "--train", "--seed", "5",
              "--sites", "120", "--train-epochs", "2",
              "--store", str(tmp_path / "models"),
              "--metrics-out", str(tmp_path / "final.prom")])
        capsys.readouterr()
        bundle = tmp_path / "bundle"
        assert main(
            ["doctor", "--out", str(bundle),
             "--store", str(tmp_path / "models"),
             "--metrics", str(tmp_path / "final.prom")]
        ) == 0
        out = capsys.readouterr().out
        assert "doctor bundle written" in out
        assert (bundle / "bundle.json").is_file()
        assert (bundle / "generations.json").is_file()
        assert (bundle / "metrics.prom").is_file()
        assert (bundle / "config.json").is_file()

    def test_doctor_with_nothing_reachable_fails(self, tmp_path, capsys):
        capsys.readouterr()
        assert main(
            ["doctor", "--out", str(tmp_path / "bundle"),
             "--admin-url", "http://127.0.0.1:9", "--timeout", "0.5"]
        ) == 1
        assert "nothing reachable" in capsys.readouterr().err


class TestTelemetry:
    """The --metrics-out / --trace-out / --train surface."""

    WORLD = ["--seed", "5", "--sites", "120", "--users", "12", "--days", "1"]

    @pytest.fixture(scope="class")
    def pcap(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("telemetry") / "capture.pcap"
        main(["synthesize", *self.WORLD, "--output", str(path)])
        return path

    def test_stream_train_covers_every_stage(self, pcap, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        trace = tmp_path / "trace.json"
        assert main(
            ["stream", str(pcap), "--train", "--seed", "5",
             "--sites", "120", "--train-epochs", "2",
             "--metrics-out", str(metrics), "--trace-out", str(trace)]
        ) == 0
        out = capsys.readouterr().out
        assert "model swapped into the stream" in out

        snapshot = json.loads(metrics.read_text())
        assert snapshot["format"] == "repro-metrics-v1"
        names = {m["name"] for m in snapshot["metrics"]}
        for stage in ("netobs_", "quarantine_", "stream_", "train_",
                      "profile_", "retrain_"):
            assert any(n.startswith(stage) for n in names), stage

        chrome = json.loads(trace.read_text())
        span_names = {e["name"] for e in chrome["traceEvents"]}
        assert {"stream.observe", "train.epoch", "retrain.day"} <= span_names

    def test_prometheus_output_for_non_json_suffix(
        self, pcap, tmp_path, capsys
    ):
        metrics = tmp_path / "metrics.prom"
        assert main(
            ["observe", str(pcap), "--metrics-out", str(metrics)]
        ) == 0
        text = metrics.read_text()
        assert "# TYPE netobs_packets_total counter" in text
        assert "netobs_packets_total " in text

    def test_metrics_dump(self, pcap, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        main(["stream", str(pcap), "--metrics-out", str(metrics)])
        capsys.readouterr()
        assert main(["metrics-dump", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "stream_events_total" in out
        assert main(
            ["metrics-dump", str(metrics), "--grep", "netobs_"]
        ) == 0
        filtered = capsys.readouterr().out
        assert "netobs_packets_total" in filtered
        assert "stream_events_total" not in filtered

    def test_metrics_dump_no_match(self, pcap, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        main(["stream", str(pcap), "--metrics-out", str(metrics)])
        capsys.readouterr()
        assert main(
            ["metrics-dump", str(metrics), "--grep", "zzz_nothing"]
        ) == 1
