"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    @pytest.mark.parametrize(
        "argv",
        [
            ["experiment", "--scale", "small"],
            ["diversity", "--users", "10"],
            ["train", "--output", "x.npz"],
            ["neighbours", "v.npz", "a.com"],
            ["synthesize", "--output", "c.pcap"],
            ["synthesize", "--chaos-corrupt", "0.1", "--chaos-drop", "0.05"],
            ["observe", "c.pcap", "--vantage", "dns"],
            ["stream", "c.pcap", "--max-lateness-seconds", "30"],
            ["experiment", "--retrain-attempts", "4",
             "--retrain-backoff", "30"],
        ],
    )
    def test_known_commands_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert callable(args.func)

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile-the-world"])


class TestCommands:
    """End-to-end CLI runs on tiny worlds (seconds each)."""

    WORLD = ["--seed", "5", "--sites", "120", "--users", "12", "--days", "1"]

    def test_diversity(self, capsys):
        assert main(["diversity", *self.WORLD]) == 0
        out = capsys.readouterr().out
        assert "Core 80" in out
        assert "75% of users" in out

    def test_train_npz_and_neighbours(self, tmp_path, capsys):
        out_path = tmp_path / "emb.npz"
        assert main(
            ["train", *self.WORLD, "--epochs", "3",
             "--output", str(out_path)]
        ) == 0
        assert out_path.exists()
        # query a hostname that certainly exists: read it from the file
        from repro.core import HostnameEmbeddings

        embeddings = HostnameEmbeddings.load(out_path)
        host = embeddings.vocabulary.host_of(0)
        capsys.readouterr()
        assert main(["neighbours", str(out_path), host, "-n", "3"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3

    def test_train_word2vec_format(self, tmp_path, capsys):
        out_path = tmp_path / "emb.txt"
        assert main(
            ["train", *self.WORLD, "--epochs", "3",
             "--output", str(out_path)]
        ) == 0
        first_line = out_path.read_text().splitlines()[0]
        count, dim = first_line.split()
        assert int(count) > 0 and int(dim) == 100

    def test_neighbours_unknown_host(self, tmp_path, capsys):
        out_path = tmp_path / "emb.npz"
        main(["train", *self.WORLD, "--epochs", "2",
              "--output", str(out_path)])
        capsys.readouterr()
        assert main(
            ["neighbours", str(out_path), "not-a-host.example"]
        ) == 1

    def test_synthesize_then_observe(self, tmp_path, capsys):
        pcap = tmp_path / "capture.pcap"
        assert main(
            ["synthesize", *self.WORLD, "--output", str(pcap)]
        ) == 0
        assert pcap.exists()
        capsys.readouterr()
        assert main(["observe", str(pcap)]) == 0
        out = capsys.readouterr().out
        assert "hostname events" in out
        assert "10.0." in out  # per-client lines

    def test_observe_ip_vantage(self, tmp_path, capsys):
        pcap = tmp_path / "capture.pcap"
        main(["synthesize", *self.WORLD, "--output", str(pcap)])
        capsys.readouterr()
        assert main(["observe", str(pcap), "--vantage", "ip"]) == 0
        assert "ip:" in capsys.readouterr().out

    def test_synthesize_with_chaos_then_stream(self, tmp_path, capsys):
        pcap = tmp_path / "chaotic.pcap"
        assert main(
            ["synthesize", *self.WORLD, "--output", str(pcap),
             "--chaos-corrupt", "0.1", "--chaos-duplicate", "0.05",
             "--chaos-reorder", "0.1"]
        ) == 0
        out = capsys.readouterr().out
        assert "chaos:" in out
        assert main(
            ["stream", str(pcap), "--max-lateness-seconds", "30"]
        ) == 0
        out = capsys.readouterr().out
        assert "quarantine:" in out
        assert "late dropped" in out

    def test_stream_checkpoint_roundtrip(self, tmp_path, capsys):
        pcap = tmp_path / "capture.pcap"
        main(["synthesize", *self.WORLD, "--output", str(pcap)])
        state = tmp_path / "state.json"
        capsys.readouterr()
        assert main(
            ["stream", str(pcap), "--checkpoint", str(state)]
        ) == 0
        assert "checkpointed" in capsys.readouterr().out
        assert state.exists()
        # Second run restores the saved sessions.
        assert main(
            ["stream", str(pcap), "--checkpoint", str(state)]
        ) == 0
        assert "restored" in capsys.readouterr().out
