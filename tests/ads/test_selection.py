"""Tests for eavesdropper ad selection."""

import numpy as np
import pytest

from repro.ads.inventory import Ad, AdDatabase
from repro.ads.selection import EavesdropperSelector, SelectorConfig


def _setup(num_categories=6, hosts_per_category=5, ads_per_host=2):
    labelled = {}
    ads = []
    for cat in range(num_categories):
        vec = np.zeros(num_categories)
        vec[cat] = 1.0
        for i in range(hosts_per_category):
            host = f"cat{cat}-host{i}.com"
            labelled[host] = vec.copy()
            for _ in range(ads_per_host):
                ads.append(
                    Ad(
                        ad_id=len(ads), landing_domain=host,
                        categories=vec.copy(), width=300, height=250,
                        created_day=0,
                    )
                )
    return labelled, AdDatabase(ads)


class TestNearestHosts:
    def test_nearest_match_category(self):
        labelled, db = _setup()
        selector = EavesdropperSelector(labelled, db)
        profile = np.zeros(6)
        profile[2] = 0.8
        hosts = selector.nearest_hosts(profile, n=5)
        assert all(h.startswith("cat2-") for h in hosts)

    def test_effective_neighbours_capped(self):
        labelled, db = _setup()
        config = SelectorConfig(neighbour_hosts=20, max_host_fraction=0.1)
        selector = EavesdropperSelector(labelled, db, config)
        hosts = selector.nearest_hosts(np.zeros(6))
        assert len(hosts) == max(3, int(len(labelled) * 0.1))

    def test_requires_labels(self):
        _, db = _setup()
        with pytest.raises(ValueError):
            EavesdropperSelector({}, db)


class TestSelect:
    def test_returns_requested_count(self):
        labelled, db = _setup()
        config = SelectorConfig(ads_per_report=10)
        selector = EavesdropperSelector(labelled, db, config)
        profile = np.zeros(6)
        profile[1] = 1.0
        ads = selector.select(profile)
        assert len(ads) == 10

    def test_no_duplicate_ads(self):
        labelled, db = _setup()
        selector = EavesdropperSelector(labelled, db)
        profile = np.zeros(6)
        profile[0] = 1.0
        ads = selector.select(profile)
        ids = [a.ad_id for a in ads]
        assert len(ids) == len(set(ids))

    def test_ads_match_profile_topic(self):
        labelled, db = _setup()
        config = SelectorConfig(ads_per_report=6)
        selector = EavesdropperSelector(labelled, db, config)
        profile = np.zeros(6)
        profile[3] = 0.9
        ads = selector.select(profile)
        matching = sum(1 for a in ads if a.categories[3] == 1.0)
        assert matching >= len(ads) * 0.8

    def test_fallback_fills_when_hosts_have_no_ads(self):
        labelled, db = _setup(ads_per_host=0 + 1)
        # remove ads from the top category's hosts by using a db whose
        # ads all live in other categories
        ads = [a for a in db if a.categories[0] != 1.0]
        db2 = AdDatabase(ads)
        selector = EavesdropperSelector(
            labelled, db2, SelectorConfig(ads_per_report=5)
        )
        profile = np.zeros(6)
        profile[0] = 1.0
        selected = selector.select(profile)
        assert len(selected) == 5  # filled from nearest_by_category

    def test_accepts_session_profile_object(self):
        from repro.core.profiler import SessionProfile

        labelled, db = _setup()
        selector = EavesdropperSelector(labelled, db)
        vec = np.zeros(6)
        vec[4] = 1.0
        profile = SessionProfile(
            categories=vec, session_size=3, known_hosts=3, support=2
        )
        ads = selector.select(profile)
        assert ads
        assert ads[0].categories[4] == 1.0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SelectorConfig(ads_per_report=0).validate()
        with pytest.raises(ValueError):
            SelectorConfig(max_host_fraction=0).validate()
