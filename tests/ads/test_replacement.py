"""Tests for size-matched creative replacement."""

import numpy as np
import pytest

from repro.ads.inventory import Ad
from repro.ads.replacement import ReplacementPolicy, size_compatible


def _ad(size, ad_id=0):
    return Ad(
        ad_id=ad_id, landing_domain="x.com", categories=np.array([1.0]),
        width=size[0], height=size[1], created_day=0,
    )


class TestSizeCompatible:
    def test_exact_match(self):
        assert size_compatible((300, 250), (300, 250))

    def test_within_tolerance(self):
        assert size_compatible((300, 250), (320, 260), rel_tolerance=0.1)

    def test_outside_tolerance(self):
        assert not size_compatible((300, 250), (728, 90))

    def test_asymmetric_dimensions_checked_independently(self):
        assert not size_compatible(
            (300, 250), (300, 600), rel_tolerance=0.25
        )

    def test_zero_tolerance_requires_exact(self):
        assert not size_compatible((300, 250), (301, 250), rel_tolerance=0)
        assert size_compatible((300, 250), (300, 250), rel_tolerance=0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            size_compatible((300, 250), (300, 250), rel_tolerance=-1)
        with pytest.raises(ValueError):
            size_compatible((0, 250), (300, 250))


class TestReplacementPolicy:
    def test_first_compatible_chosen(self):
        policy = ReplacementPolicy(rel_tolerance=0.1)
        candidates = [_ad((728, 90), 1), _ad((300, 250), 2), _ad((300, 250), 3)]
        chosen = policy.choose((300, 250), candidates)
        assert chosen.ad_id == 2

    def test_none_when_no_match(self):
        policy = ReplacementPolicy(rel_tolerance=0.05)
        assert policy.choose((970, 250), [_ad((300, 250))]) is None

    def test_stats_track_rate(self):
        policy = ReplacementPolicy()
        policy.choose((300, 250), [_ad((300, 250))])
        policy.choose((970, 250), [_ad((300, 250))])
        assert policy.stats.attempted == 2
        assert policy.stats.replaced == 1
        assert policy.stats.replacement_rate == pytest.approx(0.5)

    def test_empty_candidates(self):
        policy = ReplacementPolicy()
        assert policy.choose((300, 250), []) is None

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            ReplacementPolicy(rel_tolerance=-0.5)
