"""Tests for the ad-network baseline."""

import numpy as np
import pytest

from repro.ads.adnetwork import AdNetwork, AdNetworkConfig
from repro.ads.inventory import Ad, AdDatabase


def _db(num_categories=4):
    ads = []
    for i in range(num_categories):
        for j in range(3):
            cats = np.zeros(num_categories)
            cats[i] = 1.0
            ads.append(
                Ad(
                    ad_id=len(ads), landing_domain=f"site{i}.com",
                    categories=cats, width=300, height=250, created_day=0,
                )
            )
    return AdDatabase(ads)


@pytest.fixture()
def network():
    return AdNetwork(_db(), num_categories=4, seed=7)


class TestTracking:
    def test_profile_starts_empty(self, network):
        assert network.profile_of(0) is None

    def test_profile_ewma(self, network):
        network.observe_visit(0, np.array([1.0, 0, 0, 0]), "site0.com")
        network.observe_visit(0, np.array([0, 1.0, 0, 0]), "site1.com")
        profile = network.profile_of(0)
        assert profile[0] > profile[1] > 0

    def test_profile_copy_returned(self, network):
        network.observe_visit(0, np.array([1.0, 0, 0, 0]), "site0.com")
        network.profile_of(0)[:] = 9
        assert network.profile_of(0).max() <= 1.0

    def test_retarget_memory_bounded(self):
        config = AdNetworkConfig(retarget_memory=2)
        network = AdNetwork(_db(), 4, seed=7, config=config)
        for i in range(4):
            network.observe_visit(
                0, np.zeros(4), f"site{i % 4}.com"
            )
        assert len(network._retarget[0]) <= 2


class TestServing:
    def test_serves_valid_types(self, network, rng):
        network.observe_visit(0, np.array([1.0, 0, 0, 0]), "site0.com")
        types = set()
        for _ in range(200):
            served = network.serve(0, day=3, context_vector=np.ones(4))
            types.add(served.ad_type)
        assert types <= {"premium", "contextual", "targeted", "retargeted"}
        assert len(types) >= 3

    def test_served_ads_are_fresh(self, network):
        served = network.serve(0, day=5)
        assert served.ad.created_day == 5

    def test_untracked_user_never_retargeted(self, network):
        for _ in range(100):
            served = network.serve(42, day=0)
            assert not served.retargeted
            assert served.ad_type in ("premium", "contextual")

    def test_untracked_no_context_premium_only(self, network):
        types = {
            network.serve(42, day=0).ad_type for _ in range(100)
        }
        assert types == {"premium"}

    def test_targeted_matches_profile(self):
        # candidate pool of 3 over a 12-ad db keeps the pick topical
        network = AdNetwork(
            _db(), 4, seed=7, config=AdNetworkConfig(candidate_ads=3)
        )
        network.observe_visit(0, np.array([0, 0, 1.0, 0]), "site2.com")
        targeted = [
            s for s in (network.serve(0, day=0) for _ in range(300))
            if s.ad_type == "targeted"
        ]
        assert targeted
        match = sum(
            1 for s in targeted if s.ad.categories[2] == 1.0
        )
        assert match / len(targeted) > 0.9

    def test_retargeted_ad_lands_on_visited_site(self, network):
        network.observe_visit(0, np.array([1.0, 0, 0, 0]), "site0.com")
        retargeted = [
            s for s in (network.serve(0, day=0) for _ in range(300))
            if s.retargeted
        ]
        assert retargeted
        assert all(
            s.ad.landing_domain == "site0.com" for s in retargeted
        )

    def test_premium_pool_is_daily(self, network):
        # same day -> limited campaign pool; different days differ
        day3 = {network._premium_ad(3).ad_id for _ in range(100)}
        assert len(day3) <= network.config.premium_campaigns_per_day

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            AdNetworkConfig(premium_weight=-1).validate()
        with pytest.raises(ValueError):
            AdNetworkConfig(profile_alpha=0).validate()
        with pytest.raises(ValueError):
            AdNetworkConfig(premium_campaigns_per_day=0).validate()
