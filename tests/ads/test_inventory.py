"""Tests for ads and the ad database."""

import numpy as np
import pytest

from repro.ads.inventory import Ad, AdDatabase, AdDatabaseConfig, IAB_SIZES


def _ad(ad_id, cats, landing="shop.example.com", size=(300, 250), day=0):
    return Ad(
        ad_id=ad_id, landing_domain=landing,
        categories=np.asarray(cats, dtype=float),
        width=size[0], height=size[1], created_day=day,
    )


class TestAd:
    def test_size_and_area(self):
        ad = _ad(0, [1, 0], size=(728, 90))
        assert ad.size == (728, 90)
        assert ad.area == 65520

    def test_hash_eq_by_id(self):
        assert _ad(1, [1, 0]) == _ad(1, [0, 1])
        assert _ad(1, [1, 0]) != _ad(2, [1, 0])
        assert len({_ad(1, [1, 0]), _ad(1, [0, 1])}) == 1


class TestDatabase:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AdDatabase([])

    def test_ads_for_landing(self):
        db = AdDatabase([_ad(0, [1, 0]), _ad(1, [0, 1], landing="other.com")])
        assert [a.ad_id for a in db.ads_for_landing("other.com")] == [1]
        assert db.ads_for_landing("missing.com") == []

    def test_nearest_by_category(self):
        db = AdDatabase([
            _ad(0, [1, 0, 0]), _ad(1, [0, 1, 0]), _ad(2, [0, 0, 1]),
        ])
        nearest = db.nearest_by_category(np.array([0.9, 0.1, 0.0]), n=2)
        assert nearest[0].ad_id == 0
        assert len(nearest) == 2

    def test_nearest_invalid_n(self):
        db = AdDatabase([_ad(0, [1.0])])
        with pytest.raises(ValueError):
            db.nearest_by_category(np.array([1.0]), n=0)

    def test_nearest_n_clamped(self):
        db = AdDatabase([_ad(0, [1.0]), _ad(1, [0.5])])
        assert len(db.nearest_by_category(np.array([1.0]), n=50)) == 2


class TestHarvest:
    def test_target_size(self, web, rng):
        db = AdDatabase.harvest(
            web, rng, AdDatabaseConfig(target_size=150)
        )
        assert len(db) == 150

    def test_ads_land_on_content_sites(self, web, rng):
        db = AdDatabase.harvest(web, rng, AdDatabaseConfig(target_size=100))
        content = {s.domain for s in web.content_sites}
        core = {s.domain for s in web.core_sites}
        for ad in db:
            assert ad.landing_domain in content
            assert ad.landing_domain not in core

    def test_sizes_are_iab(self, web, rng):
        db = AdDatabase.harvest(web, rng, AdDatabaseConfig(target_size=100))
        valid_sizes = {size for size, _ in IAB_SIZES}
        assert {ad.size for ad in db} <= valid_sizes

    def test_categories_match_landing_site(self, web, rng):
        db = AdDatabase.harvest(web, rng, AdDatabaseConfig(target_size=60))
        for ad in db.ads[:20]:
            expected = web.true_category_vector(ad.landing_domain)
            assert np.array_equal(ad.categories, expected)

    def test_created_day_range(self, web, rng):
        db = AdDatabase.harvest(
            web, rng, AdDatabaseConfig(target_size=80),
            created_day_range=(2, 5),
        )
        days = {ad.created_day for ad in db}
        assert days <= set(range(2, 6))
        assert len(days) > 1

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            AdDatabaseConfig(target_size=0).validate()
        with pytest.raises(ValueError):
            AdDatabaseConfig(ads_per_advertiser_mean=0).validate()
