"""Tests for the click model, intent tracking and impression logging."""

import numpy as np
import pytest

from repro.ads.clicks import (
    ClickModel,
    ClickModelConfig,
    ImpressionLog,
    IntentTracker,
    affinity,
)
from repro.ads.inventory import Ad


def _ad(cats, day=0):
    return Ad(
        ad_id=0, landing_domain="x.com",
        categories=np.asarray(cats, dtype=float),
        width=300, height=250, created_day=day,
    )


class TestAffinity:
    def test_identical_vectors(self):
        v = np.array([0.5, 0.5, 0.0])
        assert affinity(v, v) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert affinity(np.array([1.0, 0]), np.array([0, 1.0])) == 0.0

    def test_negative_clipped(self):
        assert affinity(np.array([1.0, -1.0]), np.array([0.0, 1.0])) == 0.0

    def test_zero_vector(self):
        assert affinity(np.zeros(3), np.ones(3)) == 0.0


class TestClickModel:
    def test_matching_ad_clicks_more(self):
        model = ClickModel(ClickModelConfig(intent_weight=0.0))
        interests = np.array([1.0, 0.0, 0.0])
        p_match = model.click_probability(interests, _ad([1, 0, 0]), 0)
        p_miss = model.click_probability(interests, _ad([0, 1, 0]), 0)
        assert p_match > p_miss
        assert p_miss == pytest.approx(model.config.base_rate)

    def test_retarget_boost(self):
        model = ClickModel()
        interests = np.array([1.0, 0.0])
        p = model.click_probability(interests, _ad([1, 0]), 0)
        p_rt = model.click_probability(
            interests, _ad([1, 0]), 0, retargeted=True
        )
        assert p_rt == pytest.approx(p * model.config.retarget_boost)

    def test_staleness_decay(self):
        model = ClickModel()
        interests = np.array([1.0, 0.0])
        fresh = model.click_probability(interests, _ad([1, 0], day=10), 10)
        stale = model.click_probability(interests, _ad([1, 0], day=0), 10)
        assert stale < fresh
        assert stale == pytest.approx(fresh * 0.99 ** 10)

    def test_probability_capped(self):
        config = ClickModelConfig(
            base_rate=0.9, affinity_slope=0, max_probability=0.05,
            intent_weight=0,
        )
        model = ClickModel(config)
        p = model.click_probability(np.array([1.0]), _ad([1.0]), 0)
        assert p == 0.05

    def test_intent_shifts_probability(self):
        model = ClickModel(ClickModelConfig(intent_weight=0.75))
        interests = np.array([1.0, 0.0])   # stable interest: category 0
        intent = np.array([0.0, 1.0])      # browsing category 1 right now
        ad = _ad([0, 1])                   # ad matches intent
        p_with = model.click_probability(interests, ad, 0, intent=intent)
        p_without = model.click_probability(interests, ad, 0)
        assert p_with > p_without

    def test_effective_interests_blend(self):
        model = ClickModel(ClickModelConfig(intent_weight=0.5))
        interests = np.array([1.0, 0.0])
        intent = np.array([0.0, 2.0])
        blended = model.effective_interests(interests, intent)
        assert blended == pytest.approx(np.array([0.5, 0.5]))

    def test_effective_interests_no_intent(self):
        model = ClickModel()
        interests = np.array([3.0, 0.0])
        assert model.effective_interests(interests, None) == pytest.approx(
            np.array([1.0, 0.0])
        )

    def test_sample_click_statistics(self, rng):
        model = ClickModel(
            ClickModelConfig(
                base_rate=0.3, affinity_slope=0, max_probability=1.0,
                intent_weight=0,
            )
        )
        clicks = sum(
            model.sample_click(np.array([1.0]), _ad([0.0]), 0, rng)
            for _ in range(4000)
        )
        assert clicks / 4000 == pytest.approx(0.3, abs=0.03)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ClickModelConfig(base_rate=-1).validate()
        with pytest.raises(ValueError):
            ClickModelConfig(intent_weight=2).validate()
        with pytest.raises(ValueError):
            ClickModelConfig(staleness_decay_per_day=1.0).validate()
        with pytest.raises(ValueError):
            ClickModelConfig(max_probability=0).validate()


class TestIntentTracker:
    def test_no_observations(self):
        tracker = IntentTracker(3)
        assert tracker.intent(0, 100.0) is None

    def test_mean_over_window(self):
        tracker = IntentTracker(2, window_seconds=100)
        tracker.observe(0, 10.0, np.array([1.0, 0.0]))
        tracker.observe(0, 20.0, np.array([0.0, 1.0]))
        assert tracker.intent(0, 30.0) == pytest.approx(
            np.array([0.5, 0.5])
        )

    def test_old_visits_fall_out(self):
        tracker = IntentTracker(2, window_seconds=100)
        tracker.observe(0, 10.0, np.array([1.0, 0.0]))
        tracker.observe(0, 500.0, np.array([0.0, 1.0]))
        assert tracker.intent(0, 500.0) == pytest.approx(
            np.array([0.0, 1.0])
        )

    def test_users_independent(self):
        tracker = IntentTracker(2)
        tracker.observe(0, 10.0, np.array([1.0, 0.0]))
        assert tracker.intent(1, 10.0) is None

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            IntentTracker(2, window_seconds=0)


class TestImpressionLog:
    def test_counts_and_ctr(self):
        log = ImpressionLog()
        log.record(0, 1, True)
        log.record(0, 1, False)
        log.record(1, 2, False)
        assert log.impressions == 3
        assert log.clicks == 1
        assert log.ctr == pytest.approx(1 / 3)

    def test_empty_ctr(self):
        assert ImpressionLog().ctr == 0.0
        assert ImpressionLog().expected_ctr == 0.0

    def test_expected_ctr(self):
        log = ImpressionLog()
        log.record(0, 0, False, probability=0.2)
        log.record(0, 0, True, probability=0.4)
        assert log.expected_ctr == pytest.approx(0.3)

    def test_invalid_probability(self):
        log = ImpressionLog()
        with pytest.raises(ValueError):
            log.record(0, 0, True, probability=1.5)

    def test_per_user_ctr(self):
        log = ImpressionLog()
        log.record(0, 1, True)
        log.record(0, 2, False)
        log.record(5, 1, False)
        per_user = log.per_user_ctr()
        assert per_user[0] == pytest.approx(0.5)
        assert per_user[5] == 0.0
