"""Tests pinning the reference catalog to the paper's exact counts."""

import pytest

from repro.ontology.catalog import (
    EXPECTED_RAW_CATEGORIES,
    EXPECTED_TOP_LEVEL,
    EXPECTED_TRUNCATED_CATEGORIES,
    VERTICALS,
)
from repro.ontology import build_default_taxonomy


@pytest.fixture(scope="module")
def tax():
    return build_default_taxonomy()


class TestPaperCounts:
    def test_raw_category_count_is_1397(self, tax):
        assert len(tax) == EXPECTED_RAW_CATEGORIES == 1397

    def test_truncated_count_is_328(self, tax):
        assert tax.num_truncated == EXPECTED_TRUNCATED_CATEGORIES == 328

    def test_top_level_count_is_34(self, tax):
        assert len(tax.top_level()) == EXPECTED_TOP_LEVEL == 34

    def test_telecom_has_exactly_two_subcategories(self, tax):
        # "category Telecom only has two subcategories"
        telecom = tax.by_name("Internet & Telecom")
        assert len(tax.descendants(telecom)) == 2
        assert tax.max_depth(telecom) == 2

    def test_computers_has_123_subcategories_in_5_levels(self, tax):
        # "Computers & Electronics has 123 subcategories organized in a
        # 5-level hierarchy"
        ce = tax.by_name("Computers & Electronics")
        assert len(tax.descendants(ce)) == 123
        assert tax.max_depth(ce) == 5


class TestCatalogConsistency:
    def test_vertical_names_unique(self):
        names = [name for name, _, _, _ in VERTICALS]
        assert len(names) == len(set(names))

    def test_level2_counts_sum_to_294(self):
        assert sum(len(subs) for _, subs, _, _ in VERTICALS) == 294

    def test_deeper_budgets_sum_to_1069(self):
        assert sum(budget for _, _, budget, _ in VERTICALS) == 1069

    def test_every_vertical_reaches_declared_depth(self, tax):
        for name, _subs, budget, max_depth in VERTICALS:
            vertical = tax.by_name(name)
            actual = tax.max_depth(vertical)
            if budget > 0:
                assert actual == max_depth, name
            else:
                assert actual <= max_depth, name

    def test_all_category_names_unique(self, tax):
        names = [c.name for c in tax]
        assert len(names) == len(set(names))

    def test_build_is_deterministic(self, tax):
        again = build_default_taxonomy()
        assert [c.name for c in again] == [c.name for c in tax]
        assert [c.parent_id for c in again] == [c.parent_id for c in tax]

    def test_no_orphan_categories(self, tax):
        for category in tax:
            path = tax.path(category)
            assert path[0].level == 1
            assert path[-1] is category
