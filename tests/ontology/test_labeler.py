"""Tests for the coverage-limited ontology labeler."""

import pytest

from repro.ontology import OntologyLabeler, build_default_taxonomy
from repro.utils.randomness import derive_rng


@pytest.fixture(scope="module")
def tax():
    return build_default_taxonomy()


def _ground_truth(tax, n=50):
    cats = tax.truncated_categories()
    return {
        f"site{i}.com": [(cats[i % len(cats)], 1.0)] for i in range(n)
    }


class TestCoverage:
    def test_target_fraction_of_universe(self, tax):
        labeler = OntologyLabeler(tax, coverage=0.10)
        truth = _ground_truth(tax, 80)
        labels = labeler.build_labelled_set(
            truth, universe_size=400, rng=derive_rng(0, "t")
        )
        assert len(labels) == 40  # 10% of 400
        assert labeler.stats.coverage == pytest.approx(0.10)

    def test_capped_at_labelable_set(self, tax):
        labeler = OntologyLabeler(tax, coverage=0.9)
        truth = _ground_truth(tax, 10)
        labels = labeler.build_labelled_set(
            truth, universe_size=1000, rng=derive_rng(0, "t")
        )
        assert len(labels) == 10

    def test_zero_coverage(self, tax):
        labeler = OntologyLabeler(tax, coverage=0.0)
        labels = labeler.build_labelled_set(
            _ground_truth(tax, 10), universe_size=100, rng=derive_rng(0, "t")
        )
        assert labels == {}

    def test_universe_smaller_than_labelable_rejected(self, tax):
        labeler = OntologyLabeler(tax)
        with pytest.raises(ValueError):
            labeler.build_labelled_set(
                _ground_truth(tax, 10), universe_size=5,
                rng=derive_rng(0, "t"),
            )

    def test_invalid_coverage_rejected(self, tax):
        with pytest.raises(ValueError):
            OntologyLabeler(tax, coverage=1.5)
        with pytest.raises(ValueError):
            OntologyLabeler(tax, popularity_bias=-1)


class TestPopularityBias:
    def test_popular_hosts_labelled_more_often(self, tax):
        truth = _ground_truth(tax, 100)
        hosts = sorted(truth)
        popularity = {h: (1000.0 if i < 10 else 0.1) for i, h in enumerate(hosts)}
        hits = 0
        for trial in range(30):
            labeler = OntologyLabeler(tax, coverage=0.05, popularity_bias=1.0)
            labels = labeler.build_labelled_set(
                truth, universe_size=200,
                rng=derive_rng(trial, "bias"),
                popularity=popularity,
            )
            hits += sum(1 for h in hosts[:10] if h in labels)
        # 10 labels per trial; popular decile should dominate selections.
        assert hits > 30 * 10 * 0.5

    def test_zero_bias_is_uniform_selection(self, tax):
        truth = _ground_truth(tax, 100)
        labeler = OntologyLabeler(tax, coverage=0.05, popularity_bias=0.0)
        labels = labeler.build_labelled_set(
            truth, universe_size=200, rng=derive_rng(0, "u"),
            popularity={h: 99.0 for h in truth},
        )
        assert len(labels) == 10


class TestQueryInterface:
    def test_query_known_host_returns_copy(self, tax):
        labeler = OntologyLabeler(tax, coverage=1.0)
        labeler.build_labelled_set(
            _ground_truth(tax, 5), universe_size=5, rng=derive_rng(0, "q")
        )
        host = labeler.labelled_hosts[0]
        vec = labeler.query(host)
        vec[:] = 99.0
        assert labeler.query(host).max() <= 1.0  # internal state untouched

    def test_query_unknown_returns_none(self, tax):
        labeler = OntologyLabeler(tax, coverage=1.0)
        labeler.build_labelled_set(
            _ground_truth(tax, 5), universe_size=5, rng=derive_rng(0, "q")
        )
        assert labeler.query("unknown.example") is None
        assert not labeler.knows("unknown.example")

    def test_stats_before_build_raises(self, tax):
        with pytest.raises(RuntimeError):
            OntologyLabeler(tax).stats

    def test_vectors_live_in_truncated_space(self, tax):
        labeler = OntologyLabeler(tax, coverage=1.0)
        labels = labeler.build_labelled_set(
            _ground_truth(tax, 5), universe_size=5, rng=derive_rng(0, "q")
        )
        for vec in labels.values():
            assert vec.shape == (tax.num_truncated,)
            assert ((vec >= 0) & (vec <= 1)).all()
