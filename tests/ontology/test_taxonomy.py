"""Tests for the category taxonomy and its level-2 truncation."""

import pytest

from repro.ontology.taxonomy import Taxonomy


@pytest.fixture()
def small_taxonomy():
    t = Taxonomy()
    travel = t.add("Travel")
    air = t.add("Air Travel", parent=travel)
    t.add("Budget Airlines", parent=air)
    t.add("Hotels", parent=travel)
    sports = t.add("Sports")
    t.add("Soccer", parent=sports)
    return t


class TestStructure:
    def test_levels(self, small_taxonomy):
        assert small_taxonomy.by_name("Travel").level == 1
        assert small_taxonomy.by_name("Air Travel").level == 2
        assert small_taxonomy.by_name("Budget Airlines").level == 3

    def test_duplicate_name_rejected(self, small_taxonomy):
        with pytest.raises(ValueError, match="duplicate"):
            small_taxonomy.add("Travel")

    def test_unknown_name_raises(self, small_taxonomy):
        with pytest.raises(KeyError):
            small_taxonomy.by_name("Cooking")

    def test_children(self, small_taxonomy):
        travel = small_taxonomy.by_name("Travel")
        names = {c.name for c in small_taxonomy.children(travel)}
        assert names == {"Air Travel", "Hotels"}

    def test_top_level(self, small_taxonomy):
        assert [c.name for c in small_taxonomy.top_level()] == [
            "Travel", "Sports",
        ]

    def test_path(self, small_taxonomy):
        budget = small_taxonomy.by_name("Budget Airlines")
        assert [c.name for c in small_taxonomy.path(budget)] == [
            "Travel", "Air Travel", "Budget Airlines",
        ]

    def test_descendants(self, small_taxonomy):
        travel = small_taxonomy.by_name("Travel")
        names = {c.name for c in small_taxonomy.descendants(travel)}
        assert names == {"Air Travel", "Budget Airlines", "Hotels"}

    def test_max_depth(self, small_taxonomy):
        assert small_taxonomy.max_depth(small_taxonomy.by_name("Travel")) == 3
        assert small_taxonomy.max_depth(small_taxonomy.by_name("Sports")) == 2


class TestTruncation:
    def test_truncated_count_excludes_level3(self, small_taxonomy):
        # Travel, Air Travel, Hotels, Sports, Soccer (not Budget Airlines)
        assert small_taxonomy.num_truncated == 5

    def test_truncate_maps_to_level2_ancestor(self, small_taxonomy):
        budget = small_taxonomy.by_name("Budget Airlines")
        assert small_taxonomy.truncate(budget).name == "Air Travel"

    def test_truncate_identity_below_level3(self, small_taxonomy):
        air = small_taxonomy.by_name("Air Travel")
        assert small_taxonomy.truncate(air) is air

    def test_truncated_indices_dense_and_unique(self, small_taxonomy):
        indices = [
            small_taxonomy.truncated_index(c)
            for c in small_taxonomy.truncated_categories()
        ]
        assert sorted(indices) == list(range(small_taxonomy.num_truncated))

    def test_deep_category_shares_index_with_ancestor(self, small_taxonomy):
        budget = small_taxonomy.by_name("Budget Airlines")
        air = small_taxonomy.by_name("Air Travel")
        assert small_taxonomy.truncated_index(
            budget
        ) == small_taxonomy.truncated_index(air)

    def test_top_level_index_of(self, small_taxonomy):
        soccer_idx = small_taxonomy.truncated_index(
            small_taxonomy.by_name("Soccer")
        )
        assert small_taxonomy.top_level_index_of(soccer_idx) == 1  # Sports


class TestVectors:
    def test_vector_places_importance(self, small_taxonomy):
        hotels = small_taxonomy.by_name("Hotels")
        vec = small_taxonomy.vector([(hotels, 0.8)])
        assert vec.shape == (small_taxonomy.num_truncated,)
        assert vec[small_taxonomy.truncated_index(hotels)] == 0.8
        assert vec.sum() == pytest.approx(0.8)

    def test_vector_deep_category_lands_on_ancestor(self, small_taxonomy):
        budget = small_taxonomy.by_name("Budget Airlines")
        air = small_taxonomy.by_name("Air Travel")
        vec = small_taxonomy.vector([(budget, 1.0)])
        assert vec[small_taxonomy.truncated_index(air)] == 1.0

    def test_vector_caps_at_one(self, small_taxonomy):
        air = small_taxonomy.by_name("Air Travel")
        budget = small_taxonomy.by_name("Budget Airlines")
        vec = small_taxonomy.vector([(air, 0.9), (budget, 0.9)])
        assert vec.max() == 1.0

    def test_vector_rejects_out_of_range_importance(self, small_taxonomy):
        air = small_taxonomy.by_name("Air Travel")
        with pytest.raises(ValueError):
            small_taxonomy.vector([(air, 1.5)])

    def test_vector_components_in_unit_interval(self, small_taxonomy):
        pairs = [
            (c, 0.9) for c in small_taxonomy.truncated_categories()
        ]
        vec = small_taxonomy.vector(pairs)
        assert ((vec >= 0) & (vec <= 1)).all()
