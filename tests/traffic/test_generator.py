"""Tests for multi-day trace generation."""

import pytest

from repro.traffic.generator import DiurnalModel, TraceGenerator
from repro.utils.timeutils import DAY_SECONDS


class TestTrace:
    def test_days_sorted_by_time(self, trace):
        for day_requests in trace.days:
            times = [r.timestamp for r in day_requests]
            assert times == sorted(times)

    def test_requests_fall_in_their_day(self, trace):
        for offset, day_requests in enumerate(trace.days):
            day = trace.start_day + offset
            for request in day_requests:
                assert day * DAY_SECONDS <= request.timestamp
                # Sessions can spill slightly past midnight; allow 2 h.
                assert request.timestamp < (day + 1.1) * DAY_SECONDS

    def test_user_sequences_partition_day(self, trace):
        sequences = trace.user_sequences(0)
        total = sum(len(v) for v in sequences.values())
        assert total == len(trace.day(0))
        for user_id, requests in sequences.items():
            assert all(r.user_id == user_id for r in requests)
            times = [r.timestamp for r in requests]
            assert times == sorted(times)

    def test_per_user_hostnames(self, trace):
        per_user = trace.per_user_hostnames()
        assert per_user
        for user_id, hostnames in per_user.items():
            assert hostnames

    def test_filter_preserves_structure(self, trace):
        filtered = trace.filter(lambda r: r.user_id == 0)
        assert len(filtered) == len(trace)
        assert filtered.user_ids() <= {0}

    def test_counts(self, trace):
        assert trace.num_requests == sum(
            trace.hostname_counts().values()
        )


class TestGenerator:
    def test_reproducible_per_day(self, web, population):
        gen = TraceGenerator(web, population, seed=77)
        assert gen.day_requests(1) == gen.day_requests(1)

    def test_days_independent_of_generation_order(self, web, population):
        gen_a = TraceGenerator(web, population, seed=77)
        day1_first = gen_a.day_requests(1)
        gen_b = TraceGenerator(web, population, seed=77)
        gen_b.day_requests(0)  # generate day 0 first
        assert gen_b.day_requests(1) == day1_first

    def test_different_seeds_differ(self, web, population):
        a = TraceGenerator(web, population, seed=1).day_requests(0)
        b = TraceGenerator(web, population, seed=2).day_requests(0)
        assert a != b

    def test_start_day_offset(self, web, population):
        gen = TraceGenerator(web, population, seed=77)
        shifted = gen.generate(1, start_day=3)
        assert shifted.start_day == 3
        assert shifted.day(3)
        with pytest.raises(ValueError, match=r"range \[3, 3\]"):
            shifted.day(5)

    def test_day_below_range_no_wraparound(self, web, population):
        """Regression: day(start_day - 1) used to wrap around via
        Python's negative indexing and silently return the *last* day."""
        gen = TraceGenerator(web, population, seed=77)
        shifted = gen.generate(2, start_day=3)
        with pytest.raises(ValueError, match=r"day 2 outside trace range"):
            shifted.day(2)
        with pytest.raises(ValueError, match=r"range \[3, 4\]"):
            shifted.day(-1)

    def test_negative_day_rejected(self, web, population):
        gen = TraceGenerator(web, population, seed=77)
        with pytest.raises(ValueError):
            gen.day_requests(-1)
        with pytest.raises(ValueError):
            gen.generate(0)


class TestDiurnalModel:
    def test_samples_within_day_span(self, rng):
        model = DiurnalModel()
        for _ in range(200):
            start = model.sample_start(2, rng)
            assert 2 * DAY_SECONDS <= start < 3 * DAY_SECONDS

    def test_evening_peak_dominates(self, rng):
        model = DiurnalModel()
        hours = [
            (model.sample_start(0, rng) % DAY_SECONDS) / 3600.0
            for _ in range(2000)
        ]
        evening = sum(1 for h in hours if 18 <= h <= 24)
        morning = sum(1 for h in hours if 0 <= h <= 6)
        assert evening > morning
