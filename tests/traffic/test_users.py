"""Tests for the synthetic user population."""

import numpy as np
import pytest

from repro.traffic.users import PopulationConfig, UserPopulation
from repro.utils.randomness import derive_rng


class TestGeneration:
    def test_population_size(self, population):
        assert len(population) == 40

    def test_interests_are_distribution(self, population):
        for user in population:
            weights = list(user.interests.values())
            assert all(w > 0 for w in weights)
            assert sum(weights) == pytest.approx(1.0)

    def test_interest_count_within_bounds(self, population):
        config = PopulationConfig()
        for user in population:
            assert 1 <= len(user.interests) <= config.max_interests

    def test_interests_land_on_populated_categories(self, population, web):
        for user in population:
            for idx in user.interests:
                assert web.sites_in_category(idx), idx

    def test_behavioural_params_in_range(self, population):
        config = PopulationConfig()
        lo_core, hi_core = config.core_affinity_range
        lo_exp, hi_exp = config.explore_prob_range
        for user in population:
            assert lo_core <= user.core_affinity <= hi_core
            assert lo_exp <= user.explore_prob <= hi_exp
            assert user.sessions_per_day > 0

    def test_deterministic(self, web):
        config = PopulationConfig(num_users=10)
        a = UserPopulation.generate(web, derive_rng(9, "p"), config)
        b = UserPopulation.generate(web, derive_rng(9, "p"), config)
        for ua, ub in zip(a, b):
            assert ua.interests == ub.interests

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            PopulationConfig(num_users=0).validate()
        with pytest.raises(ValueError):
            PopulationConfig(min_interests=5, max_interests=3).validate()
        with pytest.raises(ValueError):
            PopulationConfig(core_affinity_range=(0.9, 0.1)).validate()


class TestProfileVectors:
    def test_interest_vector_matches_dict(self, population, taxonomy):
        user = population.by_id(0)
        vec = user.interest_vector(taxonomy.num_truncated)
        for idx, weight in user.interests.items():
            assert vec[idx] == pytest.approx(weight)
        assert vec.sum() == pytest.approx(1.0)

    def test_sample_interest_distribution(self, population):
        user = population.by_id(0)
        rng = np.random.default_rng(0)
        draws = [user.sample_interest(rng) for _ in range(3000)]
        freq = {i: draws.count(i) / len(draws) for i in user.interests}
        for idx, weight in user.interests.items():
            assert freq[idx] == pytest.approx(weight, abs=0.05)

    def test_interest_matrix_shape_and_rows(self, population, taxonomy):
        matrix = population.interest_matrix()
        assert matrix.shape == (len(population), taxonomy.num_truncated)
        assert np.allclose(matrix.sum(axis=1), 1.0)
