"""Tests for request event records."""

from repro.traffic.events import HostKind, Request, hostnames_of


def _request(hostname="a.com", kind=HostKind.SITE, t=0.0):
    return Request(
        user_id=1, timestamp=t, hostname=hostname, kind=kind,
        site_domain=hostname,
    )


class TestRequest:
    def test_is_content(self):
        assert _request(kind=HostKind.SITE).is_content()
        assert _request(kind=HostKind.CORE).is_content()
        assert not _request(kind=HostKind.SATELLITE).is_content()
        assert not _request(kind=HostKind.TRACKER).is_content()

    def test_frozen(self):
        request = _request()
        try:
            request.hostname = "b.com"
        except AttributeError:
            pass
        else:
            raise AssertionError("Request should be immutable")

    def test_hostnames_of_preserves_order(self):
        requests = [_request("b.com", t=1), _request("a.com", t=2)]
        assert hostnames_of(requests) == ["b.com", "a.com"]

    def test_equality(self):
        assert _request() == _request()
        assert _request("a.com") != _request("b.com")
