"""Tests for trace persistence."""

import gzip
import json

import pytest

from repro.traffic.io import TraceFormatError, load_trace, save_trace


class TestRoundTrip:
    def test_roundtrip_preserves_structure(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl.gz"
        count = save_trace(trace, path)
        assert count == trace.num_requests
        loaded = load_trace(path)
        assert len(loaded) == len(trace)
        assert loaded.start_day == trace.start_day
        assert loaded.num_requests == trace.num_requests
        for original_day, loaded_day in zip(trace.days, loaded.days):
            assert len(original_day) == len(loaded_day)
            for a, b in zip(original_day, loaded_day):
                assert a.user_id == b.user_id
                assert a.hostname == b.hostname
                assert a.kind == b.kind
                assert a.site_domain == b.site_domain
                assert a.timestamp == pytest.approx(b.timestamp, abs=1e-3)

    def test_statistics_survive(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl.gz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.distinct_hostnames() == trace.distinct_hostnames()
        assert loaded.user_ids() == trace.user_ids()
        assert loaded.counts_by_kind() == trace.counts_by_kind()


class TestRobustness:
    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl.gz"
        with gzip.open(path, "wt") as handle:
            handle.write(json.dumps({"format": "something-else"}) + "\n")
        with pytest.raises(TraceFormatError, match="unknown format"):
            load_trace(path)

    def test_garbage_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("not json\n")
        with pytest.raises(TraceFormatError, match="bad header"):
            load_trace(path)

    def test_bad_record_rejected_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl.gz"
        with gzip.open(path, "wt") as handle:
            handle.write(
                json.dumps(
                    {"format": "repro-trace-v1", "start_day": 0,
                     "num_days": 1}
                ) + "\n"
            )
            handle.write('{"u": 1}\n')
        with pytest.raises(TraceFormatError, match="line 2"):
            load_trace(path)

    def test_external_data_without_day_annotation(self, tmp_path):
        """Foreign exports may omit 'd'; bucketing falls back to time."""
        path = tmp_path / "ext.jsonl.gz"
        with gzip.open(path, "wt") as handle:
            handle.write(
                json.dumps(
                    {"format": "repro-trace-v1", "start_day": 0,
                     "num_days": 2}
                ) + "\n"
            )
            for t in (100.0, 86500.0):
                handle.write(
                    json.dumps(
                        {"u": 0, "t": t, "h": "a.com", "k": "site",
                         "s": "a.com"}
                    ) + "\n"
                )
        loaded = load_trace(path)
        assert len(loaded.day(0)) == 1
        assert len(loaded.day(1)) == 1

    def test_blank_lines_ignored(self, tmp_path, trace):
        path = tmp_path / "trace.jsonl.gz"
        save_trace(trace, path)
        raw = gzip.decompress(path.read_bytes())
        path.write_bytes(gzip.compress(raw + b"\n\n"))
        loaded = load_trace(path)
        assert loaded.num_requests == trace.num_requests


class TestWorldBuilder:
    def test_make_world_components(self):
        from repro import make_world

        world = make_world(seed=3, num_sites=80, num_users=10, num_days=1)
        assert len(world.population) == 10
        assert len(world.trace) == 1
        assert world.labelled
        assert 0.05 < world.coverage < 0.2
        assert world.tracker_filter.blocked_hostnames

    def test_make_world_deterministic(self):
        from repro import make_world

        a = make_world(seed=3, num_sites=80, num_users=10, num_days=1)
        b = make_world(seed=3, num_sites=80, num_users=10, num_days=1)
        assert a.trace.day(0) == b.trace.day(0)
        assert sorted(a.labelled) == sorted(b.labelled)

    def test_extend_trace(self):
        from repro import make_world

        world = make_world(seed=3, num_sites=80, num_users=10, num_days=1)
        extended = world.extend_trace(1)
        assert len(extended) == 2
        assert extended.day(1)
        # regenerating day 1 directly gives the same data
        direct = world.generator.day_requests(1)
        assert extended.day(1) == direct

    def test_invalid_days(self):
        from repro import make_world

        with pytest.raises(ValueError):
            make_world(num_days=0)
