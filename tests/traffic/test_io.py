"""Tests for trace persistence."""

import gzip
import json

import pytest

from repro.traffic.io import TraceFormatError, load_trace, save_trace


class TestRoundTrip:
    def test_roundtrip_preserves_structure(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl.gz"
        count = save_trace(trace, path)
        assert count == trace.num_requests
        loaded = load_trace(path)
        assert len(loaded) == len(trace)
        assert loaded.start_day == trace.start_day
        assert loaded.num_requests == trace.num_requests
        for original_day, loaded_day in zip(trace.days, loaded.days):
            assert len(original_day) == len(loaded_day)
            for a, b in zip(original_day, loaded_day):
                assert a.user_id == b.user_id
                assert a.hostname == b.hostname
                assert a.kind == b.kind
                assert a.site_domain == b.site_domain
                assert a.timestamp == pytest.approx(b.timestamp, abs=1e-3)

    def test_statistics_survive(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl.gz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.distinct_hostnames() == trace.distinct_hostnames()
        assert loaded.user_ids() == trace.user_ids()
        assert loaded.counts_by_kind() == trace.counts_by_kind()


class TestRobustness:
    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl.gz"
        with gzip.open(path, "wt") as handle:
            handle.write(json.dumps({"format": "something-else"}) + "\n")
        with pytest.raises(TraceFormatError, match="unknown format"):
            load_trace(path)

    def test_garbage_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("not json\n")
        with pytest.raises(TraceFormatError, match="bad header"):
            load_trace(path)

    def test_bad_record_rejected_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl.gz"
        with gzip.open(path, "wt") as handle:
            handle.write(
                json.dumps(
                    {"format": "repro-trace-v1", "start_day": 0,
                     "num_days": 1}
                ) + "\n"
            )
            handle.write('{"u": 1}\n')
        with pytest.raises(TraceFormatError, match="line 2"):
            load_trace(path)

    def test_external_data_without_day_annotation(self, tmp_path):
        """Foreign exports may omit 'd'; bucketing falls back to time."""
        path = tmp_path / "ext.jsonl.gz"
        with gzip.open(path, "wt") as handle:
            handle.write(
                json.dumps(
                    {"format": "repro-trace-v1", "start_day": 0,
                     "num_days": 2}
                ) + "\n"
            )
            for t in (100.0, 86500.0):
                handle.write(
                    json.dumps(
                        {"u": 0, "t": t, "h": "a.com", "k": "site",
                         "s": "a.com"}
                    ) + "\n"
                )
        loaded = load_trace(path)
        assert len(loaded.day(0)) == 1
        assert len(loaded.day(1)) == 1

    def test_blank_lines_ignored(self, tmp_path, trace):
        path = tmp_path / "trace.jsonl.gz"
        save_trace(trace, path)
        raw = gzip.decompress(path.read_bytes())
        path.write_bytes(gzip.compress(raw + b"\n\n"))
        loaded = load_trace(path)
        assert loaded.num_requests == trace.num_requests


class TestStreamedSave:
    """save_trace fed by the batch iterator (constant memory) must be
    read-compatible with the legacy materialized format."""

    TEST_SEED = 1234

    def _streaming(self, web, population, **kwargs):
        from repro.traffic import StreamingTraceGenerator

        kwargs.setdefault("users_per_chunk", 9)
        return StreamingTraceGenerator(
            web, population, seed=self.TEST_SEED, **kwargs
        )

    def test_streamed_save_matches_legacy_file(
        self, web, population, trace, tmp_path
    ):
        from repro.traffic.io import iter_trace

        legacy_path = tmp_path / "legacy.jsonl.gz"
        streamed_path = tmp_path / "streamed.jsonl.gz"
        save_trace(trace, legacy_path)
        count = save_trace(
            self._streaming(web, population).batches(2), streamed_path
        )
        assert count == trace.num_requests
        legacy = load_trace(legacy_path)
        streamed = load_trace(streamed_path)
        assert streamed.start_day == legacy.start_day
        assert streamed.days == legacy.days
        assert list(iter_trace(streamed_path)) == list(
            iter_trace(legacy_path)
        )

    def test_iter_trace_streams_without_trace_object(
        self, trace, tmp_path
    ):
        from repro.traffic.io import iter_trace

        path = tmp_path / "trace.jsonl.gz"
        save_trace(trace, path)
        streamed = list(iter_trace(path))
        flat = [r for day in trace.days for r in day]
        assert len(streamed) == len(flat)
        for a, b in zip(streamed, flat):
            assert (a.user_id, a.hostname, a.kind, a.site_domain) == (
                b.user_id, b.hostname, b.kind, b.site_domain
            )
            # persistence rounds timestamps to the millisecond
            assert a.timestamp == pytest.approx(b.timestamp, abs=1e-3)

    def test_empty_stream_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            save_trace(iter(()), tmp_path / "empty.jsonl.gz")
        assert not (tmp_path / "empty.jsonl.gz").exists()

    def test_sharded_roundtrip(self, web, population, trace, tmp_path):
        from repro.traffic.io import (
            ShardedTraceWriter,
            iter_trace_shards,
            load_trace_shards,
            read_shard_manifest,
        )

        directory = tmp_path / "shards"
        with ShardedTraceWriter(directory, events_per_shard=500) as writer:
            for batch in self._streaming(web, population).batches(2):
                writer.write(batch)
        manifest = read_shard_manifest(directory)
        assert manifest["num_requests"] == trace.num_requests
        assert len(manifest["shards"]) > 1  # rotation really happened
        save_trace(trace, tmp_path / "legacy.jsonl.gz")
        legacy = load_trace(tmp_path / "legacy.jsonl.gz")
        loaded = load_trace_shards(directory)
        assert loaded.start_day == legacy.start_day
        assert loaded.days == legacy.days
        assert list(iter_trace_shards(directory)) == [
            r for day in legacy.days for r in day
        ]


class TestWorldBuilder:
    def test_make_world_components(self):
        from repro import make_world

        world = make_world(seed=3, num_sites=80, num_users=10, num_days=1)
        assert len(world.population) == 10
        assert len(world.trace) == 1
        assert world.labelled
        assert 0.05 < world.coverage < 0.2
        assert world.tracker_filter.blocked_hostnames

    def test_make_world_deterministic(self):
        from repro import make_world

        a = make_world(seed=3, num_sites=80, num_users=10, num_days=1)
        b = make_world(seed=3, num_sites=80, num_users=10, num_days=1)
        assert a.trace.day(0) == b.trace.day(0)
        assert sorted(a.labelled) == sorted(b.labelled)

    def test_extend_trace(self):
        from repro import make_world

        world = make_world(seed=3, num_sites=80, num_users=10, num_days=1)
        extended = world.extend_trace(1)
        assert len(extended) == 2
        assert extended.day(1)
        # regenerating day 1 directly gives the same data
        direct = world.generator.day_requests(1)
        assert extended.day(1) == direct

    def test_invalid_days(self):
        from repro import make_world

        with pytest.raises(ValueError):
            make_world(num_days=0)
