"""Tests for the synthetic web."""

import numpy as np
import pytest

from repro.traffic.events import HostKind
from repro.traffic.web import SyntheticWeb, WebConfig
from repro.utils.hostnames import is_valid_hostname
from repro.utils.randomness import derive_rng


class TestGeneration:
    def test_site_count(self, web):
        assert len(web.content_sites) == web.config.num_sites

    def test_core_sites_present(self, web):
        core_domains = {s.domain for s in web.core_sites}
        assert "google.com" in core_domains
        assert "facebook.com" in core_domains

    def test_all_hostnames_valid(self, web):
        for hostname in web.all_hostnames():
            assert is_valid_hostname(hostname), hostname

    def test_hostnames_unique_across_roles(self, web):
        from_sites = [h for s in web.sites for h in s.hostnames]
        everything = from_sites + web.trackers
        assert len(everything) == len(set(everything))

    def test_tracker_count(self, web):
        assert len(web.trackers) == web.config.num_trackers

    def test_core_sites_outrank_content_sites(self, web):
        max_content = max(s.popularity for s in web.content_sites)
        min_core = min(s.popularity for s in web.core_sites)
        assert min_core > max_content

    def test_generation_is_deterministic(self, taxonomy):
        config = WebConfig(num_sites=50, num_trackers=10)
        a = SyntheticWeb.generate(taxonomy, derive_rng(5, "w"), config)
        b = SyntheticWeb.generate(taxonomy, derive_rng(5, "w"), config)
        assert [s.domain for s in a.sites] == [s.domain for s in b.sites]
        assert a.trackers == b.trackers

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            WebConfig(num_sites=0).validate()
        with pytest.raises(ValueError):
            WebConfig(zipf_exponent=-1).validate()
        with pytest.raises(ValueError):
            WebConfig(secondary_category_prob=2.0).validate()


class TestGroundTruth:
    def test_every_site_has_primary_category(self, web):
        for site in web.sites:
            assert site.categories
            assert site.categories[0][1] == 1.0
            assert site.categories[0][0].level == 2

    def test_kind_of_roles(self, web):
        site = web.content_sites[0]
        assert web.kind_of(site.domain) is HostKind.SITE
        assert web.kind_of("google.com") is HostKind.CORE
        assert web.kind_of(web.trackers[0]) is HostKind.TRACKER

    def test_kind_of_satellite(self, web):
        site = next(s for s in web.sites if s.satellites)
        assert web.kind_of(site.satellites[0]) is HostKind.SATELLITE

    def test_kind_of_unknown_raises(self, web):
        with pytest.raises(KeyError):
            web.kind_of("definitely-not-generated.example")

    def test_satellite_resolves_to_parent(self, web):
        site = next(s for s in web.sites if s.satellites)
        assert web.site_of(site.satellites[0]) is site

    def test_true_category_vector_for_satellite(self, web):
        site = next(s for s in web.sites if s.satellites)
        sat_vec = web.true_category_vector(site.satellites[0])
        site_vec = web.true_category_vector(site.domain)
        assert np.array_equal(sat_vec, site_vec)

    def test_true_category_vector_none_for_tracker(self, web):
        assert web.true_category_vector(web.trackers[0]) is None

    def test_ground_truth_covers_sites_not_satellites(self, web):
        truth = web.ground_truth()
        assert len(truth) == len(web.sites)
        satellite = next(
            s.satellites[0] for s in web.sites if s.satellites
        )
        assert satellite not in truth

    def test_sites_in_category_consistent(self, web):
        for idx in range(web.taxonomy.num_truncated):
            for site_index in web.sites_in_category(idx):
                site = web.sites[site_index]
                primary = site.categories[0][0]
                assert web.taxonomy.truncated_index(primary) == idx

    def test_popularity_covers_all_hostnames(self, web):
        popularity = web.popularity()
        assert set(popularity) == web.all_hostnames()
        assert all(v > 0 for v in popularity.values())
