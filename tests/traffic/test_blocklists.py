"""Tests for tracker blocklists and the filter."""

import pytest

from repro.traffic.blocklists import (
    Blocklist,
    TrackerFilter,
    build_blocklists,
)
from repro.utils.randomness import derive_rng


class TestBuildBlocklists:
    def test_three_lists_by_default(self, web, rng):
        lists = build_blocklists(web, rng)
        assert [bl.name for bl in lists] == ["adaway", "hphosts", "yoyo"]

    def test_each_list_covers_requested_fraction(self, web, rng):
        lists = build_blocklists(web, rng)
        n = len(web.trackers)
        assert len(lists[0]) == round(0.80 * n)
        assert len(lists[1]) == round(0.70 * n)
        assert len(lists[2]) == round(0.60 * n)

    def test_lists_only_contain_trackers(self, web, rng):
        for blocklist in build_blocklists(web, rng):
            assert blocklist.hostnames <= set(web.trackers)

    def test_invalid_coverage_rejected(self, web, rng):
        with pytest.raises(ValueError):
            build_blocklists(web, rng, specs=(("bad", 1.5),))


class TestTrackerFilter:
    @pytest.fixture()
    def tf(self, web):
        return TrackerFilter(
            build_blocklists(web, derive_rng(0, "bl"))
        )

    def test_union_of_lists(self, web, tf):
        for blocklist in tf.blocklists:
            assert blocklist.hostnames <= tf.blocked_hostnames

    def test_blocks_and_filter_hostnames(self, web, tf):
        blocked = next(iter(tf.blocked_hostnames))
        assert tf.blocks(blocked)
        assert tf.filter_hostnames([blocked, "example.com"]) == [
            "example.com"
        ]

    def test_filter_trace_removes_only_blocked(self, trace, tf):
        filtered, stats = tf.filter_trace(trace)
        assert stats.total_requests == trace.num_requests
        assert (
            filtered.num_requests + stats.removed_requests
            == trace.num_requests
        )
        for request in filtered.all_requests():
            assert not tf.blocks(request.hostname)

    def test_filter_stats_fraction(self, trace, tf):
        _, stats = tf.filter_trace(trace)
        # The paper observed >8% of connections going to blocklisted
        # hosts; the synthetic world should be in that regime.
        assert 0.02 < stats.removed_fraction < 0.25

    def test_recall_against_web(self, web, tf):
        recall = tf.recall_against(web)
        assert 0.8 <= recall <= 1.0

    def test_empty_filter_blocks_nothing(self, trace):
        tf = TrackerFilter([])
        filtered, stats = tf.filter_trace(trace)
        assert stats.removed_requests == 0
        assert filtered.num_requests == trace.num_requests

    def test_non_tracker_traffic_untouched(self, trace, tf):
        filtered, _ = tf.filter_trace(trace)
        original_content = sum(
            1 for r in trace.all_requests() if r.is_content()
        )
        filtered_content = sum(
            1 for r in filtered.all_requests() if r.is_content()
        )
        assert original_content == filtered_content


class TestBlocklist:
    def test_contains(self):
        bl = Blocklist("x", frozenset({"a.com"}))
        assert "a.com" in bl
        assert "b.com" not in bl
        assert len(bl) == 1
