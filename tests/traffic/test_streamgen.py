"""Streamed, seeded, resumable generation — parity and resume guarantees.

The load-bearing property of :class:`StreamingTraceGenerator` is that the
streamed event sequence, concatenated per day, is **byte-identical** to
the legacy materialized :class:`TraceGenerator` output for any
``(seed, config)`` — regardless of batch size or external-merge chunking.
Everything out-of-core (spill shards, cursors, lazy populations) hangs
off that equivalence, so it is asserted as a hypothesis property, not a
single example.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.traffic import (
    GenerationCursor,
    LazyUserPopulation,
    PopulationConfig,
    StreamingTraceGenerator,
    TraceGenerator,
    UserPopulation,
)
from repro.utils.randomness import derive_rng

TEST_SEED = 1234


def _eager_population(web, seed: int, num_users: int) -> UserPopulation:
    return UserPopulation.generate(
        web,
        derive_rng(seed, "population"),
        PopulationConfig(num_users=num_users),
    )


class TestStreamedParity:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_users=st.integers(min_value=1, max_value=8),
        num_days=st.integers(min_value=1, max_value=2),
        batch_events=st.integers(min_value=5, max_value=512),
        users_per_chunk=st.integers(min_value=1, max_value=4),
    )
    def test_stream_equals_legacy_generator(
        self, web, seed, num_users, num_days, batch_events, users_per_chunk
    ):
        """Concatenated batches == the legacy trace, byte for byte, for
        any (seed, population, days, batching, chunking)."""
        population = _eager_population(web, seed, num_users)
        legacy = TraceGenerator(web, population, seed=seed)
        streaming = StreamingTraceGenerator(
            web,
            population,
            seed=seed,
            batch_events=batch_events,
            users_per_chunk=users_per_chunk,
        )
        streamed_days = [[] for _ in range(num_days)]
        for batch in streaming.batches(num_days):
            assert len(batch) <= batch_events
            streamed_days[batch.day].extend(batch.requests)
        for day in range(num_days):
            assert streamed_days[day] == legacy.day_requests(day)

    def test_materialize_equals_stream(self, web, population):
        streaming = StreamingTraceGenerator(
            web, population, seed=TEST_SEED, users_per_chunk=7
        )
        trace = streaming.materialize(2)
        collected = [[], []]
        for batch in streaming.batches(2):
            collected[batch.day].extend(batch.requests)
        assert trace.days == collected

    def test_chunking_is_invisible(self, web, population):
        """users_per_chunk is an execution detail: any chunking (single
        chunk, many spilled chunks) yields the identical stream."""
        reference = None
        for users_per_chunk in (1, 7, 1000):
            streaming = StreamingTraceGenerator(
                web,
                population,
                seed=TEST_SEED,
                users_per_chunk=users_per_chunk,
            )
            day = streaming.day_requests(0)
            if users_per_chunk < len(population):
                assert streaming.spill_shards > 0
            else:
                assert streaming.spill_shards == 0
            if reference is None:
                reference = day
            else:
                assert day == reference

    def test_lazy_population_streams_deterministically(self, web):
        config = PopulationConfig(num_users=12)
        runs = []
        for _ in range(2):
            lazy = LazyUserPopulation(
                web, seed=9, config=config, cache_profiles=3
            )
            streaming = StreamingTraceGenerator(
                web, lazy, seed=9, users_per_chunk=5
            )
            runs.append(streaming.day_requests(0))
        assert runs[0] == runs[1]
        assert runs[0]  # the world is not degenerately empty


class TestShardFiltering:
    """user_filter: each shard sees exactly its own users' events."""

    def test_filtered_stream_equals_filtered_full_stream(
        self, web, population
    ):
        full = StreamingTraceGenerator(web, population, seed=TEST_SEED)
        keep = lambda user_id: user_id % 3 == 1  # noqa: E731
        sharded = StreamingTraceGenerator(
            web, population, seed=TEST_SEED,
            user_filter=keep, shard_key="mod3:1",
            users_per_chunk=4,
        )
        expected = [
            r for r in full.day_requests(0) if keep(r.user_id)
        ]
        assert sharded.day_requests(0) == expected

    def test_shards_partition_the_day(self, web, population):
        full = StreamingTraceGenerator(web, population, seed=TEST_SEED)
        pieces = []
        for shard in range(3):
            gen = StreamingTraceGenerator(
                web, population, seed=TEST_SEED,
                user_filter=(
                    lambda user_id, shard=shard: user_id % 3 == shard
                ),
                shard_key=f"mod3:{shard}",
            )
            pieces.extend(gen.day_requests(0))
        pieces.sort(key=lambda r: (r.timestamp, r.user_id))
        assert pieces == full.day_requests(0)

    def test_shard_key_changes_config_digest(self, web, population):
        base = StreamingTraceGenerator(web, population, seed=TEST_SEED)
        shard_a = StreamingTraceGenerator(
            web, population, seed=TEST_SEED,
            user_filter=lambda u: u % 2 == 0, shard_key="mod2:0",
        )
        shard_b = StreamingTraceGenerator(
            web, population, seed=TEST_SEED,
            user_filter=lambda u: u % 2 == 1, shard_key="mod2:1",
        )
        digests = {
            base.config_digest,
            shard_a.config_digest,
            shard_b.config_digest,
        }
        assert len(digests) == 3

    def test_filter_requires_shard_key(self, web, population):
        with pytest.raises(ValueError):
            StreamingTraceGenerator(
                web, population, seed=TEST_SEED,
                user_filter=lambda u: True,
            )
        with pytest.raises(ValueError):
            StreamingTraceGenerator(
                web, population, seed=TEST_SEED, shard_key="orphan",
            )


class TestSpillCleanup:
    """Abandoned iterators must not strand spill shards until GC."""

    @staticmethod
    def _spill_dirs(root):
        return [
            p for p in root.iterdir()
            if p.is_dir() and p.name.startswith("worldgen-day")
        ]

    def test_abandoned_day_iterator_cleans_on_close(
        self, web, population, tmp_path
    ):
        streaming = StreamingTraceGenerator(
            web, population, seed=TEST_SEED,
            users_per_chunk=3, spill_dir=tmp_path,
        )
        iterator = streaming.iter_day_requests(0)
        next(iterator)  # spill happened; merge is mid-flight
        assert self._spill_dirs(tmp_path)
        iterator.close()   # consumer walks away — no GC involved
        assert self._spill_dirs(tmp_path) == []

    def test_generator_close_reaps_outstanding_iterators(
        self, web, population, tmp_path
    ):
        streaming = StreamingTraceGenerator(
            web, population, seed=TEST_SEED,
            users_per_chunk=3, spill_dir=tmp_path,
        )
        iterator = streaming.iter_day_requests(0)
        next(iterator)
        assert self._spill_dirs(tmp_path)
        streaming.close()  # never touched the iterator again
        assert self._spill_dirs(tmp_path) == []
        # idempotent, and the closed iterator is simply exhausted
        streaming.close()
        assert list(iterator) == []

    def test_abandoned_batch_stream_cleans_on_close(
        self, web, population, tmp_path
    ):
        streaming = StreamingTraceGenerator(
            web, population, seed=TEST_SEED,
            batch_events=16, users_per_chunk=3, spill_dir=tmp_path,
        )
        batches = streaming.batches(2)
        next(batches)  # abandon mid-day, mid-merge
        assert self._spill_dirs(tmp_path)
        batches.close()
        assert self._spill_dirs(tmp_path) == []

    def test_dropped_iterator_reference_cleans_via_finalizer(
        self, web, population, tmp_path
    ):
        import gc

        streaming = StreamingTraceGenerator(
            web, population, seed=TEST_SEED,
            users_per_chunk=3, spill_dir=tmp_path,
        )
        iterator = streaming.iter_day_requests(0)
        next(iterator)
        assert self._spill_dirs(tmp_path)
        del iterator
        gc.collect()
        assert self._spill_dirs(tmp_path) == []

    def test_exhausted_iterator_leaves_nothing(
        self, web, population, tmp_path
    ):
        streaming = StreamingTraceGenerator(
            web, population, seed=TEST_SEED,
            users_per_chunk=3, spill_dir=tmp_path,
        )
        list(streaming.iter_day_requests(0))
        assert self._spill_dirs(tmp_path) == []


class TestResume:
    def _generator(self, web, population, **kwargs):
        kwargs.setdefault("batch_events", 64)
        kwargs.setdefault("users_per_chunk", 9)
        return StreamingTraceGenerator(
            web, population, seed=TEST_SEED, **kwargs
        )

    def test_kill_and_resume_no_dup_no_drop(self, web, population):
        """Stop after consuming any prefix of batches; resuming from the
        persisted cursor yields exactly the remaining batches."""
        full = list(self._generator(web, population).batches(2))
        assert len(full) > 6  # the scenario really spans many batches
        for kill_at in (1, len(full) // 2, len(full) - 1):
            cursor = full[kill_at - 1].resume_cursor
            resumed = list(
                self._generator(web, population).batches(2, cursor=cursor)
            )
            assert [b.requests for b in resumed] == [
                b.requests for b in full[kill_at:]
            ]

    def test_resume_across_day_boundary(self, web, population):
        full = list(self._generator(web, population).batches(2))
        last_day0 = max(i for i, b in enumerate(full) if b.day == 0)
        cursor = full[last_day0].resume_cursor
        resumed = list(
            self._generator(web, population).batches(2, cursor=cursor)
        )
        assert all(b.day == 1 for b in resumed)
        assert [b.requests for b in resumed] == [
            b.requests for b in full[last_day0 + 1:]
        ]

    def test_cursor_roundtrips_through_disk(self, web, population, tmp_path):
        gen = self._generator(web, population)
        batches = gen.batches(2)
        first = next(batches)
        path = first.resume_cursor.save(tmp_path / "cursor.json")
        loaded = GenerationCursor.load(path)
        assert loaded == first.resume_cursor
        resumed = list(
            self._generator(web, population).batches(2, cursor=loaded)
        )
        rest = list(batches)
        assert [b.requests for b in resumed] == [b.requests for b in rest]

    def test_unknown_cursor_format_rejected(self, tmp_path):
        path = tmp_path / "cursor.json"
        path.write_text('{"format": "something-else", "day": 0}')
        with pytest.raises(ValueError, match="unknown cursor format"):
            GenerationCursor.load(path)

    def test_foreign_config_digest_rejected(self, web, population):
        gen = self._generator(web, population)
        foreign = GenerationCursor(
            day=0, batch_index=1, config_digest="not-this-world"
        )
        with pytest.raises(ValueError, match="different generator config"):
            list(gen.batches(1, cursor=foreign))

    def test_digest_ignores_execution_details(self, web, population):
        """A cursor taken under one chunking resumes under another."""
        coarse = self._generator(web, population, users_per_chunk=1000)
        fine = self._generator(web, population, users_per_chunk=2)
        assert coarse.config_digest == fine.config_digest
        full = list(coarse.batches(1))
        cursor = full[0].resume_cursor
        resumed = list(fine.batches(1, cursor=cursor))
        assert [b.requests for b in resumed] == [
            b.requests for b in full[1:]
        ]

    def test_skipped_batches_are_counted(self, web, population):
        gen = self._generator(web, population)
        full = list(gen.batches(1))
        skip = 3
        gen2 = self._generator(web, population)
        list(gen2.batches(1, cursor=full[skip - 1].resume_cursor))
        assert gen2.resume_skipped_batches == skip


class TestLazyPopulation:
    def test_profiles_deterministic_and_cache_bounded(self, web):
        config = PopulationConfig(num_users=50)
        a = LazyUserPopulation(web, seed=4, config=config, cache_profiles=8)
        b = LazyUserPopulation(web, seed=4, config=config, cache_profiles=8)
        for user_id in (0, 17, 49, 17, 0):
            assert a.profile(user_id) == b.profile(user_id)
        assert a.cache_hits == 2  # the two repeats
        assert a.cache_misses == 3
        for user_id in range(50):
            a.profile(user_id)
        assert len(a) == 50

    def test_out_of_range_rejected(self, web):
        lazy = LazyUserPopulation(
            web, seed=4, config=PopulationConfig(num_users=5)
        )
        with pytest.raises(ValueError):
            lazy.profile(5)
        with pytest.raises(ValueError):
            lazy.profile(-1)

    def test_interest_matrix_chunks_concatenate(self, web):
        lazy = LazyUserPopulation(
            web, seed=4, config=PopulationConfig(num_users=23)
        )
        matrix = lazy.interest_matrix()
        assert matrix.shape[0] == 23
        rows = 0
        for start, block in lazy.iter_interest_matrix(chunk_users=7):
            assert (matrix[start:start + len(block)] == block).all()
            rows += len(block)
        assert rows == 23


class TestLazyWorldFacade:
    def test_lazy_world_wires_the_stream(self, tmp_path):
        from repro.world import make_lazy_world

        world = make_lazy_world(
            seed=3,
            num_sites=80,
            num_users=15,
            num_days=1,
            batch_events=128,
            users_per_chunk=6,
        )
        assert world.num_users == 15
        assert 0.0 < world.coverage < 1.0
        streamed = [r for b in world.batches() for r in b.requests]
        assert streamed == world.generator.day_requests(0)

    def test_materialize_round_trip(self):
        from repro.world import make_lazy_world

        lazy = make_lazy_world(
            seed=3, num_sites=80, num_users=10, num_days=1
        )
        world = lazy.materialize()
        assert world.trace.day(0) == lazy.generator.day_requests(0)
        assert world.labelled is lazy.labelled
