"""Tests for the browsing model."""

import pytest

from repro.traffic.events import HostKind
from repro.traffic.sessions import BrowsingModel, SessionConfig
from repro.utils.randomness import derive_rng


@pytest.fixture(scope="module")
def model(web):
    return BrowsingModel(web)


class TestSessionRequests:
    def test_sorted_by_timestamp(self, model, population):
        rng = derive_rng(0, "s")
        requests = model.session_requests(population.by_id(0), 100.0, rng)
        times = [r.timestamp for r in requests]
        assert times == sorted(times)

    def test_starts_at_start_time(self, model, population):
        rng = derive_rng(0, "s")
        requests = model.session_requests(population.by_id(0), 500.0, rng)
        assert requests[0].timestamp >= 500.0

    def test_explicit_visit_count(self, model, population):
        rng = derive_rng(0, "s")
        requests = model.session_requests(
            population.by_id(0), 0.0, rng, num_visits=5
        )
        content = [r for r in requests if r.is_content()]
        assert len(content) == 5

    def test_satellites_attributed_to_their_site(self, model, population):
        rng = derive_rng(1, "s")
        requests = model.session_requests(
            population.by_id(1), 0.0, rng, num_visits=30
        )
        for request in requests:
            if request.kind is HostKind.SATELLITE:
                site = model.web.site(request.site_domain)
                # Either a stable satellite or a CDN shard that the
                # evaluation oracle resolves back to the same site.
                resolved = model.web.site_of(request.hostname)
                assert resolved is site
                if request.hostname not in site.satellites:
                    sld = request.hostname.split(".", 1)[1]
                    assert sld in site.shard_slds

    def test_trackers_attributed_to_a_site(self, model, population):
        rng = derive_rng(2, "s")
        requests = model.session_requests(
            population.by_id(2), 0.0, rng, num_visits=60
        )
        trackers = [r for r in requests if r.kind is HostKind.TRACKER]
        for request in trackers:
            assert request.hostname in model.web.trackers
            assert request.site_domain  # always tied to a visit

    def test_user_id_stamped(self, model, population):
        rng = derive_rng(0, "s")
        user = population.by_id(3)
        requests = model.session_requests(user, 0.0, rng)
        assert all(r.user_id == user.user_id for r in requests)

    def test_interest_categories_visited_over_many_sessions(
        self, model, population, web
    ):
        """The dominant interest should dominate topical site visits."""
        user = max(
            population, key=lambda u: max(u.interests.values())
        )
        top_interest = max(user.interests, key=user.interests.get)
        rng = derive_rng(3, "s")
        hits = total = 0
        for i in range(40):
            for request in model.session_requests(user, i * 5000.0, rng):
                if request.kind is not HostKind.SITE:
                    continue
                site = web.site(request.site_domain)
                idx = web.taxonomy.truncated_index(site.categories[0][0])
                total += 1
                hits += int(idx == top_interest)
        assert total > 0
        # Dominant interest weight after core/explore dilution.
        assert hits / total > max(user.interests.values()) * 0.3


class TestConfig:
    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            SessionConfig(mean_visits=0).validate()
        with pytest.raises(ValueError):
            SessionConfig(topic_stay_prob=1.5).validate()
        with pytest.raises(ValueError):
            SessionConfig(tracker_mean=-1).validate()
        with pytest.raises(ValueError):
            SessionConfig(gap_mean_seconds=0).validate()

    def test_zero_satellite_prob_yields_no_satellites(self, web, population):
        model = BrowsingModel(web, SessionConfig(satellite_prob=0.0))
        rng = derive_rng(4, "s")
        requests = model.session_requests(
            population.by_id(0), 0.0, rng, num_visits=20
        )
        assert all(r.kind is not HostKind.SATELLITE for r in requests)

    def test_zero_tracker_mean_yields_no_trackers(self, web, population):
        model = BrowsingModel(web, SessionConfig(tracker_mean=0.0))
        rng = derive_rng(4, "s")
        requests = model.session_requests(
            population.by_id(0), 0.0, rng, num_visits=20
        )
        assert all(r.kind is not HostKind.TRACKER for r in requests)
