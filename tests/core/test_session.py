"""Tests for session extraction (the paper's s_T_u)."""

import pytest

from repro.core.session import SessionExtractor, first_visits
from repro.traffic.events import HostKind, Request
from repro.utils.timeutils import minutes


def _req(hostname, t, user=0, kind=HostKind.SITE):
    return Request(
        user_id=user, timestamp=t, hostname=hostname, kind=kind,
        site_domain=hostname,
    )


class TestFirstVisits:
    def test_dedup_keeps_first_order(self):
        assert first_visits(["a", "b", "a", "c", "b"]) == ("a", "b", "c")

    def test_empty(self):
        assert first_visits([]) == ()

    def test_no_duplicates_in_output(self):
        out = first_visits(["x"] * 10 + ["y"] * 5)
        assert len(out) == len(set(out))


class TestExtract:
    def test_window_boundaries(self):
        extractor = SessionExtractor(window_seconds=minutes(20))
        requests = [
            _req("old.com", 0.0),
            _req("edge.com", 1200.0),     # exactly end-T: excluded
            _req("in.com", 1201.0),
            _req("now.com", 2400.0),      # exactly at end: included
            _req("future.com", 2401.0),
        ]
        window = extractor.extract(requests, end_time=2400.0)
        assert window.hostnames == ("in.com", "now.com")

    def test_dedup_within_window(self):
        extractor = SessionExtractor(window_seconds=minutes(20))
        requests = [
            _req("a.com", 100), _req("a.com", 200), _req("b.com", 300),
        ]
        window = extractor.extract(requests, end_time=400.0)
        assert window.hostnames == ("a.com", "b.com")

    def test_empty_window(self):
        extractor = SessionExtractor()
        window = extractor.extract([_req("a.com", 0)], end_time=99_999.0)
        assert window.is_empty
        assert window.user_id == -1

    def test_user_id_inferred(self):
        extractor = SessionExtractor()
        window = extractor.extract([_req("a.com", 10, user=7)], end_time=20)
        assert window.user_id == 7

    def test_tracker_filter_applied(self, web, tracker_filter):
        extractor = SessionExtractor(tracker_filter=tracker_filter)
        blocked = next(iter(tracker_filter.blocked_hostnames))
        requests = [_req("a.com", 10), _req(blocked, 20)]
        window = extractor.extract(requests, end_time=30)
        assert window.hostnames == ("a.com",)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            SessionExtractor(window_seconds=0)


class TestExtractLastN:
    def test_last_n_distinct(self):
        extractor = SessionExtractor()
        requests = [
            _req("a.com", 1), _req("b.com", 2), _req("a.com", 3),
            _req("c.com", 4),
        ]
        window = extractor.extract_last_n(requests, end_time=10, n_hosts=2)
        # walking back: c.com, then a.com (t=3) -> order restored
        assert window.hostnames == ("a.com", "c.com")

    def test_n_larger_than_history(self):
        extractor = SessionExtractor()
        window = extractor.extract_last_n(
            [_req("a.com", 1)], end_time=10, n_hosts=5
        )
        assert window.hostnames == ("a.com",)

    def test_invalid_n(self):
        extractor = SessionExtractor()
        with pytest.raises(ValueError):
            extractor.extract_last_n([], end_time=0, n_hosts=0)


class TestWindowsForDay:
    def test_windows_only_for_active_users(self, trace):
        extractor = SessionExtractor(window_seconds=minutes(20))
        windows = extractor.windows_for_day(trace, 0)
        assert windows
        active_users = set(trace.user_sequences(0))
        assert {w.user_id for w in windows} <= active_users

    def test_no_empty_windows(self, trace):
        extractor = SessionExtractor(window_seconds=minutes(20))
        for window in extractor.windows_for_day(trace, 0):
            assert not window.is_empty

    def test_window_contents_match_trace(self, trace):
        extractor = SessionExtractor(window_seconds=minutes(20))
        windows = extractor.windows_for_day(trace, 0)
        sequences = trace.user_sequences(0)
        for window in windows[:50]:
            expected = first_visits(
                r.hostname
                for r in sequences[window.user_id]
                if window.end_time - minutes(20)
                < r.timestamp <= window.end_time
            )
            assert window.hostnames == expected

    def test_invalid_interval(self, trace):
        extractor = SessionExtractor()
        with pytest.raises(ValueError):
            extractor.windows_for_day(trace, 0, report_interval_seconds=0)
