"""Fault-tolerance tests for the streaming profiler: bounded-lateness
reordering, checkpoint/restore, and the idle-gap edge paths."""

import numpy as np
import pytest

from repro.core.profiler import SessionProfiler
from repro.core.streaming import StreamingConfig, StreamingProfiler
from repro.netobs.flows import HostnameEvent
from repro.utils.timeutils import minutes


def _event(host, t, client="10.0.0.1"):
    return HostnameEvent(
        client_ip=client, timestamp=t, hostname=host, source="tls-sni"
    )


@pytest.fixture()
def profiler(embeddings, labelled):
    return SessionProfiler(embeddings, labelled)


def _stream(profiler, **config_kwargs):
    stream = StreamingProfiler(StreamingConfig(**config_kwargs))
    stream.swap_model(profiler)
    return stream


class TestBoundedLateness:
    def test_in_window_late_event_is_reinserted(self, profiler, embeddings):
        hosts = embeddings.vocabulary.hosts[:3]
        stream = _stream(profiler, max_lateness_seconds=60.0)
        stream.ingest(_event(hosts[0], minutes(1)))
        stream.ingest(_event(hosts[1], minutes(2)))
        # 30 s behind the newest: inside the tolerance.
        assert stream.ingest(_event(hosts[2], minutes(2) - 30.0)) is None
        assert stream.late_events_reordered == 1
        assert stream.late_events_dropped == 0
        # The straggler joins the next window, in timestamp order.
        emission = stream.ingest(_event(hosts[0], minutes(12)))
        assert emission is not None
        assert list(emission.window_hosts) == [hosts[0], hosts[2], hosts[1]]

    def test_too_late_event_is_dropped(self, profiler, embeddings):
        hosts = embeddings.vocabulary.hosts[:2]
        stream = _stream(profiler, max_lateness_seconds=60.0)
        stream.ingest(_event(hosts[0], minutes(5)))
        assert stream.ingest(_event(hosts[1], minutes(2))) is None
        assert stream.late_events_dropped == 1
        assert stream.late_events_reordered == 0
        # ...and it left no trace in the window.
        emission = stream.ingest(_event(hosts[0], minutes(16)))
        assert emission is not None
        assert hosts[1] not in emission.window_hosts

    def test_boundary_lateness_is_tolerated(self, profiler, embeddings):
        hosts = embeddings.vocabulary.hosts[:2]
        stream = _stream(profiler, max_lateness_seconds=60.0)
        stream.ingest(_event(hosts[0], 100.0))
        # Exactly at the bound: admitted.
        stream.ingest(_event(hosts[1], 40.0))
        assert stream.late_events_reordered == 1

    def test_late_event_never_fires_a_tick(self, profiler, embeddings):
        hosts = embeddings.vocabulary.hosts[:2]
        stream = _stream(profiler, max_lateness_seconds=minutes(30))
        stream.ingest(_event(hosts[0], 0.0))
        stream.ingest(_event(hosts[0], minutes(25)))
        # Late by 14 minutes, which crosses the minute-10 tick — but late
        # arrivals only join windows, they never trigger reports.
        assert stream.ingest(_event(hosts[1], minutes(11))) is None
        assert stream.late_events_reordered == 1

    def test_late_events_do_not_rewind_last_seen(self, profiler, embeddings):
        host = embeddings.vocabulary.host_of(0)
        stream = _stream(profiler, max_lateness_seconds=minutes(60))
        stream.ingest(_event(host, minutes(30)))
        stream.ingest(_event(host, minutes(10)))
        # Eviction judges the client by its newest event, not the straggler.
        horizon = minutes(30) + minutes(
            stream.config.client_idle_timeout_minutes
        )
        assert stream.evict_idle(horizon - 1.0) == 0
        assert stream.evict_idle(horizon + 1.0) == 1

    def test_negative_lateness_rejected(self):
        with pytest.raises(ValueError, match="max_lateness"):
            StreamingConfig(max_lateness_seconds=-1.0).validate()


class TestCheckpointRestore:
    def test_roundtrip_preserves_state_and_counters(
        self, profiler, embeddings, tmp_path
    ):
        hosts = embeddings.vocabulary.hosts[:4]
        stream = _stream(profiler, max_lateness_seconds=5.0)
        stream.ingest(_event(hosts[0], 0.0, client="a"))
        stream.ingest(_event(hosts[1], minutes(5), client="a"))
        stream.ingest(_event(hosts[2], minutes(11), client="a"))
        stream.ingest(_event(hosts[3], minutes(3), client="b"))
        path = tmp_path / "state.json"
        stream.checkpoint(path)

        restored = StreamingProfiler.restore(path)
        assert restored.active_clients == stream.active_clients
        assert restored.events_seen == stream.events_seen
        assert restored.profiles_emitted == stream.profiles_emitted
        assert restored.model_swaps == stream.model_swaps
        assert restored.config.max_lateness_seconds == 5.0
        assert not restored.has_model

    def test_restored_stream_continues_identically(
        self, profiler, embeddings, tmp_path
    ):
        """Kill-and-restore mid-stream must emit exactly what an
        uninterrupted run emits for the remaining events."""
        hosts = embeddings.vocabulary.hosts[:6]
        events = []
        t = 0.0
        for i in range(30):
            t += minutes(1.7)
            events.append(
                _event(hosts[i % len(hosts)], t, client=f"c{i % 3}")
            )
        cut = 13

        continuous = _stream(profiler)
        baseline = continuous.ingest_many(events)
        expected_tail = [
            e for e in baseline if e.timestamp > events[cut - 1].timestamp
        ]

        interrupted = _stream(profiler)
        interrupted.ingest_many(events[:cut])
        path = tmp_path / "state.json"
        interrupted.checkpoint(path)
        del interrupted   # the crash

        resumed = StreamingProfiler.restore(path)
        resumed.swap_model(profiler)
        tail = resumed.ingest_many(events[cut:])
        assert len(tail) == len(expected_tail)
        for ours, theirs in zip(tail, expected_tail):
            assert ours.client == theirs.client
            assert ours.timestamp == theirs.timestamp
            assert ours.window_hosts == theirs.window_hosts
            np.testing.assert_allclose(
                ours.profile.categories, theirs.profile.categories
            )

    def test_checkpoint_is_atomic(self, profiler, embeddings, tmp_path):
        host = embeddings.vocabulary.host_of(0)
        stream = _stream(profiler)
        stream.ingest(_event(host, 0.0))
        path = tmp_path / "state.json"
        stream.checkpoint(path)
        stream.checkpoint(path)   # overwrite in place
        assert not (tmp_path / "state.json.tmp").exists()
        assert StreamingProfiler.restore(path).active_clients == 1

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text('{"version": 99}')
        with pytest.raises(ValueError, match="version"):
            StreamingProfiler.restore(path)

    def test_version_error_is_typed_and_names_supported_range(
        self, tmp_path
    ):
        from repro.core.streaming import (
            SUPPORTED_CHECKPOINT_VERSIONS,
            CheckpointVersionError,
        )

        path = tmp_path / "state.json"
        path.write_text('{"version": 99}')
        with pytest.raises(CheckpointVersionError) as excinfo:
            StreamingProfiler.restore(path)
        assert excinfo.value.found == 99
        for version in SUPPORTED_CHECKPOINT_VERSIONS:
            assert str(version) in str(excinfo.value)

    def test_missing_version_rejected(self, tmp_path):
        from repro.core.streaming import CheckpointVersionError

        path = tmp_path / "state.json"
        path.write_text('{"config": {}}')
        with pytest.raises(CheckpointVersionError) as excinfo:
            StreamingProfiler.restore(path)
        assert excinfo.value.found is None

    def test_store_requires_pipeline_and_vice_versa(
        self, profiler, embeddings, tmp_path
    ):
        host = embeddings.vocabulary.host_of(0)
        stream = _stream(profiler)
        stream.ingest(_event(host, 0.0))
        path = tmp_path / "state.json"
        stream.checkpoint(path)
        with pytest.raises(ValueError, match="together"):
            StreamingProfiler.restore(path, store=object())
        with pytest.raises(ValueError, match="together"):
            StreamingProfiler.restore(path, pipeline=object())


class TestIdleGapEdgePaths:
    """Satellite coverage: evict_idle and grid catch-up over long gaps."""

    def test_evict_idle_exact_boundary(self, profiler, embeddings):
        host = embeddings.vocabulary.host_of(0)
        stream = _stream(profiler)
        stream.ingest(_event(host, 0.0, client="quiet"))
        timeout = minutes(stream.config.client_idle_timeout_minutes)
        # last_seen == horizon is not yet idle (strict inequality).
        assert stream.evict_idle(timeout) == 0
        assert stream.evict_idle(timeout + 1.0) == 1
        assert stream.active_clients == 0

    def test_evicted_client_restarts_fresh_grid(self, profiler, embeddings):
        hosts = embeddings.vocabulary.hosts[:2]
        stream = _stream(profiler)
        stream.ingest(_event(hosts[0], 0.0))
        stream.evict_idle(minutes(25 * 60))
        # Re-appearing after eviction anchors a brand-new report grid:
        # the first event emits nothing.
        assert stream.ingest(_event(hosts[1], minutes(25 * 60))) is None
        emission = stream.ingest(
            _event(hosts[0], minutes(25 * 60 + 11))
        )
        assert emission is not None
        assert hosts[1] in emission.window_hosts

    def test_multiday_silence_then_burst(self, profiler, embeddings):
        """A client silent for days then bursting produces exactly one
        report: the lazy catch-up fires the one tick that was pending when
        silence began (profiling the pre-gap window), then the grid jumps
        past 'now' without replaying the idle days' worth of ticks."""
        hosts = embeddings.vocabulary.hosts[:4]
        stream = _stream(profiler)
        stream.ingest(_event(hosts[0], 0.0))
        stream.ingest(_event(hosts[1], minutes(5)))
        silence = minutes(3 * 24 * 60)   # three days
        burst = [
            stream.ingest(_event(hosts[2], silence)),
            stream.ingest(_event(hosts[3], silence + 30.0)),
            stream.ingest(_event(hosts[0], silence + 60.0)),
        ]
        emissions = [e for e in burst if e is not None]
        assert len(emissions) == 1
        emission = emissions[0]
        # The caught-up tick is the pre-gap one, with the pre-gap window.
        assert emission.timestamp == minutes(10)
        assert set(emission.window_hosts) == {hosts[0], hosts[1]}
        # ...and the grid lands beyond the whole burst, not mid-gap.
        state = stream._clients["10.0.0.1"]
        assert state.next_report > silence + 60.0
        # The next report covers only burst traffic.
        follow_up = stream.ingest(
            _event(hosts[2], state.next_report + 1.0)
        )
        assert follow_up is not None
        assert hosts[1] not in follow_up.window_hosts

    def test_grid_alignment_preserved_within_gap_tolerance(
        self, profiler, embeddings
    ):
        """The catch-up loop keeps the grid phase-aligned to the client's
        original anchor, however long the gap."""
        host = embeddings.vocabulary.host_of(0)
        stream = _stream(profiler)
        anchor = 123.0
        stream.ingest(_event(host, anchor))
        gap = minutes(36 * 60) + 17.0    # not a multiple of the interval
        stream.ingest(_event(host, anchor + gap))
        state = stream._clients["10.0.0.1"]
        interval = minutes(stream.config.report_interval_minutes)
        offset = (state.next_report - anchor) % interval
        assert offset == pytest.approx(0.0, abs=1e-6)
