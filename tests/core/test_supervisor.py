"""Tests for degraded-mode retraining (RetrainSupervisor)."""

import pytest

from repro.core.streaming import StreamingProfiler
from repro.core.supervisor import (
    RetrainSupervisor,
    SupervisorConfig,
)


class _FakeStats:
    vocabulary_size = 42


class _FlakyPipeline:
    """train_on_day fails for the first ``failures`` calls, then works."""

    def __init__(self, failures=0, always_fail_days=()):
        self.failures = failures
        self.always_fail_days = set(always_fail_days)
        self.calls = []
        self.trained_days = []
        self._profiler = None

    def train_on_day(self, trace, day):
        self.calls.append(day)
        if self.failures > 0:
            self.failures -= 1
            raise RuntimeError("disk full")
        if day in self.always_fail_days:
            raise RuntimeError(f"day {day} partition corrupt")
        self._profiler = f"model-day-{day}"
        self.trained_days.append(day)
        return _FakeStats()

    @property
    def profiler(self):
        if self._profiler is None:
            raise RuntimeError("not trained")
        return self._profiler


def _config(**kwargs):
    defaults = dict(
        max_attempts=3,
        backoff_base_seconds=60.0,
        jitter_fraction=0.0,
        seed=0,
    )
    defaults.update(kwargs)
    return SupervisorConfig(**defaults)


class TestRetrySemantics:
    def test_success_first_try(self):
        pipeline = _FlakyPipeline()
        supervisor = RetrainSupervisor(pipeline, config=_config())
        outcome = supervisor.retrain(None, 5)
        assert outcome.succeeded
        assert outcome.attempts == 1
        assert outcome.backoff_seconds == ()
        assert supervisor.last_success_day == 5
        assert not supervisor.is_degraded

    def test_transient_failure_is_retried(self):
        pipeline = _FlakyPipeline(failures=2)
        supervisor = RetrainSupervisor(pipeline, config=_config())
        outcome = supervisor.retrain(None, 5)
        assert outcome.succeeded
        assert outcome.attempts == 3
        assert supervisor.retries == 2
        assert outcome.error is not None   # last failure is still reported

    def test_exhausted_retries_lose_the_day(self):
        pipeline = _FlakyPipeline(failures=99)
        supervisor = RetrainSupervisor(pipeline, config=_config())
        outcome = supervisor.retrain(None, 5)
        assert not outcome.succeeded
        assert outcome.attempts == 3
        assert "RuntimeError: disk full" in outcome.error
        assert supervisor.failed_days == [5]
        assert supervisor.is_degraded
        assert len(pipeline.calls) == 3

    def test_never_raises(self):
        pipeline = _FlakyPipeline(failures=99)
        supervisor = RetrainSupervisor(pipeline, config=_config())
        # Even a pathological pipeline cannot take the supervisor down.
        for day in range(4):
            supervisor.retrain(None, day)
        assert supervisor.consecutive_failures == 4


class TestBackoff:
    def test_exponential_backoff_without_jitter(self):
        pipeline = _FlakyPipeline(failures=99)
        slept = []
        supervisor = RetrainSupervisor(
            pipeline,
            config=_config(max_attempts=4, backoff_multiplier=2.0),
            sleep=slept.append,
        )
        outcome = supervisor.retrain(None, 1)
        assert list(outcome.backoff_seconds) == [60.0, 120.0, 240.0]
        assert slept == [60.0, 120.0, 240.0]

    def test_backoff_is_capped(self):
        pipeline = _FlakyPipeline(failures=99)
        supervisor = RetrainSupervisor(
            pipeline,
            config=_config(
                max_attempts=6, backoff_base_seconds=1000.0,
                backoff_max_seconds=1500.0,
            ),
        )
        outcome = supervisor.retrain(None, 1)
        assert max(outcome.backoff_seconds) == 1500.0

    def test_jitter_is_bounded_and_deterministic(self):
        def run(seed):
            pipeline = _FlakyPipeline(failures=99)
            supervisor = RetrainSupervisor(
                pipeline,
                config=_config(jitter_fraction=0.1, seed=seed),
            )
            return supervisor.retrain(None, 1).backoff_seconds

        first, second = run(7), run(7)
        assert first == second          # same seed, same jitter
        for delay, nominal in zip(first, (60.0, 120.0)):
            assert nominal * 0.9 <= delay <= nominal * 1.1
        assert run(8) != first          # different seed, different jitter


class TestDegradedServing:
    def test_previous_model_keeps_serving_on_failure(self):
        pipeline = _FlakyPipeline(always_fail_days=(6,))
        stream = StreamingProfiler()
        supervisor = RetrainSupervisor(pipeline, stream=stream, config=_config())
        supervisor.retrain(None, 5)
        assert stream._profiler == "model-day-5"
        supervisor.retrain(None, 6)           # lost day
        assert stream._profiler == "model-day-5"   # still serving day 5
        assert stream.model_swaps == 1
        supervisor.retrain(None, 7)           # recovery
        assert stream._profiler == "model-day-7"
        assert stream.model_swaps == 2

    def test_staleness_tracks_lost_days(self):
        pipeline = _FlakyPipeline(always_fail_days=(6, 7))
        supervisor = RetrainSupervisor(pipeline, config=_config())
        assert supervisor.staleness_days(5) is None
        supervisor.retrain(None, 5)
        assert supervisor.staleness_days(5) == 0
        supervisor.retrain(None, 6)
        supervisor.retrain(None, 7)
        assert supervisor.staleness_days(7) == 2
        assert supervisor.consecutive_failures == 2
        supervisor.retrain(None, 8)
        assert supervisor.staleness_days(8) == 0
        assert supervisor.consecutive_failures == 0

    def test_error_log_is_bounded(self):
        pipeline = _FlakyPipeline(failures=999)
        supervisor = RetrainSupervisor(
            pipeline, config=_config(max_recorded_errors=5)
        )
        for day in range(10):
            supervisor.retrain(None, day)
        assert len(supervisor.errors) == 5

    def test_summary_mentions_lost_days(self):
        pipeline = _FlakyPipeline(failures=99)
        supervisor = RetrainSupervisor(pipeline, config=_config())
        supervisor.retrain(None, 3)
        assert "1 days lost" in supervisor.summary()
        assert "never trained" in supervisor.summary()


class TestConfigValidation:
    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            SupervisorConfig(max_attempts=0).validate()
        with pytest.raises(ValueError):
            SupervisorConfig(backoff_multiplier=0.5).validate()
        with pytest.raises(ValueError):
            SupervisorConfig(jitter_fraction=1.0).validate()
        with pytest.raises(ValueError):
            SupervisorConfig(backoff_base_seconds=-1).validate()


class TestWithRealPipeline:
    def test_supervised_retrain_trains_and_swaps(
        self, trace, labelled, tracker_filter
    ):
        from repro.core.pipeline import NetworkObserverProfiler, PipelineConfig
        from repro.core.skipgram import SkipGramConfig

        pipeline = NetworkObserverProfiler(
            labelled,
            config=PipelineConfig(
                skipgram=SkipGramConfig(epochs=2, seed=0)
            ),
            tracker_filter=tracker_filter,
        )
        stream = StreamingProfiler(tracker_filter=tracker_filter)
        supervisor = RetrainSupervisor(pipeline, stream=stream)
        outcome = supervisor.retrain(trace, 0)
        assert outcome.succeeded
        assert stream.has_model
        assert pipeline.trained_days == [0]

    def test_failed_retrain_preserves_serving_model(
        self, trace, labelled, tracker_filter, monkeypatch
    ):
        from repro.core.pipeline import NetworkObserverProfiler, PipelineConfig
        from repro.core.skipgram import SkipGramConfig, SkipGramModel

        pipeline = NetworkObserverProfiler(
            labelled,
            config=PipelineConfig(
                skipgram=SkipGramConfig(epochs=2, seed=0)
            ),
            tracker_filter=tracker_filter,
        )
        supervisor = RetrainSupervisor(
            pipeline, config=_config(max_attempts=2)
        )
        assert supervisor.retrain(trace, 0).succeeded
        serving = pipeline.profiler

        def explode(self, sequences):
            raise MemoryError("OOM mid-fit")

        monkeypatch.setattr(SkipGramModel, "fit", explode)
        outcome = supervisor.retrain(trace, 1)
        assert not outcome.succeeded
        # Atomic swap: the day-0 model is untouched by the dead retrain.
        assert pipeline.profiler is serving
        assert pipeline.is_trained
