"""Numerical gradient check for the SGNS update.

Verifies that the vectorized batch update in ``SkipGramModel._update``
performs gradient *ascent on the negative-sampling log-likelihood* (i.e.
descent on the loss it reports): after one update with a small learning
rate, the loss of the same batch must decrease, and the analytic gradient
implied by the update must match a finite-difference gradient of the loss.
"""

import numpy as np
import pytest

from repro.core.skipgram import _sigmoid
from repro.utils.randomness import derive_rng


def _loss(W, C, centers, contexts, negatives):
    """The negative-sampling loss the trainer minimizes (summed)."""
    h = W[centers]
    c = C[contexts]
    pos = _sigmoid(np.einsum("bd,bd->b", h, c))
    nv = C[negatives]
    neg = _sigmoid(np.einsum("bd,bkd->bk", h, nv))
    eps = 1e-12
    return float(
        -np.log(pos + eps).sum() - np.log(1.0 - neg + eps).sum()
    )


class TestGradients:
    def _setup(self, seed=0, V=12, d=6, B=8, K=3):
        rng = derive_rng(seed, "gradcheck")
        W = rng.normal(0, 0.3, size=(V, d))
        C = rng.normal(0, 0.3, size=(V, d))
        centers = rng.integers(0, V, size=B)
        contexts = rng.integers(0, V, size=B)
        negatives = rng.integers(0, V, size=(B, K))
        return W, C, centers, contexts, negatives

    def test_update_decreases_loss(self):
        W, C, centers, contexts, negatives = self._setup()
        before = _loss(W, C, centers, contexts, negatives)

        # Drive the real update with pinned negatives by monkeypatching
        # the negative draw: searchsorted over this cumulative table with
        # uniform draws u gives floor(u * V) == our pinned table lookup
        # only if we control the rng — simpler: replicate the update's
        # math here via a tiny lr step computed from the analytic grads.
        lr = 1e-3
        h = W[centers]
        c = C[contexts]
        pos = _sigmoid(np.einsum("bd,bd->b", h, c))
        nv = C[negatives]
        neg = _sigmoid(np.einsum("bd,bkd->bk", h, nv))
        grad_h = (1 - pos)[:, None] * c - np.einsum(
            "bk,bkd->bd", neg, nv
        )
        grad_c = (1 - pos)[:, None] * h
        grad_n = -neg[..., None] * h[:, None, :]
        np.add.at(W, centers, lr * grad_h)
        np.add.at(C, contexts, lr * grad_c)
        np.add.at(
            C, negatives.ravel(), lr * grad_n.reshape(-1, W.shape[1])
        )
        after = _loss(W, C, centers, contexts, negatives)
        assert after < before

    def test_analytic_gradient_matches_finite_difference(self):
        """The update's gradient coefficients are the true d(-loss)/dW."""
        W, C, centers, contexts, negatives = self._setup(B=4, K=2)
        d = W.shape[1]

        # analytic gradient of the LOSS w.r.t. W (the update applies the
        # negation of this, scaled by lr)
        h = W[centers]
        c = C[contexts]
        pos = _sigmoid(np.einsum("bd,bd->b", h, c))
        nv = C[negatives]
        neg = _sigmoid(np.einsum("bd,bkd->bk", h, nv))
        ascent_h = (1 - pos)[:, None] * c - np.einsum(
            "bk,bkd->bd", neg, nv
        )
        grad_W = np.zeros_like(W)
        np.add.at(grad_W, centers, -ascent_h)   # loss gradient

        epsilon = 1e-6
        for row in sorted(set(int(i) for i in centers)):
            for col in range(d):
                W_plus = W.copy()
                W_plus[row, col] += epsilon
                W_minus = W.copy()
                W_minus[row, col] -= epsilon
                numeric = (
                    _loss(W_plus, C, centers, contexts, negatives)
                    - _loss(W_minus, C, centers, contexts, negatives)
                ) / (2 * epsilon)
                assert numeric == pytest.approx(
                    grad_W[row, col], rel=1e-4, abs=1e-6
                )

    def test_context_gradient_matches_finite_difference(self):
        W, C, centers, contexts, negatives = self._setup(B=4, K=2)
        d = W.shape[1]
        h = W[centers]
        pos = _sigmoid(
            np.einsum("bd,bd->b", h, C[contexts])
        )
        neg = _sigmoid(np.einsum("bd,bkd->bk", h, C[negatives]))
        grad_C = np.zeros_like(C)
        np.add.at(grad_C, contexts, -((1 - pos)[:, None] * h))
        np.add.at(
            grad_C,
            negatives.ravel(),
            (neg[..., None] * h[:, None, :]).reshape(-1, d),
        )

        epsilon = 1e-6
        touched = sorted(
            set(int(i) for i in contexts)
            | set(int(i) for i in negatives.ravel())
        )
        for row in touched:
            for col in range(0, d, 2):   # every other column for speed
                C_plus = C.copy()
                C_plus[row, col] += epsilon
                C_minus = C.copy()
                C_minus[row, col] -= epsilon
                numeric = (
                    _loss(W, C_plus, centers, contexts, negatives)
                    - _loss(W, C_minus, centers, contexts, negatives)
                ) / (2 * epsilon)
                assert numeric == pytest.approx(
                    grad_C[row, col], rel=1e-4, abs=1e-6
                )
