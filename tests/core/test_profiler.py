"""Tests for Eq. 3/4 session profiling."""

from collections import Counter

import numpy as np
import pytest

from repro.core.embeddings import HostnameEmbeddings
from repro.core.profiler import SessionProfile, SessionProfiler
from repro.core.session import first_visits
from repro.core.vocabulary import Vocabulary


def _toy_space():
    """Four hosts in two tight topical clusters, two of them labelled."""
    vocab = Vocabulary(
        Counter({"t1.com": 4, "t2.com": 3, "s1.com": 2, "s2.com": 1})
    )
    vectors = np.array(
        [
            [1.0, 0.05],   # t1 (travel, labelled)
            [0.95, 0.1],   # t2 (travel, unlabelled)
            [0.05, 1.0],   # s1 (sports, labelled)
            [0.1, 0.95],   # s2 (sports, unlabelled)
        ]
    )
    embeddings = HostnameEmbeddings(vectors, vocab)
    labelled = {
        "t1.com": np.array([1.0, 0.0, 0.0]),
        "s1.com": np.array([0.0, 1.0, 0.0]),
    }
    return embeddings, labelled


class TestInvariants:
    def test_components_in_unit_interval(self, embeddings, labelled):
        profiler = SessionProfiler(embeddings, labelled)
        hosts = embeddings.vocabulary.hosts[:15]
        profile = profiler.profile(hosts)
        assert ((profile.categories >= 0) & (profile.categories <= 1)).all()

    def test_empty_session(self, embeddings, labelled):
        profiler = SessionProfiler(embeddings, labelled)
        profile = profiler.profile([])
        assert profile.is_empty
        assert profile.session_size == 0
        assert (profile.categories == 0).all()

    def test_unknown_hosts_only(self, embeddings, labelled):
        profiler = SessionProfiler(embeddings, labelled)
        profile = profiler.profile(["never-seen-1.com", "never-seen-2.com"])
        assert profile.is_empty
        assert profile.session_size == 2
        assert profile.known_hosts == 0

    def test_requires_labels(self, embeddings):
        with pytest.raises(ValueError, match="empty"):
            SessionProfiler(embeddings, {})

    def test_inconsistent_label_shapes_rejected(self, embeddings):
        labelled = {"a.com": np.zeros(3), "b.com": np.zeros(4)}
        with pytest.raises(ValueError, match="shapes"):
            SessionProfiler(embeddings, labelled)

    def test_invalid_neighbourhood(self, embeddings, labelled):
        with pytest.raises(ValueError):
            SessionProfiler(embeddings, labelled, neighbourhood_size=0)

    def test_neighbourhood_capped_by_fraction(self, embeddings, labelled):
        profiler = SessionProfiler(
            embeddings, labelled,
            neighbourhood_size=10_000,
            max_neighbourhood_fraction=0.02,
        )
        assert profiler.neighbourhood_size <= max(
            10, int(0.02 * len(embeddings))
        )


class TestToySpace:
    def test_travel_session_profiles_travel(self):
        embeddings, labelled = _toy_space()
        profiler = SessionProfiler(
            embeddings, labelled, neighbourhood_size=2,
            recentre_alpha=False,
        )
        profile = profiler.profile(["t2.com"])   # unlabelled travel host
        assert profile.categories[0] > profile.categories[1]

    def test_in_session_labelled_gets_full_weight(self):
        embeddings, labelled = _toy_space()
        profiler = SessionProfiler(
            embeddings, labelled, neighbourhood_size=1,
            recentre_alpha=False,
        )
        profile = profiler.profile(["t1.com"])
        assert profile.support >= 1
        assert profile.categories[0] > 0.9

    def test_mixed_session_blends(self):
        embeddings, labelled = _toy_space()
        profiler = SessionProfiler(
            embeddings, labelled, neighbourhood_size=4,
            max_neighbourhood_fraction=1.0, recentre_alpha=False,
        )
        profile = profiler.profile(["t1.com", "s1.com"])
        assert profile.categories[0] > 0
        assert profile.categories[1] > 0
        # equal alpha=1 labels: both categories weighted equally-ish
        assert profile.categories[0] == pytest.approx(
            profile.categories[1], abs=0.3
        )

    def test_labelled_host_outside_vocab_still_counts(self):
        embeddings, labelled = _toy_space()
        labelled = dict(labelled)
        labelled["offvocab.com"] = np.array([0.0, 0.0, 1.0])
        profiler = SessionProfiler(
            embeddings, labelled, neighbourhood_size=1,
            recentre_alpha=False,
        )
        profile = profiler.profile(["offvocab.com"])
        assert profile.categories[2] > 0.5
        assert profile.known_hosts == 0  # not in the embedding space

    def test_recentre_alpha_sharpens(self):
        embeddings, labelled = _toy_space()
        flat = SessionProfiler(
            embeddings, labelled, neighbourhood_size=4,
            max_neighbourhood_fraction=1.0, recentre_alpha=False,
        ).profile(["t2.com"])
        sharp = SessionProfiler(
            embeddings, labelled, neighbourhood_size=4,
            max_neighbourhood_fraction=1.0, recentre_alpha=True,
        ).profile(["t2.com"])
        def contrast(p):
            return p.categories[0] - p.categories[1]
        assert contrast(sharp) >= contrast(flat)


class TestTopCategories:
    def test_top_categories_sorted(self, embeddings, labelled, taxonomy):
        profiler = SessionProfiler(embeddings, labelled)
        hosts = embeddings.vocabulary.hosts[:20]
        profile = profiler.profile(hosts)
        tops = profile.top_categories(taxonomy, n=5)
        weights = [w for _, w in tops]
        assert weights == sorted(weights, reverse=True)
        assert all(w > 0 for w in weights)

    def test_profiles_match_session_content(
        self, embeddings, labelled, web, trace
    ):
        """End-to-end fidelity: profile should correlate with the true
        category vector of the session's content."""
        from repro.ads.clicks import affinity
        from repro.core.session import SessionExtractor
        from repro.utils.timeutils import minutes

        profiler = SessionProfiler(embeddings, labelled)
        extractor = SessionExtractor(window_seconds=minutes(20))
        windows = extractor.windows_for_day(trace, 1)[:80]
        scores = []
        for window in windows:
            true_vectors = [
                web.true_category_vector(h) for h in window.hostnames
            ]
            true_vectors = [v for v in true_vectors if v is not None]
            if not true_vectors:
                continue
            oracle = np.mean(true_vectors, axis=0)
            profile = profiler.profile(list(window.hostnames))
            if profile.is_empty:
                continue
            scores.append(affinity(oracle, profile.categories))
        assert len(scores) > 20
        assert float(np.mean(scores)) > 0.4


class TestVectorizedParity:
    """The vectorized Eq. 3/4 path is a refactor, not a change.

    Profiles must be bitwise-identical to the historical per-neighbour
    ``host_of`` loop (the in-session-labelled exclusion moved to a vocab-id
    mask), and the batched ``profile_sessions`` path must match the
    sequential ``profile`` path window-for-window on the exact backend.
    """

    @staticmethod
    def _reference_profile(profiler, hostnames):
        """The pre-refactor per-neighbour loop, kept as an oracle."""
        embeddings = profiler.embeddings
        session_hosts = first_visits(hostnames)
        if not session_hosts:
            return profiler._empty_profile(0, 0)
        session_vector = embeddings.aggregate(
            session_hosts, how=profiler.aggregation
        )
        known = sum(1 for h in session_hosts if h in embeddings)
        numerator = np.zeros(profiler.num_categories)
        denominator = 0.0
        support = 0
        in_session = [h for h in session_hosts if h in profiler.labelled]
        for hostname in in_session:
            numerator = numerator + profiler.labelled[hostname]
            denominator += 1.0
            support += 1
        if session_vector is not None:
            ids, sims = profiler.index.search(
                session_vector, profiler.neighbourhood_size
            )
            if profiler.recentre_alpha:
                ambient = profiler.ambient_similarity(session_vector)
                if ambient < 1.0:
                    sims = (sims - ambient) / (1.0 - ambient)
            skip = set(in_session)
            for host_id, sim in zip(ids, sims):
                hostname = embeddings.vocabulary.host_of(int(host_id))
                if hostname not in profiler.labelled or hostname in skip:
                    continue
                alpha = max(float(sim), 0.0)
                if alpha <= 0.0:
                    continue
                numerator = numerator + alpha * np.asarray(
                    profiler.labelled[hostname], dtype=np.float64
                )
                denominator += alpha
                support += 1
        if denominator == 0.0:
            return profiler._empty_profile(len(session_hosts), known)
        return SessionProfile(
            categories=numerator / denominator,
            session_size=len(session_hosts),
            known_hosts=known,
            support=support,
        )

    @pytest.mark.parametrize("recentre", [True, False])
    def test_profile_bitwise_identical_to_reference_loop(
        self, embeddings, labelled, rng, recentre
    ):
        profiler = SessionProfiler(
            embeddings, labelled, recentre_alpha=recentre
        )
        hosts = embeddings.vocabulary.hosts
        labelled_in_vocab = [h for h in labelled if h in embeddings]
        non_empty = 0
        for trial in range(10):
            session = [
                hosts[int(i)] for i in rng.integers(len(hosts), size=8)
            ]
            if trial % 2:
                # Labelled hosts in the session exercise the exclusion
                # mask: they must vote once (alpha = 1), not twice.
                session = session + labelled_in_vocab[:3]
            got = profiler.profile(session)
            want = self._reference_profile(profiler, session)
            np.testing.assert_array_equal(got.categories, want.categories)
            assert got.support == want.support
            assert got.known_hosts == want.known_hosts
            assert got.session_size == want.session_size
            non_empty += not got.is_empty
        assert non_empty > 0   # the comparison must exercise real votes

    def test_profile_sessions_matches_sequential_bitwise(
        self, embeddings, labelled, rng
    ):
        profiler = SessionProfiler(embeddings, labelled)
        hosts = embeddings.vocabulary.hosts
        sessions = [
            [hosts[int(i)] for i in rng.integers(len(hosts), size=size)]
            for size in (1, 3, 8, 20)
        ]
        sessions.append([])                      # empty window
        sessions.append(["never-seen.example"])  # unknown hosts only
        batched = profiler.profile_sessions(sessions)
        assert len(batched) == len(sessions)
        for session, got in zip(sessions, batched):
            want = profiler.profile(session)
            np.testing.assert_array_equal(got.categories, want.categories)
            assert got.support == want.support
            assert got.is_empty == want.is_empty


class TestAmbientCache:
    """The recentring term is served from the cached mean unit row."""

    def test_matches_full_vocabulary_scan(self, embeddings, labelled, rng):
        profiler = SessionProfiler(embeddings, labelled)
        for _ in range(5):
            vector = rng.normal(size=embeddings.dim)
            full_scan = float(embeddings.cosine_to_all(vector).mean())
            assert profiler.ambient_similarity(vector) == pytest.approx(
                full_scan, rel=1e-9, abs=1e-12
            )

    def test_zero_vector_is_zero(self, embeddings, labelled):
        profiler = SessionProfiler(embeddings, labelled)
        assert profiler.ambient_similarity(np.zeros(embeddings.dim)) == 0.0
