"""Tests for Eq. 3/4 session profiling."""

from collections import Counter

import numpy as np
import pytest

from repro.core.embeddings import HostnameEmbeddings
from repro.core.profiler import SessionProfiler
from repro.core.vocabulary import Vocabulary


def _toy_space():
    """Four hosts in two tight topical clusters, two of them labelled."""
    vocab = Vocabulary(
        Counter({"t1.com": 4, "t2.com": 3, "s1.com": 2, "s2.com": 1})
    )
    vectors = np.array(
        [
            [1.0, 0.05],   # t1 (travel, labelled)
            [0.95, 0.1],   # t2 (travel, unlabelled)
            [0.05, 1.0],   # s1 (sports, labelled)
            [0.1, 0.95],   # s2 (sports, unlabelled)
        ]
    )
    embeddings = HostnameEmbeddings(vectors, vocab)
    labelled = {
        "t1.com": np.array([1.0, 0.0, 0.0]),
        "s1.com": np.array([0.0, 1.0, 0.0]),
    }
    return embeddings, labelled


class TestInvariants:
    def test_components_in_unit_interval(self, embeddings, labelled):
        profiler = SessionProfiler(embeddings, labelled)
        hosts = embeddings.vocabulary.hosts[:15]
        profile = profiler.profile(hosts)
        assert ((profile.categories >= 0) & (profile.categories <= 1)).all()

    def test_empty_session(self, embeddings, labelled):
        profiler = SessionProfiler(embeddings, labelled)
        profile = profiler.profile([])
        assert profile.is_empty
        assert profile.session_size == 0
        assert (profile.categories == 0).all()

    def test_unknown_hosts_only(self, embeddings, labelled):
        profiler = SessionProfiler(embeddings, labelled)
        profile = profiler.profile(["never-seen-1.com", "never-seen-2.com"])
        assert profile.is_empty
        assert profile.session_size == 2
        assert profile.known_hosts == 0

    def test_requires_labels(self, embeddings):
        with pytest.raises(ValueError, match="empty"):
            SessionProfiler(embeddings, {})

    def test_inconsistent_label_shapes_rejected(self, embeddings):
        labelled = {"a.com": np.zeros(3), "b.com": np.zeros(4)}
        with pytest.raises(ValueError, match="shapes"):
            SessionProfiler(embeddings, labelled)

    def test_invalid_neighbourhood(self, embeddings, labelled):
        with pytest.raises(ValueError):
            SessionProfiler(embeddings, labelled, neighbourhood_size=0)

    def test_neighbourhood_capped_by_fraction(self, embeddings, labelled):
        profiler = SessionProfiler(
            embeddings, labelled,
            neighbourhood_size=10_000,
            max_neighbourhood_fraction=0.02,
        )
        assert profiler.neighbourhood_size <= max(
            10, int(0.02 * len(embeddings))
        )


class TestToySpace:
    def test_travel_session_profiles_travel(self):
        embeddings, labelled = _toy_space()
        profiler = SessionProfiler(
            embeddings, labelled, neighbourhood_size=2,
            recentre_alpha=False,
        )
        profile = profiler.profile(["t2.com"])   # unlabelled travel host
        assert profile.categories[0] > profile.categories[1]

    def test_in_session_labelled_gets_full_weight(self):
        embeddings, labelled = _toy_space()
        profiler = SessionProfiler(
            embeddings, labelled, neighbourhood_size=1,
            recentre_alpha=False,
        )
        profile = profiler.profile(["t1.com"])
        assert profile.support >= 1
        assert profile.categories[0] > 0.9

    def test_mixed_session_blends(self):
        embeddings, labelled = _toy_space()
        profiler = SessionProfiler(
            embeddings, labelled, neighbourhood_size=4,
            max_neighbourhood_fraction=1.0, recentre_alpha=False,
        )
        profile = profiler.profile(["t1.com", "s1.com"])
        assert profile.categories[0] > 0
        assert profile.categories[1] > 0
        # equal alpha=1 labels: both categories weighted equally-ish
        assert profile.categories[0] == pytest.approx(
            profile.categories[1], abs=0.3
        )

    def test_labelled_host_outside_vocab_still_counts(self):
        embeddings, labelled = _toy_space()
        labelled = dict(labelled)
        labelled["offvocab.com"] = np.array([0.0, 0.0, 1.0])
        profiler = SessionProfiler(
            embeddings, labelled, neighbourhood_size=1,
            recentre_alpha=False,
        )
        profile = profiler.profile(["offvocab.com"])
        assert profile.categories[2] > 0.5
        assert profile.known_hosts == 0  # not in the embedding space

    def test_recentre_alpha_sharpens(self):
        embeddings, labelled = _toy_space()
        flat = SessionProfiler(
            embeddings, labelled, neighbourhood_size=4,
            max_neighbourhood_fraction=1.0, recentre_alpha=False,
        ).profile(["t2.com"])
        sharp = SessionProfiler(
            embeddings, labelled, neighbourhood_size=4,
            max_neighbourhood_fraction=1.0, recentre_alpha=True,
        ).profile(["t2.com"])
        def contrast(p):
            return p.categories[0] - p.categories[1]
        assert contrast(sharp) >= contrast(flat)


class TestTopCategories:
    def test_top_categories_sorted(self, embeddings, labelled, taxonomy):
        profiler = SessionProfiler(embeddings, labelled)
        hosts = embeddings.vocabulary.hosts[:20]
        profile = profiler.profile(hosts)
        tops = profile.top_categories(taxonomy, n=5)
        weights = [w for _, w in tops]
        assert weights == sorted(weights, reverse=True)
        assert all(w > 0 for w in weights)

    def test_profiles_match_session_content(
        self, embeddings, labelled, web, trace
    ):
        """End-to-end fidelity: profile should correlate with the true
        category vector of the session's content."""
        from repro.ads.clicks import affinity
        from repro.core.session import SessionExtractor
        from repro.utils.timeutils import minutes

        profiler = SessionProfiler(embeddings, labelled)
        extractor = SessionExtractor(window_seconds=minutes(20))
        windows = extractor.windows_for_day(trace, 1)[:80]
        scores = []
        for window in windows:
            true_vectors = [
                web.true_category_vector(h) for h in window.hostnames
            ]
            true_vectors = [v for v in true_vectors if v is not None]
            if not true_vectors:
                continue
            oracle = np.mean(true_vectors, axis=0)
            profile = profiler.profile(list(window.hostnames))
            if profile.is_empty:
                continue
            scores.append(affinity(oracle, profile.categories))
        assert len(scores) > 20
        assert float(np.mean(scores)) > 0.4
