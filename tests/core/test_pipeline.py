"""Tests for the end-to-end profiling pipeline."""

import numpy as np
import pytest

from repro.core.pipeline import NetworkObserverProfiler, PipelineConfig
from repro.core.skipgram import SkipGramConfig


@pytest.fixture()
def pipeline(labelled, tracker_filter):
    config = PipelineConfig(skipgram=SkipGramConfig(epochs=3, seed=0))
    return NetworkObserverProfiler(
        labelled, config=config, tracker_filter=tracker_filter
    )


class TestLifecycle:
    def test_untrained_access_raises(self, pipeline):
        assert not pipeline.is_trained
        with pytest.raises(RuntimeError):
            pipeline.embeddings
        with pytest.raises(RuntimeError):
            pipeline.profiler

    def test_requires_labels(self):
        with pytest.raises(ValueError):
            NetworkObserverProfiler({})

    def test_train_on_day(self, pipeline, trace):
        stats = pipeline.train_on_day(trace, 0)
        assert pipeline.is_trained
        assert stats.vocabulary_size > 50
        assert pipeline.trained_days == [0]
        assert pipeline.last_train_stats is stats

    def test_daily_retrain_replaces_model(self, pipeline, trace):
        pipeline.train_on_day(trace, 0)
        first = pipeline.embeddings
        pipeline.train_on_day(trace, 1)
        assert pipeline.embeddings is not first
        assert pipeline.trained_days == [0, 1]

    def test_train_on_sequences(self, pipeline, corpus):
        stats = pipeline.train_on_sequences(corpus)
        assert stats.pairs_trained > 0


class TestProfiling:
    def test_profile_session_filters_trackers(
        self, pipeline, trace, tracker_filter
    ):
        pipeline.train_on_day(trace, 0)
        blocked = next(iter(tracker_filter.blocked_hostnames))
        some_host = pipeline.embeddings.vocabulary.host_of(0)
        with_tracker = pipeline.profile_session([some_host, blocked])
        without = pipeline.profile_session([some_host])
        assert np.allclose(with_tracker.categories, without.categories)

    def test_profile_user_last_window(self, pipeline, trace):
        pipeline.train_on_day(trace, 0)
        sequences = trace.user_sequences(1)
        user_id = sorted(sequences)[0]
        requests = sequences[user_id]
        now = max(r.timestamp for r in requests)
        profile = pipeline.profile_user(requests, now)
        assert profile.session_size > 0
        assert ((profile.categories >= 0) & (profile.categories <= 1)).all()

    def test_profile_window(self, pipeline, trace):
        from repro.core.session import SessionWindow

        pipeline.train_on_day(trace, 0)
        host = pipeline.embeddings.vocabulary.host_of(5)
        window = SessionWindow(user_id=0, end_time=0.0, hostnames=(host,))
        profile = pipeline.profile_window(window)
        assert not profile.is_empty


class TestConfig:
    def test_invalid_session_minutes(self):
        with pytest.raises(ValueError):
            PipelineConfig(session_minutes=0).validate()

    def test_invalid_report_interval(self):
        with pytest.raises(ValueError):
            PipelineConfig(report_interval_minutes=-1).validate()

    def test_nested_configs_validated(self):
        with pytest.raises(ValueError):
            PipelineConfig(
                skipgram=SkipGramConfig(dim=0)
            ).validate()
