"""Tests for the streaming profiler."""

import pytest

from repro.core.profiler import SessionProfiler
from repro.core.streaming import StreamingConfig, StreamingProfiler
from repro.netobs.flows import HostnameEvent
from repro.utils.timeutils import minutes


def _event(host, t, client="10.0.0.1"):
    return HostnameEvent(
        client_ip=client, timestamp=t, hostname=host, source="tls-sni"
    )


@pytest.fixture()
def profiler(embeddings, labelled):
    return SessionProfiler(embeddings, labelled)


@pytest.fixture()
def stream(profiler):
    s = StreamingProfiler()
    s.swap_model(profiler)
    return s


class TestGrid:
    def test_no_model_no_emissions(self, embeddings):
        stream = StreamingProfiler()
        host = embeddings.vocabulary.host_of(0)
        stream.ingest(_event(host, 0.0))
        assert stream.ingest(_event(host, minutes(15))) is None

    def test_first_event_anchors_grid(self, stream, embeddings):
        host = embeddings.vocabulary.host_of(0)
        assert stream.ingest(_event(host, 100.0)) is None

    def test_emission_at_tick(self, stream, embeddings):
        hosts = embeddings.vocabulary.hosts[:3]
        stream.ingest(_event(hosts[0], 0.0))
        stream.ingest(_event(hosts[1], minutes(5)))
        emission = stream.ingest(_event(hosts[2], minutes(11)))
        assert emission is not None
        assert emission.timestamp == minutes(10)   # the tick, not arrival
        # window at the tick holds the first two hosts only
        assert set(emission.window_hosts) == {hosts[0], hosts[1]}
        assert not emission.profile.is_empty

    def test_window_expires_old_hosts(self, stream, embeddings):
        hosts = embeddings.vocabulary.hosts[:3]
        stream.ingest(_event(hosts[0], 0.0))
        # lazy catch-up fires the minute-10 tick (window holds host[0])
        first = stream.ingest(_event(hosts[1], minutes(40)))
        assert first is not None and first.timestamp == minutes(10)
        assert hosts[0] in first.window_hosts
        # the next tick (minute 50) must have forgotten host[0]
        second = stream.ingest(_event(hosts[2], minutes(51)))
        assert second is not None and second.timestamp == minutes(50)
        assert hosts[0] not in second.window_hosts
        assert hosts[1] in second.window_hosts

    def test_clients_independent(self, stream, embeddings):
        hosts = embeddings.vocabulary.hosts[:2]
        stream.ingest(_event(hosts[0], 0.0, client="a"))
        stream.ingest(_event(hosts[0], 0.0, client="b"))
        emission = stream.ingest(
            _event(hosts[1], minutes(11), client="a")
        )
        assert emission is not None and emission.client == "a"
        assert stream.active_clients == 2

    def test_out_of_order_dropped_by_default(self, stream, embeddings):
        """With zero lateness tolerance, stragglers are counted and
        dropped — never raised (the wire is allowed to misbehave)."""
        host = embeddings.vocabulary.host_of(0)
        stream.ingest(_event(host, 100.0))
        assert stream.ingest(_event(host, 50.0)) is None
        assert stream.late_events_dropped == 1
        assert stream.late_events_reordered == 0

    def test_tracker_events_filtered(
        self, profiler, tracker_filter, embeddings
    ):
        stream = StreamingProfiler(tracker_filter=tracker_filter)
        stream.swap_model(profiler)
        blocked = next(iter(tracker_filter.blocked_hostnames))
        assert stream.ingest(_event(blocked, 0.0)) is None
        assert stream.active_clients == 0

    def test_idle_ticks_skipped(self, stream, embeddings):
        """Hours of silence then one event: at most one emission, and the
        grid lands beyond 'now'."""
        host = embeddings.vocabulary.host_of(0)
        stream.ingest(_event(host, 0.0))
        emissions = [
            stream.ingest(_event(host, minutes(300))),
            stream.ingest(_event(host, minutes(301))),
        ]
        assert sum(e is not None for e in emissions) <= 1


class TestModelSwap:
    def test_swap_counts(self, stream, profiler):
        assert stream.model_swaps == 1
        stream.swap_model(profiler)
        assert stream.model_swaps == 2

    def test_profiles_resume_after_swap(
        self, stream, profiler, embeddings
    ):
        hosts = embeddings.vocabulary.hosts[:2]
        stream.ingest(_event(hosts[0], 0.0))
        stream.swap_model(profiler)
        emission = stream.ingest(_event(hosts[1], minutes(11)))
        assert emission is not None


class TestHousekeeping:
    def test_evict_idle(self, stream, embeddings):
        host = embeddings.vocabulary.host_of(0)
        stream.ingest(_event(host, 0.0, client="old"))
        stream.ingest(_event(host, minutes(30 * 60), client="new"))
        evicted = stream.evict_idle(minutes(30 * 60))
        assert evicted == 1
        assert stream.active_clients == 1

    def test_counters(self, stream, embeddings):
        hosts = embeddings.vocabulary.hosts[:3]
        stream.ingest(_event(hosts[0], 0.0))
        stream.ingest(_event(hosts[1], minutes(5)))
        stream.ingest(_event(hosts[2], minutes(11)))
        assert stream.events_seen == 3
        assert stream.profiles_emitted == 1

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            StreamingConfig(session_minutes=0).validate()
        with pytest.raises(ValueError):
            StreamingConfig(report_interval_minutes=0).validate()


class TestEndToEnd:
    def test_stream_from_packets(
        self, trace, labelled, embeddings, tracker_filter
    ):
        """Packets -> observer events -> streaming profiles."""
        from repro.netobs import NetworkObserver, TrafficSynthesizer

        profiler = SessionProfiler(embeddings, labelled)
        stream = StreamingProfiler(tracker_filter=tracker_filter)
        stream.swap_model(profiler)
        observer = NetworkObserver()
        synthesizer = TrafficSynthesizer(seed=6)
        # capture order = timestamp order, as on a real wire
        packets = sorted(
            (
                packet
                for request in trace.day(1)[:2000]
                for packet in synthesizer.packets_for_request(request)
            ),
            key=lambda p: p.timestamp,
        )
        emissions = []
        for packet in packets:
            event = observer.ingest(packet)
            if event is not None:
                emission = stream.ingest(event)
                if emission is not None:
                    emissions.append(emission)
        assert emissions, "continuous traffic must produce profiles"
        for emission in emissions:
            categories = emission.profile.categories
            assert ((categories >= 0) & (categories <= 1)).all()