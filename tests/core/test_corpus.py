"""Tests for corpus construction from request streams."""

import pytest

from repro.core.corpus import (
    CorpusConfig,
    corpus_token_count,
    day_corpus,
    sequences_from_requests,
)
from repro.traffic.events import HostKind, Request


def _req(hostname, t, kind=HostKind.SITE):
    return Request(
        user_id=0, timestamp=t, hostname=hostname, kind=kind,
        site_domain=hostname,
    )


class TestSequencesFromRequests:
    def test_gap_splits_sequences(self):
        requests = [
            _req("a.com", 0), _req("b.com", 10),
            _req("c.com", 10_000), _req("d.com", 10_020),
        ]
        sequences = sequences_from_requests(requests)
        assert sequences == [["a.com", "b.com"], ["c.com", "d.com"]]

    def test_collapse_repeats(self):
        requests = [
            _req("a.com", 0), _req("a.com", 1), _req("b.com", 2),
            _req("a.com", 3),
        ]
        sequences = sequences_from_requests(requests)
        assert sequences == [["a.com", "b.com", "a.com"]]

    def test_no_collapse_when_disabled(self):
        requests = [_req("a.com", 0), _req("a.com", 1)]
        config = CorpusConfig(collapse_repeats=False)
        assert sequences_from_requests(requests, config) == [
            ["a.com", "a.com"]
        ]

    def test_short_sequences_dropped(self):
        requests = [_req("a.com", 0), _req("b.com", 10_000)]
        assert sequences_from_requests(requests) == []

    def test_unsorted_input_rejected(self):
        requests = [_req("a.com", 5), _req("b.com", 1)]
        with pytest.raises(ValueError, match="sorted"):
            sequences_from_requests(requests)

    def test_empty_input(self):
        assert sequences_from_requests([]) == []

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            CorpusConfig(session_gap_seconds=0).validate()
        with pytest.raises(ValueError):
            CorpusConfig(min_sequence_length=0).validate()


class TestDayCorpus:
    def test_covers_all_users(self, trace):
        corpus = day_corpus(trace, 0)
        assert corpus
        users_with_traffic = len(trace.user_sequences(0))
        # At least one sequence per active user with >= 2 requests.
        assert len(corpus) >= users_with_traffic * 0.5

    def test_tracker_filter_applied(self, trace, tracker_filter):
        corpus = day_corpus(trace, 0, tracker_filter=tracker_filter)
        blocked = tracker_filter.blocked_hostnames
        for sequence in corpus:
            assert not (set(sequence) & blocked)

    def test_token_count(self, trace):
        corpus = day_corpus(trace, 0)
        assert corpus_token_count(corpus) == sum(
            len(s) for s in corpus
        )

    def test_deterministic_user_order(self, trace):
        assert day_corpus(trace, 0) == day_corpus(trace, 0)
