"""Tests for the embedding vocabulary."""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.vocabulary import Vocabulary


@pytest.fixture()
def vocab():
    return Vocabulary(
        Counter({"a.com": 10, "b.com": 5, "c.com": 5, "d.com": 1}),
        min_count=1,
    )


class TestMapping:
    def test_most_frequent_first(self, vocab):
        assert vocab.host_of(0) == "a.com"

    def test_tie_break_stable_on_name(self, vocab):
        # b.com and c.com both have count 5; alphabetical order wins.
        assert vocab.id_of("b.com") < vocab.id_of("c.com")

    def test_roundtrip(self, vocab):
        for hostname in vocab:
            assert vocab.host_of(vocab.id_of(hostname)) == hostname

    def test_min_count_prunes(self):
        vocab = Vocabulary(Counter({"a.com": 3, "b.com": 1}), min_count=2)
        assert "a.com" in vocab
        assert "b.com" not in vocab

    def test_min_count_invalid(self):
        with pytest.raises(ValueError):
            Vocabulary(Counter(), min_count=0)

    def test_unknown_host_raises(self, vocab):
        with pytest.raises(KeyError):
            vocab.id_of("nope.com")
        assert vocab.get_id("nope.com") is None

    def test_count_of(self, vocab):
        assert vocab.count_of("a.com") == 10
        assert vocab.total_count == 21

    def test_from_sequences(self):
        vocab = Vocabulary.from_sequences(
            [["a.com", "b.com"], ["a.com"]], min_count=1
        )
        assert vocab.count_of("a.com") == 2
        assert vocab.count_of("b.com") == 1


class TestFromOrdered:
    def test_explicit_order_is_preserved(self):
        # Deliberately NOT count order: the persistence path trusts the
        # saved row order instead of re-sorting.
        vocab = Vocabulary.from_ordered(
            ["z.com", "a.com", "m.com"], [1, 5, 3]
        )
        assert vocab.hosts == ["z.com", "a.com", "m.com"]
        assert vocab.count_of("z.com") == 1
        assert vocab.id_of("m.com") == 2

    def test_min_count_still_prunes(self):
        vocab = Vocabulary.from_ordered(
            ["a.com", "b.com", "c.com"], [5, 1, 3], min_count=2
        )
        assert vocab.hosts == ["a.com", "c.com"]

    def test_duplicate_host_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Vocabulary.from_ordered(["a.com", "a.com"], [2, 3])

    def test_matches_counter_construction_when_order_agrees(self):
        counts = Counter({"a.com": 9, "b.com": 4, "c.com": 2})
        sorted_vocab = Vocabulary(counts)
        ordered = Vocabulary.from_ordered(
            sorted_vocab.hosts,
            [sorted_vocab.count_of(h) for h in sorted_vocab.hosts],
        )
        assert ordered.hosts == sorted_vocab.hosts
        assert np.array_equal(ordered.counts, sorted_vocab.counts)


class TestEncode:
    def test_drops_oov(self, vocab):
        encoded = vocab.encode(["a.com", "zzz.com", "b.com"])
        assert encoded.tolist() == [
            vocab.id_of("a.com"), vocab.id_of("b.com"),
        ]

    def test_empty(self, vocab):
        assert vocab.encode([]).tolist() == []


class TestDistributions:
    def test_negative_probs_sum_to_one(self, vocab):
        probs = vocab.negative_sampling_probs()
        assert probs.sum() == pytest.approx(1.0)
        assert (probs > 0).all()

    def test_negative_probs_ordering(self, vocab):
        probs = vocab.negative_sampling_probs()
        assert probs[vocab.id_of("a.com")] > probs[vocab.id_of("d.com")]

    def test_ns_exponent_flattens(self, vocab):
        raw = vocab.negative_sampling_probs(ns_exponent=1.0)
        flat = vocab.negative_sampling_probs(ns_exponent=0.0)
        assert flat[0] == pytest.approx(1 / len(vocab))
        assert raw[0] > flat[0]

    def test_empty_vocab_raises(self):
        with pytest.raises(ValueError):
            Vocabulary(Counter()).negative_sampling_probs()

    def test_keep_probs_bounds(self, vocab):
        keep = vocab.keep_probs(sample=1e-3)
        assert ((keep > 0) & (keep <= 1)).all()

    def test_keep_probs_disabled(self, vocab):
        assert (vocab.keep_probs(sample=0) == 1.0).all()

    def test_frequent_hosts_downsampled_more(self):
        vocab = Vocabulary(Counter({"big.com": 900, "small.com": 3}))
        keep = vocab.keep_probs(sample=1e-2)
        assert keep[vocab.id_of("big.com")] < keep[vocab.id_of("small.com")]

    def test_empirical_negative_sampling_matches(self, vocab, rng):
        """Drawing from the cumulative table reproduces unigram^0.75."""
        probs = vocab.negative_sampling_probs()
        cum = np.cumsum(probs)
        draws = np.searchsorted(cum, rng.random(200_000))
        freq = np.bincount(draws, minlength=len(vocab)) / 200_000
        assert np.allclose(freq, probs, atol=0.01)


@given(
    st.dictionaries(
        st.from_regex(r"[a-z]{1,8}\.com", fullmatch=True),
        st.integers(min_value=1, max_value=1000),
        min_size=1,
        max_size=30,
    )
)
def test_property_vocabulary_consistency(counts):
    vocab = Vocabulary(Counter(counts), min_count=1)
    assert len(vocab) == len(counts)
    # ids are dense and counts non-increasing over ids
    id_counts = [vocab.count_of(vocab.host_of(i)) for i in range(len(vocab))]
    assert id_counts == sorted(id_counts, reverse=True)
    assert vocab.total_count == sum(counts.values())
