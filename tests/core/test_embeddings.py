"""Tests for hostname embedding queries and persistence."""

from collections import Counter

import numpy as np
import pytest

from repro.core.embeddings import HostnameEmbeddings
from repro.core.vocabulary import Vocabulary


@pytest.fixture()
def toy():
    vocab = Vocabulary(Counter({"a.com": 5, "b.com": 4, "c.com": 3, "d.com": 2}))
    vectors = np.array(
        [
            [1.0, 0.0],
            [0.9, 0.1],
            [0.0, 1.0],
            [-1.0, 0.0],
        ]
    )
    return HostnameEmbeddings(vectors, vocab)


class TestConstruction:
    def test_shape_mismatch_rejected(self, toy):
        with pytest.raises(ValueError):
            HostnameEmbeddings(np.zeros((2, 3)), toy.vocabulary)

    def test_non_finite_rejected(self, toy):
        bad = toy.vectors.copy()
        bad[0, 0] = np.nan
        with pytest.raises(ValueError):
            HostnameEmbeddings(bad, toy.vocabulary)

    def test_one_dim_rejected(self, toy):
        with pytest.raises(ValueError):
            HostnameEmbeddings(np.zeros(4), toy.vocabulary)

    def test_basic_access(self, toy):
        assert len(toy) == 4
        assert toy.dim == 2
        assert "a.com" in toy
        assert "zzz.com" not in toy
        assert toy.get("zzz.com") is None
        with pytest.raises(KeyError):
            toy.vector("zzz.com")


class TestSimilarity:
    def test_self_similarity_is_one(self, toy):
        assert toy.similarity("a.com", "a.com") == pytest.approx(1.0)

    def test_symmetry(self, toy):
        assert toy.similarity("a.com", "b.com") == pytest.approx(
            toy.similarity("b.com", "a.com")
        )

    def test_opposite_vectors(self, toy):
        assert toy.similarity("a.com", "d.com") == pytest.approx(-1.0)

    def test_most_similar_excludes_self(self, toy):
        results = toy.most_similar("a.com", n=3)
        hosts = [h for h, _ in results]
        assert "a.com" not in hosts
        assert hosts[0] == "b.com"

    def test_most_similar_with_self(self, toy):
        results = toy.most_similar("a.com", n=2, exclude_self=False)
        assert results[0][0] == "a.com"
        assert results[0][1] == pytest.approx(1.0)

    def test_most_similar_sorted_descending(self, toy):
        sims = [s for _, s in toy.most_similar("a.com", n=3)]
        assert sims == sorted(sims, reverse=True)

    def test_nearest_to_vector(self, toy):
        ids, sims = toy.nearest_to_vector(np.array([1.0, 0.0]), n=2)
        assert toy.vocabulary.host_of(int(ids[0])) == "a.com"
        assert sims[0] == pytest.approx(1.0)

    def test_cosine_to_all_zero_vector(self, toy):
        sims = toy.cosine_to_all(np.zeros(2))
        assert (sims == 0).all()


class TestAggregation:
    def test_mean(self, toy):
        vec = toy.aggregate(["a.com", "c.com"])
        assert vec == pytest.approx(np.array([0.5, 0.5]))

    def test_sum_and_max(self, toy):
        assert toy.aggregate(["a.com", "c.com"], how="sum") == pytest.approx(
            np.array([1.0, 1.0])
        )
        assert toy.aggregate(["a.com", "c.com"], how="max") == pytest.approx(
            np.array([1.0, 1.0])
        )

    def test_unknown_hosts_skipped(self, toy):
        vec = toy.aggregate(["a.com", "nope.com"])
        assert vec == pytest.approx(toy.vector("a.com"))

    def test_all_unknown_returns_none(self, toy):
        assert toy.aggregate(["x.com", "y.com"]) is None

    def test_unknown_aggregation_rejected(self, toy):
        with pytest.raises(ValueError):
            toy.aggregate(["a.com"], how="median")


class TestPersistence:
    def test_save_load_roundtrip(self, toy, tmp_path):
        path = tmp_path / "emb.npz"
        toy.save(path)
        loaded = HostnameEmbeddings.load(path)
        assert len(loaded) == len(toy)
        for hostname in toy.vocabulary:
            assert np.allclose(loaded.vector(hostname), toy.vector(hostname))
            assert loaded.vocabulary.count_of(
                hostname
            ) == toy.vocabulary.count_of(hostname)

    def test_tied_counts_roundtrip_bitwise_identical(self, tmp_path):
        # Regression: with tied counts the load-time re-sort used to be
        # free to permute host -> row alignment.  v2 archives make the
        # saved row order authoritative, so save -> load -> save is
        # byte-for-byte stable and every vector survives verbatim.
        vocab = Vocabulary(
            Counter({"x.com": 3, "a.com": 3, "m.com": 3, "z.com": 3})
        )
        rng = np.random.default_rng(7)
        original = HostnameEmbeddings(rng.normal(size=(4, 5)), vocab)
        first = tmp_path / "first.npz"
        original.save(first)
        loaded = HostnameEmbeddings.load(first)
        assert loaded.vocabulary.hosts == original.vocabulary.hosts
        assert np.array_equal(loaded.vectors, original.vectors)
        second = tmp_path / "second.npz"
        loaded.save(second)
        assert first.read_bytes() == second.read_bytes()

    def test_save_is_digest_stable(self, toy, tmp_path):
        first, second = tmp_path / "a.npz", tmp_path / "b.npz"
        toy.save(first)
        toy.save(second)
        assert first.read_bytes() == second.read_bytes()

    def test_save_leaves_no_tmp_sibling(self, toy, tmp_path):
        path = tmp_path / "emb.npz"
        toy.save(path)
        assert [p.name for p in tmp_path.iterdir()] == ["emb.npz"]

    def test_interrupted_save_preserves_previous_archive(
        self, toy, tmp_path, monkeypatch
    ):
        import os

        path = tmp_path / "emb.npz"
        toy.save(path)
        before = path.read_bytes()

        def explode(src, dst):
            raise OSError("power cut")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError):
            toy.save(path)
        assert path.read_bytes() == before

    def test_legacy_v1_archive_still_loads(self, tmp_path):
        # Pre-format_version archives stored hosts/counts and relied on
        # the load-time re-sort; the realignment path must keep reading
        # them.  Hosts deliberately saved out of count order.
        path = tmp_path / "legacy.npz"
        vectors = np.array([[1.0, 0.0], [0.0, 1.0], [0.5, 0.5]])
        np.savez(
            path,
            vectors=vectors,
            hosts=np.asarray(["low.com", "high.com", "mid.com"]),
            counts=np.asarray([1, 9, 4]),
        )
        loaded = HostnameEmbeddings.load(path)
        assert loaded.vocabulary.hosts == ["high.com", "mid.com", "low.com"]
        assert np.allclose(loaded.vector("low.com"), [1.0, 0.0])
        assert np.allclose(loaded.vector("high.com"), [0.0, 1.0])
        assert np.allclose(loaded.vector("mid.com"), [0.5, 0.5])


class TestZeroCopyLoad:
    def test_mapped_load_matches_eager_bitwise(self, toy, tmp_path):
        path = tmp_path / "emb.npz"
        toy.save(path, compress=False)
        eager = HostnameEmbeddings.load(path)
        mapped = HostnameEmbeddings.load(path, mmap_mode="r")
        assert mapped.vocabulary.hosts == eager.vocabulary.hosts
        assert mapped.vectors.tobytes() == eager.vectors.tobytes()
        assert isinstance(np.asanyarray(mapped.vectors).base, np.memmap) or (
            not mapped.vectors.flags.writeable
        )

    def test_mapped_vectors_are_read_only(self, toy, tmp_path):
        path = tmp_path / "emb.npz"
        toy.save(path, compress=False)
        mapped = HostnameEmbeddings.load(path, mmap_mode="r")
        with pytest.raises((ValueError, RuntimeError)):
            mapped.vectors[0, 0] = 1.0

    def test_reuse_unit_rows_binds_index_matrix(self, toy, tmp_path):
        from repro.index.base import load_index
        from repro.index.exact import ExactIndex

        path = tmp_path / "idx.npz"
        ExactIndex(toy.unit_vectors, metric="cosine", normalized=True).save(
            path, compress=False
        )
        index = load_index(path, mmap_mode="r")
        fresh = HostnameEmbeddings(toy.vectors, toy.vocabulary)
        fresh.bind_index(index, reuse_unit_rows=True)
        assert fresh.unit_vectors is index.vectors
        assert fresh.unit_vectors.tobytes() == toy.unit_vectors.tobytes()


class TestWord2VecFormat:
    def test_roundtrip(self, toy, tmp_path):
        path = tmp_path / "vectors.txt"
        toy.save_word2vec_format(path)
        loaded = HostnameEmbeddings.load_word2vec_format(path)
        assert len(loaded) == len(toy)
        for hostname in toy.vocabulary:
            assert np.allclose(
                loaded.vector(hostname), toy.vector(hostname), atol=1e-5
            )

    def test_header_format(self, toy, tmp_path):
        path = tmp_path / "vectors.txt"
        toy.save_word2vec_format(path)
        header = path.read_text().splitlines()[0]
        assert header == f"{len(toy)} {toy.dim}"

    def test_rank_order_preserved(self, toy, tmp_path):
        path = tmp_path / "vectors.txt"
        toy.save_word2vec_format(path)
        loaded = HostnameEmbeddings.load_word2vec_format(path)
        assert loaded.vocabulary.hosts == toy.vocabulary.hosts

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("not a header\n")
        with pytest.raises(ValueError, match="header"):
            HostnameEmbeddings.load_word2vec_format(path)

    def test_wrong_dimension_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 3\na.com 0.1 0.2\n")
        with pytest.raises(ValueError, match="bad vector line"):
            HostnameEmbeddings.load_word2vec_format(path)

    def test_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("2 2\na.com 0.1 0.2\n")
        with pytest.raises(ValueError, match="promised"):
            HostnameEmbeddings.load_word2vec_format(path)

    def test_loaded_counts_are_rank_based(self, toy, tmp_path):
        # The text format carries no frequencies, so load synthesizes
        # rank-based counts: first line = highest count, descending by 1.
        path = tmp_path / "vectors.txt"
        toy.save_word2vec_format(path)
        loaded = HostnameEmbeddings.load_word2vec_format(path)
        counts = [
            loaded.vocabulary.count_of(h) for h in loaded.vocabulary.hosts
        ]
        assert counts == [len(toy) - i for i in range(len(toy))]

    def test_double_roundtrip_is_stable(self, toy, tmp_path):
        first, second = tmp_path / "a.txt", tmp_path / "b.txt"
        toy.save_word2vec_format(first)
        HostnameEmbeddings.load_word2vec_format(first).save_word2vec_format(
            second
        )
        assert first.read_text() == second.read_text()


class TestDegenerateQueries:
    """Regression: n <= 0 and one-host vocabularies used to crash in
    ``np.argpartition`` before the index layer clamped them."""

    def test_most_similar_non_positive_n(self, toy):
        assert toy.most_similar("a.com", n=0) == []
        assert toy.most_similar("a.com", n=-5) == []

    def test_nearest_to_vector_non_positive_n(self, toy):
        ids, sims = toy.nearest_to_vector(np.array([1.0, 0.0]), n=0)
        assert len(ids) == 0 and len(sims) == 0
        ids, _ = toy.nearest_to_vector(np.array([1.0, 0.0]), n=-3)
        assert len(ids) == 0

    def test_nearest_to_vector_n_clamped_to_vocabulary(self, toy):
        ids, sims = toy.nearest_to_vector(np.array([1.0, 0.0]), n=50)
        assert len(ids) == len(toy)
        assert (np.diff(sims) <= 0).all()

    def test_one_host_vocabulary(self):
        vocab = Vocabulary(Counter({"only.com": 3}))
        embeddings = HostnameEmbeddings(np.array([[1.0, 0.0]]), vocab)
        # exclude_self leaves nothing to return; historically the search
        # asked for n + 1 of a 1-row matrix and argpartition blew up.
        assert embeddings.most_similar("only.com", n=5) == []
        with_self = embeddings.most_similar(
            "only.com", n=5, exclude_self=False
        )
        assert with_self == [("only.com", pytest.approx(1.0))]
        ids, _ = embeddings.nearest_to_vector(np.array([1.0, 0.0]), n=10)
        assert ids.tolist() == [0]

    def test_one_host_vocabulary_non_positive_n(self):
        vocab = Vocabulary(Counter({"only.com": 3}))
        embeddings = HostnameEmbeddings(np.array([[1.0, 0.0]]), vocab)
        assert embeddings.most_similar("only.com", n=0) == []


class TestTrainedEmbeddings:
    """Sanity on real (fixture) embeddings trained on the synthetic trace."""

    def test_unit_vectors_normalized(self, embeddings):
        norms = np.linalg.norm(embeddings.unit_vectors, axis=1)
        assert np.allclose(norms, 1.0, atol=1e-9)

    def test_most_similar_never_returns_self(self, embeddings):
        host = embeddings.vocabulary.host_of(0)
        assert host not in [h for h, _ in embeddings.most_similar(host, 20)]

    def test_satellites_embed_near_parent(self, embeddings, web, rng):
        """The api.bkng.azure.com -> hotels.com anecdote, quantified."""
        pairs = []
        sites = [s for s in web.content_sites if s.domain in embeddings]
        for site in sites:
            for satellite in site.satellites:
                if satellite in embeddings:
                    pairs.append((satellite, site.domain))
        assert len(pairs) > 10
        wins = 0
        for satellite, parent in pairs:
            other = sites[int(rng.integers(len(sites)))].domain
            if other == parent:
                continue
            if embeddings.similarity(satellite, parent) > \
                    embeddings.similarity(satellite, other):
                wins += 1
        assert wins / len(pairs) > 0.8
