"""Tests for the SGNS trainer."""

import numpy as np
import pytest

from repro.core.skipgram import (
    SkipGramConfig,
    SkipGramModel,
    _scatter_add,
    _sigmoid,
)
from repro.core.vocabulary import Vocabulary
from repro.utils.randomness import derive_rng


def _toy_corpus(repeats=200):
    """Two disjoint topical 'communities' that never co-occur."""
    corpus = []
    for i in range(repeats):
        corpus.append(["a1.com", "a2.com", "a3.com"])
        corpus.append(["b1.com", "b2.com", "b3.com"])
    return corpus


class TestScatterAdd:
    def test_matches_add_at(self, rng):
        target = rng.normal(size=(20, 4))
        reference = target.copy()
        indices = rng.integers(0, 20, size=100)
        updates = rng.normal(size=(100, 4))
        _scatter_add(target, indices, updates)
        np.add.at(reference, indices, updates)
        assert np.allclose(target, reference)

    def test_empty_noop(self):
        target = np.ones((3, 2))
        _scatter_add(target, np.empty(0, dtype=int), np.empty((0, 2)))
        assert (target == 1).all()


class TestSigmoid:
    def test_range_and_extremes(self):
        x = np.array([-1e9, -1.0, 0.0, 1.0, 1e9])
        y = _sigmoid(x)
        assert ((y > 0) & (y < 1)).all()
        assert y[2] == pytest.approx(0.5)
        assert y[0] < 1e-10 and y[-1] > 1 - 1e-10


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dim": 0},
            {"window": 0},
            {"negatives": -1},
            {"epochs": 0},
            {"learning_rate": 0},
            {"batch_pairs": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SkipGramConfig(**kwargs).validate()


class TestTraining:
    def test_loss_decreases(self):
        model = SkipGramModel(SkipGramConfig(dim=16, epochs=10, seed=0))
        model.fit(_toy_corpus())
        losses = model.stats.mean_loss_per_epoch
        assert losses[-1] < losses[0]

    def test_learns_community_structure(self):
        model = SkipGramModel(SkipGramConfig(dim=16, epochs=15, seed=0))
        embeddings = model.fit(_toy_corpus())
        within = embeddings.similarity("a1.com", "a2.com")
        across = embeddings.similarity("a1.com", "b1.com")
        assert within > across + 0.2

    def test_deterministic_given_seed(self):
        corpus = _toy_corpus(50)
        a = SkipGramModel(SkipGramConfig(dim=8, epochs=3, seed=5)).fit(corpus)
        b = SkipGramModel(SkipGramConfig(dim=8, epochs=3, seed=5)).fit(corpus)
        assert np.array_equal(a.vectors, b.vectors)

    def test_different_seed_differs(self):
        corpus = _toy_corpus(50)
        a = SkipGramModel(SkipGramConfig(dim=8, epochs=3, seed=5)).fit(corpus)
        b = SkipGramModel(SkipGramConfig(dim=8, epochs=3, seed=6)).fit(corpus)
        assert not np.array_equal(a.vectors, b.vectors)

    def test_stats_populated(self):
        model = SkipGramModel(SkipGramConfig(dim=8, epochs=4, seed=0))
        embeddings = model.fit(_toy_corpus(20))
        stats = model.stats
        assert stats.vocabulary_size == len(embeddings) == 6
        assert stats.epochs == 4
        assert stats.pairs_trained > 0
        assert stats.tokens_seen > 0
        assert len(stats.mean_loss_per_epoch) == 4

    def test_vectors_finite_and_shaped(self):
        model = SkipGramModel(SkipGramConfig(dim=12, epochs=2, seed=0))
        embeddings = model.fit(_toy_corpus(20))
        assert embeddings.vectors.shape == (6, 12)
        assert np.isfinite(embeddings.vectors).all()

    def test_min_count_respected(self):
        corpus = _toy_corpus(20) + [["rare.com", "a1.com"]]
        model = SkipGramModel(SkipGramConfig(dim=8, epochs=2, min_count=5))
        embeddings = model.fit(corpus)
        assert "rare.com" not in embeddings

    def test_external_vocabulary_used(self):
        vocab = Vocabulary.from_sequences(_toy_corpus(20), min_count=1)
        model = SkipGramModel(SkipGramConfig(dim=8, epochs=2))
        embeddings = model.fit(_toy_corpus(20), vocabulary=vocab)
        assert embeddings.vocabulary is vocab

    def test_tiny_vocabulary_rejected(self):
        model = SkipGramModel(SkipGramConfig(min_count=1))
        with pytest.raises(ValueError, match="vocabulary too small"):
            model.fit([["only.com"]])

    def test_no_trainable_sequences_rejected(self):
        vocab = Vocabulary.from_sequences(
            [["a.com", "b.com"]], min_count=1
        )
        model = SkipGramModel(SkipGramConfig(dim=4, epochs=1))
        with pytest.raises(ValueError, match="no trainable"):
            model.fit([["c.com"], ["d.com"]], vocabulary=vocab)

    def test_zero_negatives_trains(self):
        model = SkipGramModel(
            SkipGramConfig(dim=8, epochs=2, negatives=0, seed=0)
        )
        embeddings = model.fit(_toy_corpus(20))
        assert np.isfinite(embeddings.vectors).all()

    def test_fixed_window_mode(self):
        model = SkipGramModel(
            SkipGramConfig(dim=8, epochs=2, shrink_windows=False, seed=0)
        )
        embeddings = model.fit(_toy_corpus(20))
        assert np.isfinite(embeddings.vectors).all()

    def test_float64_mode(self):
        model = SkipGramModel(
            SkipGramConfig(dim=8, epochs=2, dtype="float64", seed=0)
        )
        embeddings = model.fit(_toy_corpus(20))
        assert embeddings.vectors.dtype == np.float64


class TestWindowPairs:
    def test_fixed_window_counts(self):
        model = SkipGramModel(
            SkipGramConfig(window=2, shrink_windows=False)
        )
        ids = np.arange(5)
        centers, contexts = model._window_pairs(
            ids, derive_rng(0, "w")
        )
        # each ordered pair within distance 2: sum over deltas 1,2 of
        # 2*(n - delta) = 2*4 + 2*3 = 14
        assert len(centers) == 14
        assert len(contexts) == 14
        assert (centers != contexts).all()

    def test_shrunk_window_never_exceeds_max(self):
        model = SkipGramModel(SkipGramConfig(window=3))
        ids = np.arange(30)
        centers, contexts = model._window_pairs(ids, derive_rng(1, "w"))
        assert (np.abs(centers - contexts) <= 3).all()

    def test_single_token_no_pairs(self):
        model = SkipGramModel(SkipGramConfig())
        centers, contexts = model._window_pairs(
            np.array([3]), derive_rng(0, "w")
        )
        assert len(centers) == 0 and len(contexts) == 0
