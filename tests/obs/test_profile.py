"""Tests for the continuous sampling profiler."""

import json
import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import SamplingProfiler, _fold


def _busy(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(range(2000))


class TestSampling:
    def test_captures_a_busy_thread(self):
        stop = threading.Event()
        worker = threading.Thread(target=_busy, args=(stop,), daemon=True)
        worker.start()
        try:
            profiler = SamplingProfiler(hz=250.0)
            profiler.run_for(0.3)
        finally:
            stop.set()
            worker.join()
        assert profiler.samples > 10
        stacks = profiler.folded()
        assert any("_busy" in stack for stack in stacks)
        # The profiler's own sampling thread never profiles itself.
        assert not any("sampling-profiler" in stack for stack in stacks)
        assert not any("_run" in stack.split(";")[-1].split(" ")[0]
                       for stack in stacks if "profile.py" in stack)

    def test_start_stop_lifecycle(self):
        profiler = SamplingProfiler(hz=200.0)
        assert not profiler.running
        profiler.start()
        assert profiler.running
        with pytest.raises(RuntimeError):
            profiler.start()
        profiler.stop()
        assert not profiler.running
        profiler.stop()   # idempotent

    def test_reset_clears_counts(self):
        profiler = SamplingProfiler(hz=500.0)
        profiler.run_for(0.05)
        profiler.reset()
        assert profiler.samples == 0
        assert profiler.folded() == {}

    def test_invalid_hz_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)

    def test_samples_counter_exported(self):
        registry = MetricsRegistry()
        SamplingProfiler(hz=500.0, registry=registry).run_for(0.05)
        assert registry.counter("profile_samples_total").value > 0


class TestFold:
    def test_folds_outermost_first(self):
        import sys

        frame = sys._getframe()
        folded = _fold(frame)
        parts = folded.split(";")
        assert "test_folds_outermost_first" in parts[-1]
        assert "test_profile.py" in parts[-1]


class TestExports:
    def _profiled(self) -> SamplingProfiler:
        stop = threading.Event()
        worker = threading.Thread(target=_busy, args=(stop,), daemon=True)
        worker.start()
        profiler = SamplingProfiler(hz=400.0)
        profiler.run_for(0.15)
        stop.set()
        worker.join()
        return profiler

    def test_collapsed_format(self, tmp_path):
        profiler = self._profiled()
        text = profiler.to_collapsed()
        assert text
        for line in text.strip().splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack
            assert int(count) > 0
        path = tmp_path / "prof.collapsed"
        written = profiler.write_collapsed(path)
        assert written == len(text.strip().splitlines())
        assert path.read_text() == text

    def test_speedscope_format(self, tmp_path):
        profiler = self._profiled()
        doc = profiler.to_speedscope(name="unit")
        assert doc["$schema"].startswith("https://www.speedscope.app/")
        (profile,) = doc["profiles"]
        assert profile["type"] == "sampled"
        assert len(profile["samples"]) == len(profile["weights"])
        frame_count = len(doc["shared"]["frames"])
        for sample in profile["samples"]:
            assert all(0 <= index < frame_count for index in sample)
        path = tmp_path / "prof.speedscope.json"
        profiler.write_speedscope(path, name="unit")
        assert json.loads(path.read_text())["name"] == "unit"

    def test_report_shape(self):
        profiler = self._profiled()
        report = profiler.report()
        assert report["format"] == "repro-profile-v1"
        assert report["samples"] == profiler.samples
        assert report["wall_seconds"] > 0
        assert not report["running"]
        assert len(report["top_stacks"]) <= 25
        if report["top_stacks"]:
            assert report["top_stacks"][0]["count"] >= (
                report["top_stacks"][-1]["count"]
            )

    def test_empty_profiler_exports_cleanly(self):
        profiler = SamplingProfiler()
        assert profiler.to_collapsed() == ""
        doc = profiler.to_speedscope()
        assert doc["profiles"][0]["samples"] == []
        assert profiler.report()["samples"] == 0


class TestPacing:
    def test_sample_rate_is_roughly_honoured(self):
        # 200 Hz over 0.5 s should land within a factor of ~2 of the
        # target even on a loaded CI box (deadline pacing re-anchors
        # instead of bursting).
        profiler = SamplingProfiler(hz=200.0)
        profiler.run_for(0.5)
        assert 30 <= profiler.samples <= 220
