"""Tests for span tracing: nesting, exports, the no-op tracer."""

import json
import threading

from repro.obs.tracing import NULL_TRACER, NullTracer, Tracer


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer", day=1):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        roots = tracer.spans()
        assert len(roots) == 1
        outer = roots[0]
        assert outer.name == "outer"
        assert outer.tags == {"day": 1}
        assert [c.name for c in outer.children] == ["inner", "inner"]
        assert [s.name for s in outer.walk()] == ["outer", "inner", "inner"]

    def test_timings_are_recorded(self):
        tracer = Tracer()
        with tracer.span("op"):
            sum(range(1000))
        (span,) = tracer.spans()
        assert span.duration >= 0
        assert span.cpu_time >= 0
        assert span.start_wall > 0
        assert span.thread_id == threading.get_ident()

    def test_current_tracks_the_open_span(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("outer"):
            assert tracer.current().name == "outer"
            with tracer.span("inner"):
                assert tracer.current().name == "inner"
            assert tracer.current().name == "outer"
        assert tracer.current() is None

    def test_span_survives_exceptions(self):
        tracer = Tracer()
        try:
            with tracer.span("failing"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert [s.name for s in tracer.spans()] == ["failing"]
        assert tracer.current() is None

    def test_threads_get_separate_roots(self):
        tracer = Tracer()

        def work():
            with tracer.span("worker"):
                pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(tracer.spans()) == 4


class TestExports:
    def test_chrome_trace_format(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", day=3):
            with tracer.span("inner"):
                pass
        trace = tracer.to_chrome_trace()
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert {e["name"] for e in events} == {"outer", "inner"}
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] > 0 and event["dur"] >= 0
            assert "pid" in event and "tid" in event
        outer = next(e for e in events if e["name"] == "outer")
        assert outer["args"]["day"] == 3
        assert "cpu_time_s" in outer["args"]

        path = tmp_path / "trace.json"
        count = tracer.write_chrome_trace(path)
        assert count == 2
        assert len(json.loads(path.read_text())["traceEvents"]) == 2

    def test_summary_table(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("repeated"):
                pass
        summary = tracer.summary()
        assert "repeated" in summary
        assert "calls" in summary and "wall s" in summary

    def test_empty_summary(self):
        assert Tracer().summary() == "trace: no spans recorded"


class TestNullTracer:
    def test_span_yields_none_and_records_nothing(self):
        tracer = NullTracer()
        assert tracer.null
        with tracer.span("op", k=1) as span:
            assert span is None
        assert tracer.spans() == []
        assert tracer.current() is None
        assert tracer.to_chrome_trace()["traceEvents"] == []

    def test_singleton_flags(self):
        assert NULL_TRACER.null
        assert not Tracer().null
