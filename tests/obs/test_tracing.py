"""Tests for span tracing: nesting, exports, the no-op tracer."""

import json
import threading
import time

import pytest

import repro.obs.tracing as tracing
from repro.obs.tracing import (
    NULL_TRACER,
    HeadSampler,
    NullTracer,
    TraceContext,
    Tracer,
    current_exemplar,
    current_trace,
    span_from_wire,
    span_to_wire,
    use_trace,
)


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer", day=1):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        roots = tracer.spans()
        assert len(roots) == 1
        outer = roots[0]
        assert outer.name == "outer"
        assert outer.tags == {"day": 1}
        assert [c.name for c in outer.children] == ["inner", "inner"]
        assert [s.name for s in outer.walk()] == ["outer", "inner", "inner"]

    def test_timings_are_recorded(self):
        tracer = Tracer()
        with tracer.span("op"):
            sum(range(1000))
        (span,) = tracer.spans()
        assert span.duration >= 0
        assert span.cpu_time >= 0
        assert span.start_wall > 0
        assert span.thread_id == threading.get_ident()

    def test_current_tracks_the_open_span(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("outer"):
            assert tracer.current().name == "outer"
            with tracer.span("inner"):
                assert tracer.current().name == "inner"
            assert tracer.current().name == "outer"
        assert tracer.current() is None

    def test_span_survives_exceptions(self):
        tracer = Tracer()
        try:
            with tracer.span("failing"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert [s.name for s in tracer.spans()] == ["failing"]
        assert tracer.current() is None

    def test_threads_get_separate_roots(self):
        tracer = Tracer()

        def work():
            with tracer.span("worker"):
                pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(tracer.spans()) == 4


class TestExports:
    def test_chrome_trace_format(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", day=3):
            with tracer.span("inner"):
                pass
        trace = tracer.to_chrome_trace()
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert {e["name"] for e in events} == {"outer", "inner"}
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] > 0 and event["dur"] >= 0
            assert "pid" in event and "tid" in event
        outer = next(e for e in events if e["name"] == "outer")
        assert outer["args"]["day"] == 3
        assert "cpu_time_s" in outer["args"]

        path = tmp_path / "trace.json"
        count = tracer.write_chrome_trace(path)
        assert count == 2
        assert len(json.loads(path.read_text())["traceEvents"]) == 2

    def test_summary_table(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("repeated"):
                pass
        summary = tracer.summary()
        assert "repeated" in summary
        assert "calls" in summary and "wall s" in summary

    def test_empty_summary(self):
        assert Tracer().summary() == "trace: no spans recorded"


class TestWallClockAnchor:
    def test_backwards_wall_step_cannot_reorder_spans(self, monkeypatch):
        # An NTP correction steps time.time() back an hour mid-run.  The
        # tracer reads the wall clock exactly once (at construction);
        # every span start is a perf_counter offset from that anchor, so
        # the recorded timeline stays monotone with non-negative
        # durations.  A naive time.time()-per-span implementation would
        # place "after" an hour before "before".
        tracer = Tracer()
        with tracer.span("before"):
            pass
        real_time = time.time
        monkeypatch.setattr(
            tracing.time, "time", lambda: real_time() - 3600.0
        )
        with tracer.span("after"):
            pass
        before, after = tracer.spans()
        assert after.start_wall >= before.start_wall
        assert before.duration >= 0 and after.duration >= 0

    def test_anchor_maps_to_epoch_seconds(self):
        now = time.time()
        tracer = Tracer()
        with tracer.span("op"):
            pass
        (span,) = tracer.spans()
        assert abs(span.start_wall - now) < 60.0


class TestTraceContext:
    def test_no_context_by_default(self):
        assert current_trace() is None
        assert current_exemplar() is None

    def test_use_trace_scopes_the_context(self):
        ctx = TraceContext(trace_id="abc123")
        with use_trace(ctx):
            assert current_trace() is ctx
            assert current_exemplar() == "abc123"
        assert current_trace() is None

    def test_unsampled_context_yields_no_exemplar(self):
        with use_trace(TraceContext(trace_id="abc123", sampled=False)):
            assert current_trace() is not None
            assert current_exemplar() is None

    def test_spans_join_the_active_trace(self):
        tracer = Tracer()
        with use_trace(TraceContext(trace_id="t1")):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
        (outer,) = tracer.spans()
        (inner,) = outer.children
        assert outer.trace_id == inner.trace_id == "t1"
        assert outer.parent_span_id is None
        assert inner.parent_span_id == outer.span_id

    def test_trace_spans_reassembles_across_roots(self):
        # Ingest and profile run as separate roots (different components,
        # possibly different threads) but share one trace; the child()
        # hand-off parents the second root under the first span.
        tracer = Tracer()
        ctx = TraceContext(trace_id="t2")
        with use_trace(ctx):
            with tracer.span("netobs.ingest") as ingest:
                pass
        with use_trace(ctx.child(ingest.span_id)):
            with tracer.span("profile.session"):
                pass
        spans = tracer.trace_spans("t2")
        assert [s.name for s in spans] == [
            "netobs.ingest", "profile.session"
        ]
        assert spans[1].parent_span_id == spans[0].span_id
        assert tracer.trace_spans("missing") == []

    def test_chrome_trace_carries_trace_ids(self):
        tracer = Tracer()
        with use_trace(TraceContext(trace_id="t3")):
            with tracer.span("op"):
                pass
        (event,) = tracer.to_chrome_trace()["traceEvents"]
        assert event["args"]["trace_id"] == "t3"
        assert event["args"]["span_id"]


class TestHeadSampler:
    def test_rate_bounds(self):
        clients = [f"10.0.0.{i}" for i in range(64)]
        keep_all = HeadSampler(1.0)
        keep_none = HeadSampler(0.0)
        assert all(keep_all.sampled(c) for c in clients)
        assert not any(keep_none.sampled(c) for c in clients)

    def test_decision_is_deterministic_per_client(self):
        sampler = HeadSampler(0.5)
        again = HeadSampler(0.5)
        for client in ("10.0.0.1", "10.0.0.2", "192.168.7.9"):
            assert sampler.sampled(client) == again.sampled(client)

    def test_rate_is_approximately_honoured(self):
        sampler = HeadSampler(0.25)
        kept = sum(
            sampler.sampled(f"client-{i}") for i in range(4000)
        )
        assert 0.20 < kept / 4000 < 0.30

    def test_start_returns_context_only_when_sampled(self):
        ctx = HeadSampler(1.0).start("10.0.0.1")
        assert ctx is not None and ctx.sampled
        assert HeadSampler(0.0).start("10.0.0.1") is None

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            HeadSampler(-0.1)
        with pytest.raises(ValueError):
            HeadSampler(1.5)


class TestNullTracer:
    def test_span_yields_none_and_records_nothing(self):
        tracer = NullTracer()
        assert tracer.null
        with tracer.span("op", k=1) as span:
            assert span is None
        assert tracer.spans() == []
        assert tracer.current() is None
        assert tracer.to_chrome_trace()["traceEvents"] == []

    def test_singleton_flags(self):
        assert NULL_TRACER.null
        assert not Tracer().null


class TestWireForms:
    """The picklable shapes that cross the coordinator→worker boundary."""

    def test_trace_context_round_trips(self):
        ctx = TraceContext(trace_id="t9", span_id="s1")
        assert TraceContext.from_wire(ctx.wire()) == ctx
        assert TraceContext.from_wire(None) is None
        # The sampling bit is implicit: only sampled contexts ship.
        muted = TraceContext(trace_id="t9", span_id="s1", sampled=False)
        assert TraceContext.from_wire(muted.wire()).sampled

    def test_span_tree_round_trips(self):
        tracer = Tracer()
        with use_trace(TraceContext(trace_id="t10")):
            with tracer.span("stream.ingest", shard="1"):
                with tracer.span("profile.session"):
                    pass
                with tracer.span("index.search"):
                    pass
        (root,) = tracer.spans()
        rebuilt = span_from_wire(span_to_wire(root))
        assert [s.name for s in rebuilt.walk()] == [
            s.name for s in root.walk()
        ]
        assert [s.span_id for s in rebuilt.walk()] == [
            s.span_id for s in root.walk()
        ]
        assert rebuilt.tags == root.tags
        assert rebuilt.children[0].parent_span_id == root.span_id
        assert rebuilt.trace_id == "t10"
        # Round-tripping is loss-free: exporting again is identical.
        assert span_to_wire(rebuilt) == span_to_wire(root)

    def test_wire_without_children_prunes_the_subtree(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        (root,) = tracer.spans()
        wire = span_to_wire(root, children=False)
        assert "children" not in wire
        assert span_from_wire(wire).children == []


class TestExportAndAdopt:
    """drain_sampled (worker side) feeds adopt (coordinator side)."""

    def test_drain_removes_only_sampled_roots(self):
        tracer = Tracer()
        with use_trace(TraceContext(trace_id="t11")):
            with tracer.span("sampled.work"):
                pass
        with tracer.span("local.timing"):   # no active trace
            pass
        drained = tracer.drain_sampled()
        assert [s.name for s in drained] == ["sampled.work"]
        # Local-only roots stay; a second drain ships nothing — the
        # exactly-once contract for the telemetry exporter.
        assert [s.name for s in tracer.spans()] == ["local.timing"]
        assert tracer.drain_sampled() == []

    def test_adopt_grafts_remote_roots_into_trace_spans(self):
        worker = Tracer()
        with use_trace(TraceContext(trace_id="t12", span_id="route-1")):
            with worker.span("stream.ingest"):
                pass
        coordinator = Tracer()
        for root in worker.drain_sampled():
            root.tags.setdefault("shard", "0")
            coordinator.adopt(root)
        spans = coordinator.trace_spans("t12")
        assert [s.name for s in spans] == ["stream.ingest"]
        assert spans[0].parent_span_id == "route-1"
        assert spans[0].tags["shard"] == "0"
