"""Tests for generation drift monitoring and the supervisor drift gate."""

import json

import pytest

from repro.core import day_corpus
from repro.core.pipeline import NetworkObserverProfiler, PipelineConfig
from repro.core.skipgram import SkipGramConfig
from repro.core.streaming import StreamingConfig, StreamingProfiler
from repro.core.supervisor import RetrainSupervisor, SupervisorConfig
from repro.index import IndexConfig
from repro.obs.drift import (
    DriftConfig,
    DriftMonitor,
    DriftReport,
    EwmaDetector,
    _jensen_shannon,
    stream_health_rates,
)
from repro.obs.metrics import MetricsRegistry
from repro.store import DRIFT_REPORT_COMPONENT, ArtifactStore
from repro.utils.randomness import derive_rng
from repro.utils.serialization import atomic_write_json


def _pipeline(labelled, tracker_filter, seed=0):
    return NetworkObserverProfiler(
        labelled,
        config=PipelineConfig(
            skipgram=SkipGramConfig(epochs=2, seed=seed),
            index=IndexConfig(backend="exact"),
        ),
        tracker_filter=tracker_filter,
    )


def _shuffle_labels(sequences, seed=99):
    """Relabel every hostname through a seeded permutation (drift injection)."""
    hosts = sorted({h for s in sequences for h in s})
    permuted = list(hosts)
    derive_rng(seed, "test-shuffle").shuffle(permuted)
    mapping = dict(zip(hosts, permuted))
    return [[mapping[h] for h in s] for s in sequences]


@pytest.fixture(scope="module")
def day0_sequences(trace):
    return day_corpus(trace, 0)


@pytest.fixture(scope="module")
def day0(day0_sequences, labelled, tracker_filter):
    """A pipeline trained on day 0, shared read-only."""
    pipeline = _pipeline(labelled, tracker_filter)
    pipeline.train_on_sequences(day0_sequences)
    return pipeline


@pytest.fixture(scope="module")
def shuffled(day0_sequences, labelled, tracker_filter):
    """The same corpus with every hostname relabelled — injected drift."""
    pipeline = _pipeline(labelled, tracker_filter)
    pipeline.train_on_sequences(_shuffle_labels(day0_sequences))
    return pipeline


class TestEwmaDetector:
    def test_warmup_never_alarms(self):
        detector = EwmaDetector(warmup=3)
        assert not detector.update(0.0)
        assert not detector.update(100.0)   # wild, but still priming
        assert not detector.update(0.0)

    def test_spike_after_stable_series_alarms(self):
        detector = EwmaDetector(alpha=0.3, threshold_sigma=4.0, warmup=3)
        for value in (0.01, 0.012, 0.011, 0.009, 0.01):
            assert not detector.update(value)
        assert detector.update(0.9)

    def test_flatlined_series_uses_band_floor(self):
        # std 0 would alarm on any change at all without the 1e-6 floor;
        # with it, a genuinely tiny wobble still passes.
        detector = EwmaDetector(warmup=2)
        for _ in range(4):
            assert not detector.update(0.0)
        assert not detector.update(1e-9)
        assert detector.update(0.5)

    def test_state_snapshot(self):
        detector = EwmaDetector()
        detector.update(1.0)
        state = detector.state()
        assert state["samples"] == 1
        assert state["mean"] == 1.0

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            EwmaDetector(alpha=0.0)


class TestJensenShannon:
    def test_identical_distributions_are_zero(self):
        assert _jensen_shannon([0.5, 0.5], [0.5, 0.5]) == 0.0

    def test_disjoint_distributions_are_maximal(self):
        assert _jensen_shannon([1.0, 0.0], [0.0, 1.0]) == pytest.approx(1.0)

    def test_empty_cases(self):
        assert _jensen_shannon([0.0, 0.0], [0.0, 0.0]) == 0.0
        assert _jensen_shannon([0.0, 0.0], [1.0, 0.0]) == 1.0

    def test_symmetric(self):
        p, q = [0.8, 0.1, 0.1], [0.2, 0.3, 0.5]
        assert _jensen_shannon(p, q) == pytest.approx(_jensen_shannon(q, p))

    def test_unnormalised_inputs_are_normalised(self):
        assert _jensen_shannon([10, 10], [1, 1]) == pytest.approx(0.0)


class TestDriftConfig:
    def test_defaults_validate(self):
        DriftConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sample_hosts": 0},
            {"neighbour_k": 0},
            {"probe_sessions": 0},
            {"max_vocab_churn": 1.5},
            {"min_neighbour_overlap": -0.1},
            {"max_category_jsd": 2.0},
            {"ewma_alpha": 0.0},
            {"ewma_warmup": 0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DriftConfig(**kwargs).validate()


class TestDriftMonitor:
    def test_identical_models_pass_clean(self, day0):
        registry = MetricsRegistry()
        monitor = DriftMonitor(DriftConfig(seed=7), registry=registry)
        report = monitor.compare(day0.profiler, day0.profiler)
        assert report.ok
        assert report.vocab_churn == 0.0
        assert report.neighbour_overlap == pytest.approx(1.0)
        assert report.category_jsd == pytest.approx(0.0, abs=1e-9)
        assert report.labelled_coverage_delta == 0.0
        assert registry.counter("drift_checks_total").value == 1
        assert registry.gauge("drift_vocab_churn").value == 0.0

    def test_label_shuffle_breaches_the_gate(self, day0, shuffled):
        registry = MetricsRegistry()
        monitor = DriftMonitor(DriftConfig(seed=7), registry=registry)
        report = monitor.compare(
            day0.profiler, shuffled.profiler, candidate_day=1
        )
        assert not report.ok
        # The scrambled co-occurrence structure must show up in the
        # embedding-space metrics, whatever the vocabulary does.
        assert "neighbour_overlap" in report.breaches
        assert report.neighbour_overlap < DriftConfig().min_neighbour_overlap
        breaches_total = registry.counter(
            "drift_breaches_total", labelnames=("metric",)
        ).total()
        assert breaches_total == len(report.breaches)

    def test_probe_sample_is_deterministic(self, day0, shuffled):
        config = DriftConfig(seed=7)
        first = DriftMonitor(config).compare(day0.profiler, shuffled.profiler)
        second = DriftMonitor(config).compare(day0.profiler, shuffled.profiler)
        assert first.neighbour_overlap == second.neighbour_overlap
        assert first.category_jsd == second.category_jsd

    def test_stream_health_anomaly_annotates_report(self, day0):
        monitor = DriftMonitor(DriftConfig(seed=7))
        for _ in range(5):
            monitor.observe_stream_health(0.01, 0.0)
        report = monitor.compare(
            day0.profiler, day0.profiler, quarantine_rate=0.9,
            late_drop_rate=0.0,
        )
        assert report.anomalies == ("quarantine_rate",)
        assert report.ok   # anomalies do not gate by default

    def test_anomaly_gates_when_configured(self, day0):
        monitor = DriftMonitor(DriftConfig(seed=7, gate_on_anomalies=True))
        for _ in range(5):
            monitor.observe_stream_health(0.01, 0.0)
        report = monitor.compare(
            day0.profiler, day0.profiler, quarantine_rate=0.9,
            late_drop_rate=0.0,
        )
        assert "stream_health" in report.breaches


class TestDriftReport:
    def test_round_trips_through_json(self, day0, shuffled, tmp_path):
        report = DriftMonitor(DriftConfig(seed=7)).compare(
            day0.profiler, shuffled.profiler,
            serving_generation="g000001", candidate_day=3,
            quarantine_rate=0.02, late_drop_rate=0.0,
        )
        path = tmp_path / "drift.json"
        atomic_write_json(path, report.to_dict())
        restored = DriftReport.from_dict(json.loads(path.read_text()))
        assert restored == report

    def test_from_dict_rejects_unknown_format(self):
        with pytest.raises(ValueError):
            DriftReport.from_dict({"format": "something-else"})

    def test_summary_names_breaches(self):
        report = DriftReport(
            serving_generation="g000001", candidate_day=2,
            vocab_jaccard=0.2, vocab_churn=0.8, shared_hosts=10,
            neighbour_overlap=0.01, sampled_hosts=10,
            labelled_coverage_serving=20, labelled_coverage_candidate=10,
            labelled_coverage_delta=-0.5, category_jsd=0.9,
            breaches=("vocab_churn", "category_jsd"),
        )
        assert not report.ok
        assert "BREACH(vocab_churn, category_jsd)" in report.summary()
        assert "g000001" in report.summary()


class TestStreamHealthRates:
    def test_empty_registry_yields_zeros(self):
        assert stream_health_rates(MetricsRegistry()) == (0.0, 0.0)

    def test_rates_are_relative_to_ingested_events(self):
        registry = MetricsRegistry()
        registry.counter(
            "stream_events_total",
            "Hostname events ingested by the streaming profiler.",
        ).inc(200)
        registry.counter(
            "quarantine_admitted_total",
            "Malformed inputs quarantined, by error kind.",
            labelnames=("kind",),
        ).labels(kind="parse").inc(10)
        registry.counter(
            "stream_late_events_dropped_total",
            "Out-of-order events older than the lateness bound, dropped.",
        ).inc(4)
        assert stream_health_rates(registry) == (0.05, 0.02)


class _SequenceTrainer:
    """Duck-typed pipeline whose training corpus the test controls."""

    def __init__(self, pipeline, sequences):
        self.pipeline = pipeline
        self.sequences = sequences

    def train_on_day(self, trace, day):
        return self.pipeline.train_on_sequences(self.sequences)

    def publish_generation(self, store, day=None, drift_report=None):
        return self.pipeline.publish_generation(
            store, day=day, drift_report=drift_report
        )

    def load_generation(self, store):
        return self.pipeline.load_generation(store)

    @property
    def profiler(self):
        return self.pipeline.profiler


class TestSupervisorDriftGate:
    """End-to-end: retrain, publish, inject drift, gate, roll back."""

    def _supervisor(self, trainer, stream, store, registry, **config):
        monitor = DriftMonitor(DriftConfig(seed=7, **config), registry=registry)
        return RetrainSupervisor(
            trainer, stream=stream, store=store,
            config=SupervisorConfig(
                max_attempts=1, backoff_base_seconds=0.0, jitter_fraction=0.0
            ),
            registry=registry, drift_monitor=monitor,
        )

    def test_gate_rolls_back_while_stream_keeps_serving(
        self, day0_sequences, labelled, tracker_filter, tmp_path
    ):
        registry = MetricsRegistry()
        store = ArtifactStore(tmp_path / "store")
        trainer = _SequenceTrainer(
            _pipeline(labelled, tracker_filter), day0_sequences
        )
        stream = StreamingProfiler(StreamingConfig())
        supervisor = self._supervisor(trainer, stream, store, registry)

        first = supervisor.retrain(None, 0)
        assert first.succeeded and first.generation == "g000001"
        assert stream.serving_generation == "g000001"

        # A faithful retrain on the same corpus passes the gate and
        # publishes its drift report inside the new generation.
        second = supervisor.retrain(None, 1)
        assert second.succeeded and second.generation == "g000002"
        record = store.latest()
        assert record.has_component(DRIFT_REPORT_COMPONENT)
        published = DriftReport.from_dict(
            json.loads(record.component_path(DRIFT_REPORT_COMPONENT).read_text())
        )
        assert published.ok
        assert published.serving_generation == "g000001"
        serving = stream._profiler

        # Injected drift: the gate vetoes, the store rolls back, and the
        # stream never stops serving the last good model.
        trainer.sequences = _shuffle_labels(day0_sequences)
        outcome = supervisor.retrain(None, 2)
        assert not outcome.succeeded
        assert outcome.rolled_back
        assert outcome.generation is None
        assert "drift gate breached" in outcome.error
        assert store.latest_id() == "g000002"
        assert [r.generation_id for r in store.list_generations()] == [
            "g000001", "g000002"
        ]
        assert stream._profiler is serving
        assert stream.serving_generation == "g000002"
        assert not supervisor.last_drift_report.ok
        assert not supervisor.validating
        assert registry.counter("drift_gate_breaches_total").value == 1
        # The gate is not validation: its failures are counted separately.
        assert supervisor._validation_failures_total.value == 0
        assert supervisor._rollbacks_total.value == 1

    def test_ungated_monitor_reports_but_never_vetoes(
        self, day0_sequences, labelled, tracker_filter, tmp_path
    ):
        registry = MetricsRegistry()
        store = ArtifactStore(tmp_path / "store")
        trainer = _SequenceTrainer(
            _pipeline(labelled, tracker_filter), day0_sequences
        )
        supervisor = self._supervisor(
            trainer, None, store, registry, gate=False
        )
        assert supervisor.retrain(None, 0).succeeded
        trainer.sequences = _shuffle_labels(day0_sequences)
        outcome = supervisor.retrain(None, 1)
        assert outcome.succeeded
        assert outcome.generation == "g000002"
        assert not supervisor.last_drift_report.ok   # reported, not enforced
        assert registry.counter("drift_gate_breaches_total").value == 0

    def test_drift_check_crash_does_not_lose_the_day(
        self, day0_sequences, labelled, tracker_filter, tmp_path
    ):
        registry = MetricsRegistry()
        store = ArtifactStore(tmp_path / "store")
        trainer = _SequenceTrainer(
            _pipeline(labelled, tracker_filter), day0_sequences
        )
        supervisor = self._supervisor(trainer, None, store, registry)
        assert supervisor.retrain(None, 0).succeeded
        supervisor.drift_monitor.compare = None   # not callable: crashes
        outcome = supervisor.retrain(None, 1)
        assert outcome.succeeded
        assert outcome.generation == "g000002"
        assert supervisor.last_drift_report is None

    def test_first_retrain_has_nothing_to_compare(
        self, day0_sequences, labelled, tracker_filter, tmp_path
    ):
        registry = MetricsRegistry()
        store = ArtifactStore(tmp_path / "store")
        trainer = _SequenceTrainer(
            _pipeline(labelled, tracker_filter), day0_sequences
        )
        supervisor = self._supervisor(trainer, None, store, registry)
        outcome = supervisor.retrain(None, 0)
        assert outcome.succeeded
        assert supervisor.last_drift_report is None
        assert registry.counter("drift_checks_total").value == 0
        # and the generation carries no drift report component
        assert not store.latest().has_component(DRIFT_REPORT_COMPONENT)
