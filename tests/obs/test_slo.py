"""Tests for the SLO engine: burn rates, multi-window alerting, reports."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    SLO,
    SLOEngine,
    default_slos,
    estimate_quantile,
)


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _latency_slo(threshold: float = 0.05) -> SLO:
    return SLO(
        name="lat-p99",
        kind="latency",
        metric="op_seconds",
        quantile=0.99,
        threshold=threshold,
    )


def _ratio_slo(threshold: float = 0.01) -> SLO:
    return SLO(
        name="bad-ratio",
        kind="ratio",
        numerator="bad_total",
        denominator="all_total",
        threshold=threshold,
    )


def _engine(registry, slos, clock, fast=10.0, slow=60.0) -> SLOEngine:
    return SLOEngine(
        registry,
        slos=slos,
        fast_window_seconds=fast,
        slow_window_seconds=slow,
        clock=clock,
    )


class TestValidation:
    def test_default_slos_validate(self):
        for slo in default_slos():
            slo.validate()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            SLO(name="x", kind="nope", threshold=1.0).validate()

    def test_latency_requires_metric_and_sane_quantile(self):
        with pytest.raises(ValueError, match="metric"):
            SLO(name="x", kind="latency", threshold=0.1).validate()
        with pytest.raises(ValueError, match="quantile"):
            SLO(
                name="x", kind="latency", metric="m",
                threshold=0.1, quantile=1.5,
            ).validate()

    def test_ratio_requires_both_families(self):
        with pytest.raises(ValueError, match="numerator"):
            SLO(
                name="x", kind="ratio", threshold=0.1, numerator="n"
            ).validate()

    def test_window_ordering_enforced(self):
        with pytest.raises(ValueError, match="slow window"):
            SLOEngine(
                MetricsRegistry(),
                slos=[_ratio_slo()],
                fast_window_seconds=60,
                slow_window_seconds=5,
            )


class TestQuantileEstimator:
    def test_interpolates_within_bucket(self):
        # 100 observations, 90 at/below 0.1, all 100 at/below 1.0:
        # p95 sits halfway into the (0.1, 1.0] bucket.
        buckets = [(0.1, 90.0), (1.0, 100.0), (float("inf"), 100.0)]
        estimate = estimate_quantile(buckets, 0.95)
        assert 0.1 < estimate <= 1.0
        assert abs(estimate - 0.55) < 1e-9

    def test_overflow_quantile_reports_last_finite_bound(self):
        buckets = [(0.1, 0.0), (float("inf"), 100.0)]
        assert estimate_quantile(buckets, 0.99) == 0.1

    def test_no_data_returns_none(self):
        assert estimate_quantile([], 0.99) is None
        assert estimate_quantile([(0.1, 0.0)], 0.99) is None


class TestRatioObjective:
    def test_quiet_stream_is_ok(self):
        registry = MetricsRegistry()
        registry.counter("all_total").inc(1000)
        clock = FakeClock()
        engine = _engine(registry, [_ratio_slo()], clock)
        state = engine.evaluate()["bad-ratio"]
        assert state.ok and not state.alerting

    def test_spike_fires_then_clears_when_fast_window_recovers(self):
        registry = MetricsRegistry()
        bad = registry.counter("bad_total")
        total = registry.counter("all_total")
        clock = FakeClock()
        engine = _engine(registry, [_ratio_slo(0.01)], clock)
        engine.evaluate()                    # baseline
        # Spike: every event bad for a few seconds -> burn 100x budget.
        for _ in range(3):
            clock.advance(1.0)
            bad.inc(50)
            total.inc(50)
            state = engine.evaluate()["bad-ratio"]
        assert state.alerting
        assert state.burn_fast >= engine.fast_burn_threshold
        assert state.burn_slow >= engine.slow_burn_threshold
        transitions = registry.counter(
            "slo_alert_transitions_total", labelnames=("slo", "direction")
        )
        assert transitions.value_of(slo="bad-ratio", direction="fire") == 1
        # Recovery: healthy traffic pushes the spike out of the fast
        # window; the slow window still remembers it (that's the point
        # of multi-window alerting: fast clears, slow confirms).
        for _ in range(12):
            clock.advance(1.0)
            total.inc(50)
            state = engine.evaluate()["bad-ratio"]
        assert not state.alerting
        assert state.burn_fast < engine.fast_burn_threshold
        assert transitions.value_of(slo="bad-ratio", direction="clear") == 1

    def test_transition_observers_see_both_flips(self):
        registry = MetricsRegistry()
        bad = registry.counter("bad_total")
        total = registry.counter("all_total")
        clock = FakeClock()
        engine = _engine(registry, [_ratio_slo(0.01)], clock)
        seen = []
        engine.on_transition.append(
            lambda name, active, state: seen.append((name, active))
        )
        engine.evaluate()
        clock.advance(1.0)
        bad.inc(10)
        total.inc(10)
        engine.evaluate()
        for _ in range(12):
            clock.advance(1.0)
            total.inc(50)
            engine.evaluate()
        assert seen == [("bad-ratio", True), ("bad-ratio", False)]

    def test_no_events_is_skipped_not_alerting(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        engine = _engine(registry, [_ratio_slo()], clock)
        state = engine.evaluate()["bad-ratio"]
        assert state.skipped and not state.alerting


class TestLatencyObjective:
    def test_slow_observations_burn_the_budget(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "op_seconds", "Op.", buckets=(0.01, 0.05, 0.1, 1.0)
        )
        clock = FakeClock()
        engine = _engine(registry, [_latency_slo(0.05)], clock)
        engine.evaluate()
        clock.advance(1.0)
        for _ in range(100):
            hist.observe(0.5)    # all above the 50 ms objective
        state = engine.evaluate()["lat-p99"]
        assert state.alerting
        assert state.current > 0.05
        assert state.budget_remaining == 0.0

    def test_fast_observations_keep_it_ok(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "op_seconds", "Op.", buckets=(0.01, 0.05, 0.1, 1.0)
        )
        clock = FakeClock()
        engine = _engine(registry, [_latency_slo(0.05)], clock)
        engine.evaluate()
        clock.advance(1.0)
        for _ in range(100):
            hist.observe(0.001)
        state = engine.evaluate()["lat-p99"]
        assert state.ok and not state.alerting
        assert state.current <= 0.05
        assert state.budget_remaining == 1.0


class TestGaugeObjective:
    def test_zero_gauge_is_not_yet_measured(self):
        registry = MetricsRegistry()
        registry.gauge("overlap", "O.")    # defaults to 0.0
        slo = SLO(
            name="floor", kind="gauge_min", metric="overlap", threshold=0.5
        )
        engine = _engine(registry, [slo], FakeClock())
        state = engine.evaluate()["floor"]
        assert state.skipped and not state.alerting

    def test_floor_breach_alerts_immediately(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("overlap", "O.")
        slo = SLO(
            name="floor", kind="gauge_min", metric="overlap", threshold=0.5
        )
        engine = _engine(registry, [slo], FakeClock())
        gauge.set(0.9)
        assert engine.evaluate()["floor"].ok
        gauge.set(0.2)
        state = engine.evaluate()["floor"]
        assert state.alerting and not state.ok

    def test_ceiling_breach_alerts(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("lag", "L.")
        slo = SLO(
            name="ceil", kind="gauge_max", metric="lag", threshold=10.0
        )
        engine = _engine(registry, [slo], FakeClock())
        gauge.set(50.0)
        assert engine.evaluate()["ceil"].alerting


class TestReports:
    def test_slo_report_shape(self):
        registry = MetricsRegistry()
        registry.counter("all_total").inc(10)
        engine = _engine(registry, [_ratio_slo()], FakeClock())
        report = engine.slo_report()
        assert report["format"] == "repro-slo-v1"
        (objective,) = report["objectives"]
        assert objective["name"] == "bad-ratio"
        assert objective["budget"] == 0.01

    def test_alerts_report_lists_only_firing(self):
        registry = MetricsRegistry()
        bad = registry.counter("bad_total")
        total = registry.counter("all_total")
        clock = FakeClock()
        engine = _engine(registry, [_ratio_slo(0.01)], clock)
        engine.evaluate()
        report = engine.alerts_report()
        assert report["format"] == "repro-alerts-v1"
        assert report["count"] == 0
        clock.advance(1.0)
        bad.inc(10)
        total.inc(10)
        report = engine.alerts_report()
        assert report["count"] == 1
        assert report["firing"][0]["name"] == "bad-ratio"

    def test_background_thread_evaluates(self):
        registry = MetricsRegistry()
        registry.counter("all_total").inc(5)
        engine = SLOEngine(registry, slos=[_ratio_slo()])
        engine.start(interval_seconds=0.05)
        try:
            import time

            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if registry.counter("slo_evaluations_total").value >= 2:
                    break
                time.sleep(0.02)
            assert registry.counter("slo_evaluations_total").value >= 2
        finally:
            engine.stop()

    def test_metrics_exported(self):
        registry = MetricsRegistry()
        registry.counter("all_total").inc(10)
        engine = _engine(registry, [_ratio_slo()], FakeClock())
        engine.evaluate()
        text = registry.to_prometheus()
        assert 'slo_burn_rate{slo="bad-ratio",window="fast"}' in text
        assert 'slo_alert_active{slo="bad-ratio"}' in text
        assert 'slo_error_budget_remaining{slo="bad-ratio"}' in text
