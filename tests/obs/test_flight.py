"""Tests for the flight recorder: ring semantics, dumps, crash hooks."""

import json
import sys
import threading

import pytest

from repro.obs.flight import FORMAT, FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import TraceContext, Tracer, use_trace


class TestRing:
    def test_keeps_only_the_newest_events(self):
        flight = FlightRecorder(capacity=8)
        for i in range(20):
            flight.record("state", f"event-{i}")
        events = flight.events()
        assert len(events) == 8
        assert [e["name"] for e in events] == [
            f"event-{i}" for i in range(12, 20)
        ]
        report = flight.report()
        assert report["dropped"] == 12
        assert report["kinds"] == {"state": 8}

    def test_sequence_numbers_are_gapless(self):
        flight = FlightRecorder(capacity=4)
        for i in range(10):
            flight.record("flow", str(i))
        sequences = [e["seq"] for e in flight.events()]
        assert sequences == [7, 8, 9, 10]

    def test_fields_are_coerced_json_safe(self):
        flight = FlightRecorder(capacity=4)
        flight.record(
            "state", "odd-fields",
            ok=True, n=3, nested={"a": (1, 2)}, weird=object(),
        )
        (event,) = flight.events()
        json.dumps(event)   # must not raise
        assert event["nested"] == {"a": [1, 2]}
        assert event["weird"].startswith("<object object")

    def test_record_never_raises(self):
        flight = FlightRecorder(capacity=4)
        # A pathological field that explodes in repr must be swallowed.
        class Bomb:
            def __repr__(self):
                raise RuntimeError("boom")

        flight.record("state", "bomb", payload=Bomb())
        # The event was dropped, not the process.
        assert all(e["name"] != "bomb" for e in flight.events())

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_events_counter_exported(self):
        registry = MetricsRegistry()
        flight = FlightRecorder(capacity=4, registry=registry)
        flight.record("flow", "a")
        flight.record("slo", "b")
        family = registry.counter(
            "flight_events_total", labelnames=("kind",)
        )
        assert family.value_of(kind="flow") == 1
        assert family.value_of(kind="slo") == 1


class TestObservers:
    def test_span_observer_records_trace_ids(self):
        flight = FlightRecorder(capacity=4)
        tracer = Tracer()
        with use_trace(TraceContext(trace_id="t1")):
            with tracer.span("op") as span:
                pass
        flight.span_observer(span)
        (event,) = flight.events()
        assert event["kind"] == "span"
        assert event["trace_id"] == "t1"
        assert event["duration_ms"] >= 0

    def test_slo_observer_matches_engine_hook(self):
        flight = FlightRecorder(capacity=4)
        flight.slo_observer(
            "lat-p99", True, {"burn_fast": 20.0, "burn_slow": 2.0}
        )
        flight.slo_observer("lat-p99", False, {})
        fire, clear = flight.events()
        assert fire["direction"] == "fire" and fire["burn_fast"] == 20.0
        assert clear["direction"] == "clear"


class TestDump:
    def test_dump_is_valid_json_with_format_marker(self, tmp_path):
        registry = MetricsRegistry()
        flight = FlightRecorder(capacity=4, registry=registry)
        flight.record("state", "checkpoint")
        path = flight.dump(tmp_path / "flight.json", reason="test")
        saved = json.loads(path.read_text())
        assert saved["format"] == FORMAT
        assert saved["reason"] == "test"
        assert saved["events"][0]["name"] == "checkpoint"
        dumps = registry.counter(
            "flight_dumps_total", labelnames=("trigger",)
        )
        assert dumps.value_of(trigger="test") == 1

    def test_dump_creates_parent_directories(self, tmp_path):
        flight = FlightRecorder(capacity=4)
        path = flight.dump(tmp_path / "deep" / "dir" / "flight.json")
        assert path.is_file()

    def test_dump_during_concurrent_writes_is_coherent(self, tmp_path):
        # Writers hammer the ring while dumps race them: every dump must
        # be parseable JSON with internally consistent events.
        flight = FlightRecorder(capacity=64)
        stop = threading.Event()
        errors: list[Exception] = []

        def writer(worker: int) -> None:
            i = 0
            while not stop.is_set():
                flight.record("flow", f"w{worker}-{i}", worker=worker)
                i += 1

        def dumper(n: int) -> None:
            try:
                for i in range(10):
                    path = tmp_path / f"dump-{n}-{i}.json"
                    saved = json.loads(
                        flight.dump(path, reason="race").read_text()
                    )
                    assert saved["format"] == FORMAT
                    assert len(saved["events"]) <= 64
                    sequences = [e["seq"] for e in saved["events"]]
                    assert sequences == sorted(sequences)
            except Exception as error:   # surfaced after join
                errors.append(error)

        writers = [
            threading.Thread(target=writer, args=(w,), daemon=True)
            for w in range(3)
        ]
        dumpers = [
            threading.Thread(target=dumper, args=(n,)) for n in range(2)
        ]
        for thread in writers + dumpers:
            thread.start()
        for thread in dumpers:
            thread.join()
        stop.set()
        for thread in writers:
            thread.join()
        assert errors == []


class TestCrashHooks:
    def test_excepthook_dumps_and_chains(self, tmp_path, monkeypatch):
        flight = FlightRecorder(capacity=8)
        flight.record("state", "pre-crash")
        seen = []
        monkeypatch.setattr(
            sys, "excepthook", lambda *a: seen.append(a)
        )
        path = tmp_path / "crash.json"
        flight.install_crash_hooks(path)
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            sys.excepthook(*sys.exc_info())
        saved = json.loads(path.read_text())
        assert saved["reason"] == "unhandled-exception"
        names = [e["name"] for e in saved["events"]]
        assert names == ["pre-crash", "unhandled-exception"]
        crash = saved["events"][-1]
        assert crash["exc_type"] == "RuntimeError"
        assert crash["message"] == "boom"
        # The previous hook still ran (tracebacks must keep printing).
        assert len(seen) == 1

    def test_install_from_worker_thread_skips_signal_handler(
        self, tmp_path, monkeypatch
    ):
        # Signal handlers can only be installed on the main thread; the
        # excepthook half must still work and nothing may raise.
        monkeypatch.setattr(sys, "excepthook", sys.excepthook)
        flight = FlightRecorder(capacity=4)
        errors: list[Exception] = []

        def install():
            try:
                flight.install_crash_hooks(tmp_path / "flight.json")
            except Exception as error:
                errors.append(error)

        thread = threading.Thread(target=install)
        thread.start()
        thread.join()
        assert errors == []
