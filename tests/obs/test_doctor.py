"""Tests for the ``repro doctor`` debug-bundle collector."""

import json
import time
from pathlib import Path

import pytest

from repro.obs.doctor import collect_bundle, read_bundle
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry, label_snapshot
from repro.obs.server import AdminServer
from repro.obs.slo import SLOEngine
from repro.store import DRIFT_REPORT_COMPONENT, ArtifactStore
from repro.utils.serialization import atomic_write_json


def _publish(store, drift_report=None):
    components = {"model.bin": lambda path: path.write_bytes(b"weights")}
    if drift_report is not None:
        components[DRIFT_REPORT_COMPONENT] = (
            lambda path: atomic_write_json(path, drift_report)
        )
    return store.publish(components)


class TestLiveBundle:
    def test_collects_every_reachable_route(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("events_total", "Events.").inc(5)
        store = ArtifactStore(tmp_path / "store")
        _publish(store, drift_report={"format": "repro-drift-v1", "ok": True})
        flight = FlightRecorder(capacity=16)
        flight.record("state", "test-start")
        with AdminServer(registry, run_id="doctor-test") as admin:
            admin.attach(
                store=store,
                slo_engine=SLOEngine(registry),
                flight=flight,
            )
            manifest = collect_bundle(
                tmp_path / "bundle", admin_url=admin.url(),
                profile_seconds=0.2,
            )
        out = tmp_path / "bundle"
        assert manifest["format"] == "repro-doctor-v3"
        assert "events_total 5" in (out / "metrics.prom").read_text()
        assert json.loads((out / "healthz.json").read_text()) == {"ok": True}
        generations = json.loads((out / "generations.json").read_text())
        assert generations["serving"] == "g000001"
        assert json.loads((out / "drift.json").read_text())["ok"] is True
        varz = json.loads((out / "varz.json").read_text())
        assert varz["run_id"] == "doctor-test"
        slo = json.loads((out / "slo.json").read_text())
        assert slo["format"] == "repro-slo-v1"
        alerts = json.loads((out / "alerts.json").read_text())
        assert alerts["format"] == "repro-alerts-v1"
        captured = json.loads((out / "flight.json").read_text())
        assert captured["format"] == "repro-flight-v1"
        assert captured["events"][0]["name"] == "test-start"
        assert "profile.collapsed" in manifest["collected"]
        # /trace always answers (empty index without a tracer) ...
        traces = json.loads((out / "traces.json").read_text())
        assert traces["count"] == 0
        saved = json.loads((out / "bundle.json").read_text())
        assert saved["collected"] == manifest["collected"]
        # ... while the fleet routes 404 on a coordinator-less process
        # and are recorded explicitly absent, never as scrape failures.
        assert sorted(manifest["errors"]) == [
            "/metrics?scope=fleet", "/shards",
        ]
        for reason in manifest["errors"].values():
            assert reason.startswith("absent:")

    def test_not_ready_readyz_is_captured_not_an_error(self, tmp_path):
        with AdminServer(MetricsRegistry()) as admin:
            manifest = collect_bundle(
                tmp_path / "bundle", admin_url=admin.url(),
                profile_seconds=0,
            )
        readyz = json.loads((tmp_path / "bundle" / "readyz.json").read_text())
        assert readyz["status"] == 503
        assert readyz["body"]["ready"] is False
        assert "readyz.json" in manifest["collected"]
        # Routes that legitimately 404 on a bare server are errors...
        assert "/generations" in manifest["errors"]
        # ...but never abort the rest of the collection.
        assert "metrics.prom" in manifest["collected"]

    def test_unreachable_admin_still_writes_a_manifest(self, tmp_path):
        manifest = collect_bundle(
            tmp_path / "bundle",
            admin_url="http://127.0.0.1:9",   # discard port: nothing listens
            timeout=0.5,
        )
        assert manifest["collected"] == {}
        assert "/metrics" in manifest["errors"]
        assert (tmp_path / "bundle" / "bundle.json").is_file()


class TestOfflineBundle:
    def test_reads_store_and_copies_files(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        _publish(store)
        _publish(store, drift_report={
            "format": "repro-drift-v1", "breaches": ["category_jsd"],
        })
        metrics = tmp_path / "final.prom"
        metrics.write_text("events_total 9\n")
        manifest = collect_bundle(
            tmp_path / "bundle",
            store=store,
            metrics_path=metrics,
            config={"seed": 42, "store": Path("/somewhere/models")},
        )
        out = tmp_path / "bundle"
        generations = json.loads((out / "generations.json").read_text())
        assert [g["generation_id"] for g in generations["generations"]] == [
            "g000001", "g000002"
        ]
        # drift.json comes from the newest generation that has one
        assert manifest["collected"]["drift.json"] == "g000002"
        drift = json.loads((out / "drift.json").read_text())
        assert drift["breaches"] == ["category_jsd"]
        assert (out / "metrics.prom").read_text() == "events_total 9\n"
        config = json.loads((out / "config.json").read_text())
        assert config["seed"] == 42
        assert config["store"] == "/somewhere/models"   # Path stringified

    def test_rolled_back_store_reports_retracted_drift(self, tmp_path):
        # After a gate trip the rejected generation is retracted: the
        # bundle falls back to the newest surviving report.
        store = ArtifactStore(tmp_path / "store")
        _publish(store, drift_report={"format": "repro-drift-v1", "n": 1})
        _publish(store, drift_report={"format": "repro-drift-v1", "n": 2})
        store.rollback()
        store.retract("g000002")
        manifest = collect_bundle(tmp_path / "bundle", store=store)
        assert manifest["collected"]["drift.json"] == "g000001"

    def test_missing_file_sources_are_recorded(self, tmp_path):
        manifest = collect_bundle(
            tmp_path / "bundle",
            metrics_path=tmp_path / "nope.prom",
            trace_path=tmp_path / "nope.json",
        )
        assert manifest["collected"] == {}
        assert manifest["errors"][str(tmp_path / "nope.prom")] == (
            "file not found"
        )
        assert manifest["errors"][str(tmp_path / "nope.json")] == (
            "file not found"
        )

    def test_empty_bundle_is_valid(self, tmp_path):
        manifest = collect_bundle(tmp_path / "bundle")
        assert manifest["collected"] == {}
        # Live-only captures are explicitly noted absent, not silently
        # missing: an offline bundle says why there is no SLO state.
        for route in (
            "/slo", "/alerts", "/flight", "/profile",
            "/shards", "/metrics?scope=fleet", "/trace",
        ):
            assert "no live admin endpoint" in manifest["errors"][route]
        assert json.loads(
            (tmp_path / "bundle" / "bundle.json").read_text()
        )["format"] == "repro-doctor-v3"

    def test_copies_flight_dump_file(self, tmp_path):
        flight = FlightRecorder(capacity=4)
        flight.record("crash", "sigterm")
        dump = tmp_path / "flight.json"
        flight.dump(dump, reason="sigterm")
        manifest = collect_bundle(tmp_path / "bundle", flight_path=dump)
        saved = json.loads(
            (tmp_path / "bundle" / "flight.json").read_text()
        )
        assert saved["reason"] == "sigterm"
        assert manifest["collected"]["flight.json"] == str(dump)


class TestReadBundle:
    def test_reads_v3_bundle(self, tmp_path):
        collect_bundle(tmp_path / "bundle")
        manifest = read_bundle(tmp_path / "bundle")
        assert manifest["format"] == "repro-doctor-v3"

    def test_reads_v2_bundle(self, tmp_path):
        # A bundle written by the pre-fleet release: no shards.json /
        # metrics_fleet.prom / traces.json captures.  Must load as-is.
        out = tmp_path / "v2-bundle"
        out.mkdir()
        atomic_write_json(out / "bundle.json", {
            "format": "repro-doctor-v2",
            "created_at": time.time(),
            "admin_url": None,
            "collected": {"slo.json": "http://127.0.0.1:1/slo"},
            "errors": {},
        })
        manifest = read_bundle(out)
        assert manifest["format"] == "repro-doctor-v2"
        assert "shards.json" not in manifest["collected"]

    def test_reads_v1_bundle(self, tmp_path):
        # A bundle written by the previous release: v1 format marker, no
        # introspection-plane files.  Must load without complaint.
        out = tmp_path / "old-bundle"
        out.mkdir()
        atomic_write_json(out / "bundle.json", {
            "format": "repro-doctor-v1",
            "created_at": time.time(),
            "admin_url": None,
            "collected": {"metrics.prom": "/tmp/final.prom"},
            "errors": {},
        })
        manifest = read_bundle(out)
        assert manifest["format"] == "repro-doctor-v1"
        assert "slo.json" not in manifest["collected"]

    def test_rejects_unknown_format(self, tmp_path):
        out = tmp_path / "future-bundle"
        out.mkdir()
        atomic_write_json(out / "bundle.json", {"format": "repro-doctor-v9"})
        with pytest.raises(ValueError, match="repro-doctor-v2"):
            read_bundle(out)


class TestFleetBundle:
    def test_scrapes_fleet_routes_when_coordinator_attached(self, tmp_path):
        registry = MetricsRegistry()

        class _Coordinator:
            @staticmethod
            def status():
                return {"num_shards": 2, "workers": 2, "shards": []}

            @staticmethod
            def fleet_metrics_snapshot():
                shard = MetricsRegistry()
                shard.counter("stream_events_total", "Events.").inc(7)
                return MetricsRegistry.merge_snapshots(
                    [label_snapshot(shard.snapshot(), shard="0")]
                )

        with AdminServer(registry) as admin:
            admin.attach(coordinator=_Coordinator())
            manifest = collect_bundle(
                tmp_path / "bundle", admin_url=admin.url(),
                profile_seconds=0,
            )
        out = tmp_path / "bundle"
        shards = json.loads((out / "shards.json").read_text())
        assert shards["num_shards"] == 2
        fleet = (out / "metrics_fleet.prom").read_text()
        assert 'stream_events_total{shard="0"}' in fleet
        assert "shards.json" in manifest["collected"]
        assert "metrics_fleet.prom" in manifest["collected"]
        assert "/shards" not in manifest["errors"]
        assert "/metrics?scope=fleet" not in manifest["errors"]

    def test_shard_dir_checkpoints_and_flight_dumps_copied(self, tmp_path):
        shard_dir = tmp_path / "ckpt"
        shard_dir.mkdir()
        (shard_dir / "shard-000.json").write_text(
            '{"format": "repro-shard-checkpoint-v1"}'
        )
        (shard_dir / "shard-000-flight.json").write_text(
            '{"format": "repro-flight-v1"}'
        )
        (shard_dir / "shard-000.json.tmp").write_text("{}")   # scratch
        manifest = collect_bundle(tmp_path / "bundle", shard_dir=shard_dir)
        copied = sorted(
            p.name for p in (tmp_path / "bundle" / "shards").iterdir()
        )
        assert copied == ["shard-000-flight.json", "shard-000.json"]
        assert manifest["collected"]["shards/shard-000.json"] == str(
            shard_dir / "shard-000.json"
        )

    def test_missing_shard_dir_recorded(self, tmp_path):
        manifest = collect_bundle(
            tmp_path / "bundle", shard_dir=tmp_path / "nope"
        )
        assert manifest["errors"][str(tmp_path / "nope")] == (
            "directory not found"
        )

    def test_empty_shard_dir_recorded(self, tmp_path):
        (tmp_path / "ckpt").mkdir()
        manifest = collect_bundle(
            tmp_path / "bundle", shard_dir=tmp_path / "ckpt"
        )
        assert "no shard-*.json files" in (
            manifest["errors"][str(tmp_path / "ckpt")]
        )


class TestDriftReportFlow:
    def test_live_drift_route_wins_over_store(self, tmp_path):
        registry = MetricsRegistry()
        store = ArtifactStore(tmp_path / "store")
        _publish(store, drift_report={"format": "repro-drift-v1", "n": 1})

        class _Supervisor:
            validating = False
            is_degraded = False
            consecutive_failures = 0

            class last_drift_report:   # duck: only to_dict is called
                @staticmethod
                def to_dict():
                    return {"format": "repro-drift-v1", "n": 99}

        with AdminServer(registry) as admin:
            admin.attach(store=store, supervisor=_Supervisor())
            collect_bundle(
                tmp_path / "bundle", admin_url=admin.url(),
                profile_seconds=0,
            )
        drift = json.loads((tmp_path / "bundle" / "drift.json").read_text())
        assert drift["n"] == 99
