"""Tests for the admin HTTP endpoint (the live operations plane)."""

import json
import re
import threading
import urllib.error
import urllib.request
from types import SimpleNamespace

import pytest

from repro.core.streaming import StreamingConfig, StreamingProfiler
from repro.netobs.flows import HostnameEvent
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry, label_snapshot
from repro.obs.profile import SamplingProfiler
from repro.obs.tracing import TraceContext, Tracer, use_trace
from repro.obs.server import (
    MAX_QUERY_LENGTH,
    PROMETHEUS_CONTENT_TYPE,
    AdminServer,
)
from repro.obs.slo import SLOEngine

_PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? "
    r"(?:[0-9.eE+-]+|\+Inf|-Inf|NaN)$"
)


def parse_prometheus(text):
    """name{labels} -> float for every sample; asserts each line parses."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        assert _PROM_LINE.match(line), f"unparseable exposition line: {line!r}"
        key, value = line.rsplit(" ", 1)
        samples[key] = float(value)
    return samples


def _get(url):
    """(status, content_type, body) without raising on 4xx/5xx."""
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return (
                response.status,
                response.headers.get("Content-Type"),
                response.read().decode(),
            )
    except urllib.error.HTTPError as error:
        return error.code, error.headers.get("Content-Type"), (
            error.read().decode()
        )


def _fake_supervisor(**overrides):
    state = dict(
        validating=False, is_degraded=False, consecutive_failures=0,
        successes=1, failed_days=[], last_success_day=0,
        last_drift_report=None,
    )
    state.update(overrides)
    return SimpleNamespace(**state)


def _event(host, t, client="10.0.0.1"):
    return HostnameEvent(
        client_ip=client, timestamp=t, hostname=host, source="tls-sni"
    )


@pytest.fixture()
def registry():
    return MetricsRegistry()


@pytest.fixture()
def server(registry):
    with AdminServer(registry, run_id="test-run") as admin:
        yield admin


class TestRoutes:
    def test_metrics_serves_prometheus(self, server, registry):
        registry.counter("events_total", "Events.").inc(3)
        status, content_type, body = _get(server.url("/metrics"))
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        assert parse_prometheus(body)["events_total"] == 3.0

    def test_healthz_is_always_ok(self, server):
        status, _, body = _get(server.url("/healthz"))
        assert status == 200
        assert json.loads(body) == {"ok": True}

    def test_unknown_route_is_404_with_bounded_label(self, server, registry):
        status, _, body = _get(server.url("/secrets"))
        assert status == 404
        assert "unknown route" in json.loads(body)["error"]
        requests = registry.counter(
            "admin_requests_total", labelnames=("route", "status")
        )
        assert requests.value_of(route="<other>", status="404") == 1

    def test_trailing_slash_is_normalised(self, server):
        status, _, _ = _get(server.url("/healthz/"))
        assert status == 200

    def test_generations_404_without_store(self, server):
        status, _, body = _get(server.url("/generations"))
        assert status == 404
        assert "store" in json.loads(body)["error"]

    def test_drift_latest_404_without_reports(self, server):
        status, _, _ = _get(server.url("/drift/latest"))
        assert status == 404

    def test_drift_latest_serves_supervisor_report(self, server):
        report = SimpleNamespace(to_dict=lambda: {"ok": False, "breaches": []})
        server.attach(supervisor=_fake_supervisor(last_drift_report=report))
        status, _, body = _get(server.url("/drift/latest"))
        assert status == 200
        assert json.loads(body)["ok"] is False

    def test_broken_route_returns_500_and_keeps_serving(self, server):
        class _Exploding:
            @property
            def validating(self):
                raise RuntimeError("boom")

            is_degraded = False
            consecutive_failures = 0

        server.attach(supervisor=_Exploding())
        status, _, body = _get(server.url("/readyz"))
        assert status == 500
        assert "boom" in json.loads(body)["error"]
        status, _, _ = _get(server.url("/healthz"))   # still alive
        assert status == 200

    def test_ephemeral_port_is_resolved(self, registry):
        admin = AdminServer(registry)
        assert admin.port == 0
        with admin:
            assert admin.port != 0


class TestReadyz:
    def test_not_ready_without_a_model(self, server):
        server.attach(stream=StreamingProfiler(StreamingConfig()))
        status, _, body = _get(server.url("/readyz"))
        assert status == 503
        payload = json.loads(body)
        assert payload["ready"] is False
        assert payload["model_loaded"] is False

    def test_ready_once_a_model_serves(self, server):
        stream = StreamingProfiler(StreamingConfig())
        stream.swap_model(SimpleNamespace(), generation="g000007")
        server.attach(stream=stream)
        status, _, body = _get(server.url("/readyz"))
        assert status == 200
        payload = json.loads(body)
        assert payload["ready"] is True
        assert payload["serving_generation"] == "g000007"

    def test_validation_window_flips_readiness(self, server):
        stream = StreamingProfiler(StreamingConfig())
        stream.swap_model(SimpleNamespace())
        supervisor = _fake_supervisor(validating=True)
        server.attach(stream=stream, supervisor=supervisor)
        status, _, body = _get(server.url("/readyz"))
        assert status == 503
        assert json.loads(body)["validating"] is True
        # ... and recovers the moment the check window closes.
        supervisor.validating = False
        status, _, body = _get(server.url("/readyz"))
        assert status == 200
        assert json.loads(body)["validating"] is False

    def test_degraded_supervisor_stays_ready(self, server):
        # Serving stale is the designed failure mode, not an outage:
        # degradation is reported in the body but never flips readiness.
        stream = StreamingProfiler(StreamingConfig())
        stream.swap_model(SimpleNamespace())
        server.attach(
            stream=stream,
            supervisor=_fake_supervisor(
                is_degraded=True, consecutive_failures=2
            ),
        )
        status, _, body = _get(server.url("/readyz"))
        assert status == 200
        payload = json.loads(body)
        assert payload["degraded"] is True
        assert payload["consecutive_failures"] == 2

    def test_thunk_attachment_resolves_late(self, server):
        holder = {"supervisor": None}
        stream = StreamingProfiler(StreamingConfig())
        stream.swap_model(SimpleNamespace())
        server.attach(
            stream=stream, supervisor=lambda: holder["supervisor"]
        )
        status, _, _ = _get(server.url("/readyz"))
        assert status == 200
        holder["supervisor"] = _fake_supervisor(validating=True)
        status, _, _ = _get(server.url("/readyz"))
        assert status == 503


class TestVarz:
    def test_reports_process_and_stream_state(self, server, tmp_path):
        stream = StreamingProfiler(StreamingConfig())
        stream.swap_model(
            SimpleNamespace(index_backend="exact"), generation="g000001"
        )
        stream.ingest(_event("a.com", 0.0))
        stream.checkpoint(tmp_path / "state.json")
        server.attach(stream=stream, supervisor=_fake_supervisor())
        status, _, body = _get(server.url("/varz"))
        assert status == 200
        payload = json.loads(body)
        assert payload["run_id"] == "test-run"
        assert payload["uptime_seconds"] >= 0
        assert payload["serving_generation"] == "g000001"
        assert payload["index_backend"] == "exact"
        assert payload["model_loaded"] is True
        assert payload["stream"]["events_seen"] == 1
        assert payload["stream"]["model_swaps"] == 1
        assert payload["stream"]["checkpoint_age_seconds"] >= 0
        assert payload["supervisor"]["successes"] == 1
        assert payload["supervisor"]["degraded"] is False

    def test_minimal_varz_without_attachments(self, server):
        status, _, body = _get(server.url("/varz"))
        assert status == 200
        payload = json.loads(body)
        assert payload["serving_generation"] is None
        assert payload["model_loaded"] is False
        assert "stream" not in payload
        assert "supervisor" not in payload


class TestConcurrentScrapes:
    def test_metrics_parse_and_stay_monotonic_during_ingest(self, registry):
        """Hammer /metrics from threads while the stream ingests.

        Every scrape must be a parseable exposition and the event counter
        must never go backwards — the registry's locking is what makes a
        scrape mid-ingest safe.
        """
        stream = StreamingProfiler(StreamingConfig(), registry=registry)
        with AdminServer(registry) as admin:
            url = admin.url("/metrics")
            failures = []
            seen = {i: [] for i in range(4)}

            def scrape(worker):
                try:
                    for _ in range(25):
                        status, _, body = _get(url)
                        assert status == 200
                        samples = parse_prometheus(body)
                        seen[worker].append(
                            samples.get("stream_events_total", 0.0)
                        )
                except Exception as error:   # surfaces in the main thread
                    failures.append(f"{type(error).__name__}: {error}")

            threads = [
                threading.Thread(target=scrape, args=(i,)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for step in range(600):
                stream.ingest(
                    _event(f"host{step % 40}.com", float(step),
                           client=f"10.0.0.{step % 8}")
                )
            for thread in threads:
                thread.join(timeout=30)
            assert not failures, failures
            for worker, values in seen.items():
                assert len(values) == 25
                assert values == sorted(values), (
                    f"counter went backwards in worker {worker}"
                )
            assert stream.events_seen == 600


class TestIntrospectionRoutes:
    def test_slo_and_alerts_404_without_engine(self, server):
        assert _get(server.url("/slo"))[0] == 404
        assert _get(server.url("/alerts"))[0] == 404

    def test_slo_and_alerts_serve_engine_reports(self, server, registry):
        registry.counter("stream_events_total", "E.").inc(100)
        engine = SLOEngine(registry)
        engine.evaluate()
        server.attach(slo_engine=engine)
        status, _, body = _get(server.url("/slo"))
        assert status == 200
        assert json.loads(body)["format"] == "repro-slo-v1"
        status, _, body = _get(server.url("/alerts"))
        assert status == 200
        payload = json.loads(body)
        assert payload["format"] == "repro-alerts-v1"
        assert payload["count"] == 0

    def test_profile_404_without_profiler_and_no_burst(self, server):
        status, _, body = _get(server.url("/profile"))
        assert status == 404
        assert "burst" in json.loads(body)["error"]

    def test_profile_burst_returns_fresh_report(self, server):
        status, _, body = _get(
            server.url("/profile?seconds=0.1&hz=50")
        )
        assert status == 200
        payload = json.loads(body)
        assert payload["format"] == "repro-profile-v1"
        assert payload["wall_seconds"] >= 0.1

    def test_profile_serves_attached_continuous_profiler(self, server):
        profiler = SamplingProfiler(hz=200.0)
        profiler.run_for(0.05)
        server.attach(profiler=profiler)
        status, _, body = _get(server.url("/profile"))
        assert status == 200
        assert json.loads(body)["samples"] == profiler.samples
        status, _, body = _get(server.url("/profile?format=speedscope"))
        assert status == 200
        assert "$schema" in json.loads(body)

    def test_flight_route_reports_and_dumps(self, server, tmp_path):
        flight = FlightRecorder(capacity=16)
        flight.record("state", "hello")
        dump_path = tmp_path / "flight.json"
        server.attach(flight=flight, flight_path=dump_path)
        status, _, body = _get(server.url("/flight"))
        assert status == 200
        assert json.loads(body)["kinds"] == {"state": 1}
        assert not dump_path.exists()
        status, _, body = _get(server.url("/flight?dump=1"))
        assert status == 200
        assert json.loads(body)["dump_path"] == str(dump_path)
        saved = json.loads(dump_path.read_text())
        assert saved["events"][0]["name"] == "hello"

    def test_shards_404_without_coordinator(self, server):
        status, _, body = _get(server.url("/shards"))
        assert status == 404
        assert "coordinator" in json.loads(body)["error"]

    def test_shards_serves_coordinator_status(self, server):
        class _FakeFleet:
            def status(self):
                return {
                    "num_shards": 2,
                    "started": True,
                    "finished": False,
                    "shards": [
                        {"shard_id": 0, "alive": True},
                        {"shard_id": 1, "alive": True},
                    ],
                }

        server.attach(coordinator=_FakeFleet())
        status, _, body = _get(server.url("/shards"))
        assert status == 200
        payload = json.loads(body)
        assert payload["num_shards"] == 2
        assert [s["shard_id"] for s in payload["shards"]] == [0, 1]

    def test_shards_thunk_resolves_late(self, server):
        fleet = {}
        server.attach(coordinator=lambda: fleet.get("coordinator"))
        assert _get(server.url("/shards"))[0] == 404

        class _FakeFleet:
            def status(self):
                return {"num_shards": 4, "shards": []}

        fleet["coordinator"] = _FakeFleet()
        status, _, body = _get(server.url("/shards"))
        assert status == 200
        assert json.loads(body)["num_shards"] == 4


def _fake_coordinator():
    """Duck-typed shard coordinator: status + merged fleet snapshot."""

    class _Fleet:
        @staticmethod
        def status():
            return {
                "num_shards": 2, "workers": 2, "salt": "s3",
                "restarts": 1, "started": True, "finished": False,
                "shards": [],
            }

        @staticmethod
        def fleet_metrics_snapshot():
            first, second = MetricsRegistry(), MetricsRegistry()
            first.counter("stream_events_total", "E.").inc(3)
            second.counter("stream_events_total", "E.").inc(4)
            return MetricsRegistry.merge_snapshots([
                label_snapshot(first.snapshot(), shard="0"),
                label_snapshot(second.snapshot(), shard="1"),
            ])

    return _Fleet()


class TestFleetRoutes:
    def test_fleet_scope_404_without_coordinator(self, server):
        status, _, body = _get(server.url("/metrics?scope=fleet"))
        assert status == 404
        assert "coordinator" in json.loads(body)["error"]

    def test_fleet_scope_serves_shard_labelled_series(self, server):
        server.attach(coordinator=_fake_coordinator())
        status, content_type, body = _get(
            server.url("/metrics?scope=fleet")
        )
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        samples = parse_prometheus(body)
        assert samples['stream_events_total{shard="0"}'] == 3.0
        assert samples['stream_events_total{shard="1"}'] == 4.0

    def test_scope_process_is_the_default(self, server, registry):
        # (Compare one inert sample: the scrape counter itself moves
        # between the two requests.)
        registry.counter("x_total", "X.").inc()
        explicit = parse_prometheus(
            _get(server.url("/metrics?scope=process"))[2]
        )
        default = parse_prometheus(_get(server.url("/metrics"))[2])
        assert explicit["x_total"] == default["x_total"] == 1.0

    def test_bogus_scope_rejected(self, server):
        status, _, body = _get(server.url("/metrics?scope=galaxy"))
        assert status == 400
        assert "scope" in json.loads(body)["error"]

    def test_fleet_scope_requires_prometheus_format(self, server):
        server.attach(coordinator=_fake_coordinator())
        status, _, _ = _get(
            server.url("/metrics?scope=fleet&format=openmetrics")
        )
        assert status == 400

    def test_varz_reports_fleet_facts(self, server):
        server.attach(coordinator=_fake_coordinator())
        status, _, body = _get(server.url("/varz"))
        assert status == 200
        assert json.loads(body)["fleet"] == {
            "workers": 2, "num_shards": 2, "salt": "s3",
            "restarts": 1, "started": True, "finished": False,
        }

    def test_varz_has_no_fleet_block_without_coordinator(self, server):
        assert "fleet" not in json.loads(_get(server.url("/varz"))[2])


class TestTraceRoutes:
    @staticmethod
    def _traced_registry():
        registry = MetricsRegistry()
        tracer = Tracer()
        with use_trace(TraceContext(trace_id="cafe01")):
            with tracer.span("stream.ingest", shard="0"):
                with tracer.span("profile.session"):
                    pass
        return registry, tracer

    def test_trace_index_empty_without_spans(self, server):
        status, _, body = _get(server.url("/trace"))
        assert status == 200
        assert json.loads(body) == {"count": 0, "traces": []}

    def test_trace_index_lists_completed_traces(self):
        registry, tracer = self._traced_registry()
        with AdminServer(registry, tracer=tracer) as admin:
            status, _, body = _get(admin.url("/trace"))
        assert status == 200
        index = json.loads(body)
        assert index["count"] == 1
        (entry,) = index["traces"]
        assert entry["trace_id"] == "cafe01"
        assert entry["spans"] == 2

    def test_trace_by_id_reassembles_the_tree(self):
        registry, tracer = self._traced_registry()
        with AdminServer(registry, tracer=tracer) as admin:
            status, _, body = _get(admin.url("/trace/cafe01"))
        assert status == 200
        tree = json.loads(body)
        assert tree["trace_id"] == "cafe01"
        assert tree["span_count"] == 2
        (root,) = tree["roots"]
        assert root["name"] == "stream.ingest"
        assert root["tags"]["shard"] == "0"
        (child,) = root["children"]
        assert child["name"] == "profile.session"
        assert child["parent_span_id"] == root["span_id"]

    def test_unknown_trace_id_is_404(self):
        registry, tracer = self._traced_registry()
        with AdminServer(registry, tracer=tracer) as admin:
            status, _, body = _get(admin.url("/trace/feedface"))
        assert status == 404
        assert "feedface" in json.loads(body)["error"]

    def test_malformed_trace_id_rejected(self, server):
        status, _, _ = _get(server.url("/trace/a/b"))
        assert status == 400

    def test_trace_ids_never_explode_the_route_label(self, registry):
        # Every /trace/<id> fetch lands on one bounded "/trace" label.
        with AdminServer(registry) as admin:
            for trace_id in ("x1", "x2", "x3"):
                _get(admin.url(f"/trace/{trace_id}"))
        requests = registry.counter(
            "admin_requests_total", labelnames=("route", "status")
        )
        assert requests.value_of(route="/trace", status="404") == 3


class TestAdversarialParams:
    """Garbage in must mean 4xx out — a scrape can never 500 a route."""

    ROUTES = (
        "/metrics", "/healthz", "/readyz", "/varz", "/generations",
        "/drift/latest", "/slo", "/alerts", "/profile", "/flight",
        "/shards", "/trace",
    )

    def _assert_client_error(self, server, target):
        status, _, body = _get(server.url(target))
        assert 400 <= status < 500, (
            f"{target} returned {status}: {body[:200]}"
        )

    def test_unknown_params_rejected_on_every_route(self, server):
        for route in self.ROUTES:
            self._assert_client_error(server, f"{route}?bogus=1")

    def test_oversized_query_rejected_on_every_route(self, server):
        huge = "x" * (MAX_QUERY_LENGTH + 1)
        for route in self.ROUTES:
            self._assert_client_error(server, f"{route}?{huge}")

    def test_garbage_values_are_4xx_never_500(self, server):
        for target in (
            "/metrics?format=yaml",
            "/metrics?format=prometheus&format=prometheus",
            "/profile?seconds=abc",
            "/profile?seconds=-1",
            "/profile?seconds=nan",
            "/profile?seconds=1e308",
            "/profile?seconds=0.2&hz=999999",
            "/profile?hz=100",               # hz without seconds
            "/profile?seconds=0.2&format=pprof",
            "/flight?dump=yes",
            "/flight?dump=1&dump=1",
            "/readyz?verbose=1",
            "/slo?window=fast",
        ):
            self._assert_client_error(server, target)

    def test_server_still_healthy_after_abuse(self, server):
        for route in self.ROUTES:
            _get(server.url(f"{route}?bogus=1"))
        status, _, _ = _get(server.url("/healthz"))
        assert status == 200


class TestConcurrentIntrospection:
    def test_profile_metrics_slo_race_live_ingest(self, registry):
        """/profile bursts, /metrics and /slo scrapes race live ingest.

        Every response must be well-formed with a 2xx status — the
        introspection plane reads shared state while the stream mutates
        it, and the locking has to hold under that pressure.
        """
        stream = StreamingProfiler(StreamingConfig(), registry=registry)
        engine = SLOEngine(registry)
        profiler = SamplingProfiler(hz=100.0, registry=registry)
        profiler.start()
        try:
            with AdminServer(registry) as admin:
                admin.attach(slo_engine=engine, profiler=profiler)
                failures = []

                def hit(path, checker):
                    try:
                        for _ in range(10):
                            status, _, body = _get(admin.url(path))
                            assert status == 200, f"{path}: {status}"
                            checker(body)
                    except Exception as error:
                        failures.append(
                            f"{path}: {type(error).__name__}: {error}"
                        )

                threads = [
                    threading.Thread(
                        target=hit,
                        args=("/metrics", parse_prometheus),
                    ),
                    threading.Thread(
                        target=hit,
                        args=(
                            "/slo",
                            lambda b: json.loads(b)["objectives"],
                        ),
                    ),
                    threading.Thread(
                        target=hit,
                        args=(
                            "/profile",
                            lambda b: json.loads(b)["format"],
                        ),
                    ),
                    threading.Thread(
                        target=hit,
                        args=(
                            "/profile?seconds=0.1&hz=50",
                            lambda b: json.loads(b)["samples"],
                        ),
                    ),
                ]
                for thread in threads:
                    thread.start()
                for step in range(400):
                    stream.ingest(
                        _event(f"h{step % 20}.com", float(step),
                               client=f"10.0.0.{step % 4}")
                    )
                for thread in threads:
                    thread.join(timeout=60)
                assert not failures, failures
        finally:
            profiler.stop()

    def test_flight_dump_races_concurrent_writes(self, registry, tmp_path):
        """Admin-triggered dumps while writers hammer the ring.

        Each dump response must be 200 and the file it names must parse
        as coherent JSON — the dump snapshots the ring under its lock.
        """
        flight = FlightRecorder(capacity=64, registry=registry)
        dump_path = tmp_path / "flight.json"
        stop = threading.Event()

        def writer(worker):
            i = 0
            while not stop.is_set():
                flight.record("flow", f"w{worker}-{i}", worker=worker)
                i += 1

        writers = [
            threading.Thread(target=writer, args=(w,), daemon=True)
            for w in range(3)
        ]
        for thread in writers:
            thread.start()
        try:
            with AdminServer(registry) as admin:
                admin.attach(flight=flight, flight_path=dump_path)
                for _ in range(10):
                    status, _, body = _get(admin.url("/flight?dump=1"))
                    assert status == 200
                    assert json.loads(body)["dump_path"] == str(dump_path)
                    saved = json.loads(dump_path.read_text())
                    assert len(saved["events"]) <= 64
                    sequences = [e["seq"] for e in saved["events"]]
                    assert sequences == sorted(sequences)
        finally:
            stop.set()
            for thread in writers:
                thread.join()


class TestLifecycle:
    def test_double_start_rejected(self, registry):
        with AdminServer(registry) as admin:
            with pytest.raises(RuntimeError):
                admin.start()

    def test_stop_is_idempotent(self, registry):
        admin = AdminServer(registry).start()
        admin.stop()
        admin.stop()

    def test_request_counter_by_route(self, server, registry):
        _get(server.url("/metrics"))
        _get(server.url("/healthz"))
        _get(server.url("/healthz"))
        requests = registry.counter(
            "admin_requests_total", labelnames=("route", "status")
        )
        assert requests.value_of(route="/healthz", status="200") == 2
        assert requests.value_of(route="/metrics", status="200") >= 1
