"""Tests for the admin HTTP endpoint (the live operations plane)."""

import json
import re
import threading
import urllib.error
import urllib.request
from types import SimpleNamespace

import pytest

from repro.core.streaming import StreamingConfig, StreamingProfiler
from repro.netobs.flows import HostnameEvent
from repro.obs.metrics import MetricsRegistry
from repro.obs.server import PROMETHEUS_CONTENT_TYPE, AdminServer

_PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? "
    r"(?:[0-9.eE+-]+|\+Inf|-Inf|NaN)$"
)


def parse_prometheus(text):
    """name{labels} -> float for every sample; asserts each line parses."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        assert _PROM_LINE.match(line), f"unparseable exposition line: {line!r}"
        key, value = line.rsplit(" ", 1)
        samples[key] = float(value)
    return samples


def _get(url):
    """(status, content_type, body) without raising on 4xx/5xx."""
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return (
                response.status,
                response.headers.get("Content-Type"),
                response.read().decode(),
            )
    except urllib.error.HTTPError as error:
        return error.code, error.headers.get("Content-Type"), (
            error.read().decode()
        )


def _fake_supervisor(**overrides):
    state = dict(
        validating=False, is_degraded=False, consecutive_failures=0,
        successes=1, failed_days=[], last_success_day=0,
        last_drift_report=None,
    )
    state.update(overrides)
    return SimpleNamespace(**state)


def _event(host, t, client="10.0.0.1"):
    return HostnameEvent(
        client_ip=client, timestamp=t, hostname=host, source="tls-sni"
    )


@pytest.fixture()
def registry():
    return MetricsRegistry()


@pytest.fixture()
def server(registry):
    with AdminServer(registry, run_id="test-run") as admin:
        yield admin


class TestRoutes:
    def test_metrics_serves_prometheus(self, server, registry):
        registry.counter("events_total", "Events.").inc(3)
        status, content_type, body = _get(server.url("/metrics"))
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        assert parse_prometheus(body)["events_total"] == 3.0

    def test_healthz_is_always_ok(self, server):
        status, _, body = _get(server.url("/healthz"))
        assert status == 200
        assert json.loads(body) == {"ok": True}

    def test_unknown_route_is_404_with_bounded_label(self, server, registry):
        status, _, body = _get(server.url("/secrets"))
        assert status == 404
        assert "unknown route" in json.loads(body)["error"]
        requests = registry.counter(
            "admin_requests_total", labelnames=("route", "status")
        )
        assert requests.value_of(route="<other>", status="404") == 1

    def test_trailing_slash_is_normalised(self, server):
        status, _, _ = _get(server.url("/healthz/"))
        assert status == 200

    def test_generations_404_without_store(self, server):
        status, _, body = _get(server.url("/generations"))
        assert status == 404
        assert "store" in json.loads(body)["error"]

    def test_drift_latest_404_without_reports(self, server):
        status, _, _ = _get(server.url("/drift/latest"))
        assert status == 404

    def test_drift_latest_serves_supervisor_report(self, server):
        report = SimpleNamespace(to_dict=lambda: {"ok": False, "breaches": []})
        server.attach(supervisor=_fake_supervisor(last_drift_report=report))
        status, _, body = _get(server.url("/drift/latest"))
        assert status == 200
        assert json.loads(body)["ok"] is False

    def test_broken_route_returns_500_and_keeps_serving(self, server):
        class _Exploding:
            @property
            def validating(self):
                raise RuntimeError("boom")

            is_degraded = False
            consecutive_failures = 0

        server.attach(supervisor=_Exploding())
        status, _, body = _get(server.url("/readyz"))
        assert status == 500
        assert "boom" in json.loads(body)["error"]
        status, _, _ = _get(server.url("/healthz"))   # still alive
        assert status == 200

    def test_ephemeral_port_is_resolved(self, registry):
        admin = AdminServer(registry)
        assert admin.port == 0
        with admin:
            assert admin.port != 0


class TestReadyz:
    def test_not_ready_without_a_model(self, server):
        server.attach(stream=StreamingProfiler(StreamingConfig()))
        status, _, body = _get(server.url("/readyz"))
        assert status == 503
        payload = json.loads(body)
        assert payload["ready"] is False
        assert payload["model_loaded"] is False

    def test_ready_once_a_model_serves(self, server):
        stream = StreamingProfiler(StreamingConfig())
        stream.swap_model(SimpleNamespace(), generation="g000007")
        server.attach(stream=stream)
        status, _, body = _get(server.url("/readyz"))
        assert status == 200
        payload = json.loads(body)
        assert payload["ready"] is True
        assert payload["serving_generation"] == "g000007"

    def test_validation_window_flips_readiness(self, server):
        stream = StreamingProfiler(StreamingConfig())
        stream.swap_model(SimpleNamespace())
        supervisor = _fake_supervisor(validating=True)
        server.attach(stream=stream, supervisor=supervisor)
        status, _, body = _get(server.url("/readyz"))
        assert status == 503
        assert json.loads(body)["validating"] is True
        # ... and recovers the moment the check window closes.
        supervisor.validating = False
        status, _, body = _get(server.url("/readyz"))
        assert status == 200
        assert json.loads(body)["validating"] is False

    def test_degraded_supervisor_stays_ready(self, server):
        # Serving stale is the designed failure mode, not an outage:
        # degradation is reported in the body but never flips readiness.
        stream = StreamingProfiler(StreamingConfig())
        stream.swap_model(SimpleNamespace())
        server.attach(
            stream=stream,
            supervisor=_fake_supervisor(
                is_degraded=True, consecutive_failures=2
            ),
        )
        status, _, body = _get(server.url("/readyz"))
        assert status == 200
        payload = json.loads(body)
        assert payload["degraded"] is True
        assert payload["consecutive_failures"] == 2

    def test_thunk_attachment_resolves_late(self, server):
        holder = {"supervisor": None}
        stream = StreamingProfiler(StreamingConfig())
        stream.swap_model(SimpleNamespace())
        server.attach(
            stream=stream, supervisor=lambda: holder["supervisor"]
        )
        status, _, _ = _get(server.url("/readyz"))
        assert status == 200
        holder["supervisor"] = _fake_supervisor(validating=True)
        status, _, _ = _get(server.url("/readyz"))
        assert status == 503


class TestVarz:
    def test_reports_process_and_stream_state(self, server, tmp_path):
        stream = StreamingProfiler(StreamingConfig())
        stream.swap_model(
            SimpleNamespace(index_backend="exact"), generation="g000001"
        )
        stream.ingest(_event("a.com", 0.0))
        stream.checkpoint(tmp_path / "state.json")
        server.attach(stream=stream, supervisor=_fake_supervisor())
        status, _, body = _get(server.url("/varz"))
        assert status == 200
        payload = json.loads(body)
        assert payload["run_id"] == "test-run"
        assert payload["uptime_seconds"] >= 0
        assert payload["serving_generation"] == "g000001"
        assert payload["index_backend"] == "exact"
        assert payload["model_loaded"] is True
        assert payload["stream"]["events_seen"] == 1
        assert payload["stream"]["model_swaps"] == 1
        assert payload["stream"]["checkpoint_age_seconds"] >= 0
        assert payload["supervisor"]["successes"] == 1
        assert payload["supervisor"]["degraded"] is False

    def test_minimal_varz_without_attachments(self, server):
        status, _, body = _get(server.url("/varz"))
        assert status == 200
        payload = json.loads(body)
        assert payload["serving_generation"] is None
        assert payload["model_loaded"] is False
        assert "stream" not in payload
        assert "supervisor" not in payload


class TestConcurrentScrapes:
    def test_metrics_parse_and_stay_monotonic_during_ingest(self, registry):
        """Hammer /metrics from threads while the stream ingests.

        Every scrape must be a parseable exposition and the event counter
        must never go backwards — the registry's locking is what makes a
        scrape mid-ingest safe.
        """
        stream = StreamingProfiler(StreamingConfig(), registry=registry)
        with AdminServer(registry) as admin:
            url = admin.url("/metrics")
            failures = []
            seen = {i: [] for i in range(4)}

            def scrape(worker):
                try:
                    for _ in range(25):
                        status, _, body = _get(url)
                        assert status == 200
                        samples = parse_prometheus(body)
                        seen[worker].append(
                            samples.get("stream_events_total", 0.0)
                        )
                except Exception as error:   # surfaces in the main thread
                    failures.append(f"{type(error).__name__}: {error}")

            threads = [
                threading.Thread(target=scrape, args=(i,)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for step in range(600):
                stream.ingest(
                    _event(f"host{step % 40}.com", float(step),
                           client=f"10.0.0.{step % 8}")
                )
            for thread in threads:
                thread.join(timeout=30)
            assert not failures, failures
            for worker, values in seen.items():
                assert len(values) == 25
                assert values == sorted(values), (
                    f"counter went backwards in worker {worker}"
                )
            assert stream.events_seen == 600


class TestLifecycle:
    def test_double_start_rejected(self, registry):
        with AdminServer(registry) as admin:
            with pytest.raises(RuntimeError):
                admin.start()

    def test_stop_is_idempotent(self, registry):
        admin = AdminServer(registry).start()
        admin.stop()
        admin.stop()

    def test_request_counter_by_route(self, server, registry):
        _get(server.url("/metrics"))
        _get(server.url("/healthz"))
        _get(server.url("/healthz"))
        requests = registry.counter(
            "admin_requests_total", labelnames=("route", "status")
        )
        assert requests.value_of(route="/healthz", status="200") == 2
        assert requests.value_of(route="/metrics", status="200") >= 1
