"""Tests for the periodic metrics-snapshot flusher."""

import json
import time

import pytest

from repro.obs.flush import MetricsFlusher
from repro.obs.metrics import MetricsRegistry


class TestMetricsFlusher:
    def test_interval_validated(self, tmp_path):
        with pytest.raises(ValueError):
            MetricsFlusher(MetricsRegistry(), tmp_path / "m.prom", 0)

    def test_flush_now_writes_prometheus_text(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("events_total", "Events.").inc(7)
        flusher = MetricsFlusher(registry, tmp_path / "m.prom", 60)
        flusher.flush_now()
        text = (tmp_path / "m.prom").read_text()
        assert "events_total 7" in text
        assert registry.counter("metrics_flushes_total").value == 1

    def test_json_suffix_selects_json_snapshot(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("events_total", "Events.").inc(2)
        MetricsFlusher(registry, tmp_path / "m.json", 60).flush_now()
        snapshot = json.loads((tmp_path / "m.json").read_text())
        assert snapshot["format"] == "repro-metrics-v1"

    def test_background_thread_rewrites_the_snapshot(self, tmp_path):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", "Events.")
        path = tmp_path / "m.prom"
        with MetricsFlusher(registry, path, 0.05):
            counter.inc(1)
            deadline = time.time() + 5
            while time.time() < deadline:
                if path.is_file() and "events_total 1" in path.read_text():
                    break
                time.sleep(0.02)
            else:
                pytest.fail("flusher never wrote the snapshot")
        # stop() performed a final flush; file reflects the final state
        assert "events_total 1" in path.read_text()
        assert registry.counter("metrics_flushes_total").value >= 2

    def test_stop_without_final_flush(self, tmp_path):
        registry = MetricsRegistry()
        flusher = MetricsFlusher(registry, tmp_path / "m.prom", 60).start()
        flusher.stop(final_flush=False)
        assert not (tmp_path / "m.prom").exists()

    def test_double_start_rejected(self, tmp_path):
        flusher = MetricsFlusher(MetricsRegistry(), tmp_path / "m.prom", 60)
        flusher.start()
        try:
            with pytest.raises(RuntimeError):
                flusher.start()
        finally:
            flusher.stop(final_flush=False)
