"""End-to-end introspection: one trace from packet to profile.

The acceptance contract for the tracing plane: with head sampling on,
an exemplar trace id exported by the ``profile_latency_seconds``
histogram must resolve — via :meth:`Tracer.trace_spans` — to a complete
trace tree covering ingest, streaming, profiling and the index search.
"""

from collections import Counter

import numpy as np

from repro.core.embeddings import HostnameEmbeddings
from repro.core.profiler import SessionProfiler
from repro.core.streaming import StreamingConfig, StreamingProfiler
from repro.core.vocabulary import Vocabulary
from repro.netobs.capture import TrafficSynthesizer
from repro.netobs.observer import NetworkObserver, ObserverConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import HeadSampler, Tracer
from repro.traffic.events import HostKind, Request


def _toy_profiler(registry, tracer):
    vocab = Vocabulary(
        Counter({"t1.com": 4, "t2.com": 3, "s1.com": 2, "s2.com": 1})
    )
    vectors = np.array(
        [[1.0, 0.05], [0.95, 0.1], [0.05, 1.0], [0.1, 0.95]]
    )
    labelled = {
        "t1.com": np.array([1.0, 0.0, 0.0]),
        "s1.com": np.array([0.0, 1.0, 0.0]),
    }
    return SessionProfiler(
        HostnameEmbeddings(vectors, vocab), labelled,
        registry=registry, tracer=tracer,
    )


def _requests(hosts, *, step_seconds=30.0, repeats=4):
    requests = []
    t = 0.0
    for _ in range(repeats):
        for host in hosts:
            requests.append(
                Request(
                    user_id=0, timestamp=t, hostname=host,
                    kind=HostKind.SITE, site_domain=host,
                )
            )
            t += step_seconds
    return requests


class TestPacketToProfileTrace:
    def test_exemplar_resolves_to_full_trace_tree(self):
        registry = MetricsRegistry()
        tracer = Tracer()
        sampler = HeadSampler(1.0)

        observer = NetworkObserver(
            ObserverConfig(vantage="sni"), registry=registry,
            tracer=tracer, trace_sampler=sampler,
        )
        stream = StreamingProfiler(
            StreamingConfig(
                session_minutes=20.0, report_interval_minutes=1.0
            ),
            registry=registry, tracer=tracer, trace_sampler=sampler,
        )
        stream.swap_model(_toy_profiler(registry, tracer))

        # Packets on the wire -> observer -> stream; 30 s apart, so the
        # 1-minute report grid fires several profile ticks.
        synth = TrafficSynthesizer(seed=7)
        packets = synth.synthesize(
            _requests(("t1.com", "t2.com", "s1.com", "s2.com"))
        )
        emissions = []
        for packet in packets:
            event = observer.ingest(packet)
            if event is None:
                continue
            assert event.trace is not None    # rate 1.0: always sampled
            emission = stream.ingest(event)
            if emission is not None:
                emissions.append(emission)
        assert emissions, "no profile tick fired; widen the timeline"

        # The latency histogram exported an exemplar trace id.
        latency = next(
            f for f in registry.families()
            if f.name == "profile_latency_seconds"
        )
        exemplars = latency.exemplars()
        assert exemplars, "profile_latency_seconds retained no exemplar"
        trace_id, _, _ = next(iter(exemplars.values()))

        # ... and that id resolves to the complete request tree.
        spans = tracer.trace_spans(trace_id)
        names = [span.name for span in spans]
        for expected in (
            "netobs.ingest", "stream.ingest",
            "profile.session", "index.search",
        ):
            assert expected in names, f"{expected} missing from {names}"

        # Parentage: one connected tree rooted at the packet ingest.
        by_id = {span.span_id: span for span in spans}
        ingest = next(s for s in spans if s.name == "netobs.ingest")
        assert ingest.parent_span_id is None
        stream_span = next(s for s in spans if s.name == "stream.ingest")
        assert stream_span.parent_span_id == ingest.span_id
        search = next(s for s in spans if s.name == "index.search")
        # Walking up from the index search reaches the ingest root
        # through the profiling and streaming layers.
        node, lineage = search, []
        while node.parent_span_id is not None:
            node = by_id[node.parent_span_id]
            lineage.append(node.name)
        assert node is ingest
        assert "profile.session" in lineage
        assert "stream.ingest" in lineage

        # The exemplar also rides out in the OpenMetrics exposition.
        exposition = registry.to_openmetrics()
        assert f'trace_id="{trace_id}"' in exposition

    def test_unsampled_run_records_no_spans(self):
        registry = MetricsRegistry()
        tracer = Tracer()
        sampler = HeadSampler(0.0)
        observer = NetworkObserver(
            ObserverConfig(vantage="sni"), registry=registry,
            tracer=tracer, trace_sampler=sampler,
        )
        stream = StreamingProfiler(
            StreamingConfig(report_interval_minutes=1.0),
            registry=registry, tracer=tracer, trace_sampler=sampler,
        )
        stream.swap_model(_toy_profiler(registry, tracer))
        synth = TrafficSynthesizer(seed=7)
        for packet in synth.synthesize(_requests(("t1.com", "t2.com"))):
            event = observer.ingest(packet)
            if event is not None:
                assert event.trace is None
                stream.ingest(event)
        assert tracer.spans() == []
        latency = next(
            f for f in registry.families()
            if f.name == "profile_latency_seconds"
        )
        assert latency.exemplars() == {}
