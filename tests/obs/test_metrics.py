"""Tests for the metrics registry: values, export formats, concurrency."""

import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    LATENCY_BUCKETS_FAST,
    LATENCY_BUCKETS_SLOW,
    NULL_REGISTRY,
    SIZE_BUCKETS,
    MetricError,
    MetricsRegistry,
    NullRegistry,
    validate_buckets,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = MetricsRegistry().counter("x_total")
        assert counter.value == 0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_is_rejected(self):
        counter = MetricsRegistry().counter("x_total")
        with pytest.raises(MetricError):
            counter.inc(-1)

    def test_reset_sets_absolute_value(self):
        counter = MetricsRegistry().counter("x_total")
        counter.inc(10)
        counter.reset(3)
        assert counter.value == 3
        with pytest.raises(MetricError):
            counter.reset(-1)

    def test_labelled_children_are_independent(self):
        family = MetricsRegistry().counter(
            "events_total", labelnames=("source",)
        )
        family.labels(source="dns").inc(2)
        family.labels(source="sni").inc(5)
        assert family.value_of(source="dns") == 2
        assert family.value_of(source="sni") == 5
        assert family.total() == 7

    def test_wrong_label_set_is_rejected(self):
        family = MetricsRegistry().counter(
            "events_total", labelnames=("source",)
        )
        with pytest.raises(MetricError):
            family.labels(kind="dns")
        with pytest.raises(MetricError):
            family.inc()   # labelled family has no sole child

    def test_concurrent_increments_lose_nothing(self):
        # The whole point of the per-child lock: 8 threads hammering the
        # same counter (and creating labelled siblings) stay exact.
        registry = MetricsRegistry()
        plain = registry.counter("plain_total")
        family = registry.counter("fanout_total", labelnames=("worker",))
        per_thread, threads = 5000, 8

        def work(worker: int) -> None:
            for _ in range(per_thread):
                plain.inc()
                family.labels(worker=str(worker)).inc()

        pool = [
            threading.Thread(target=work, args=(i,)) for i in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert plain.value == per_thread * threads
        assert family.total() == per_thread * threads
        assert all(
            child.value == per_thread for _, child in family.samples()
        )


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(12)
        assert gauge.value == 3


class TestHistogram:
    def test_boundary_value_lands_in_its_bucket(self):
        # Prometheus le semantics: value == upper bound counts in that
        # bucket, not the next.
        hist = MetricsRegistry().histogram("lat_seconds", buckets=(0.1, 1.0))
        hist.observe(0.1)
        cumulative = dict(hist._sole_child().cumulative_buckets())
        assert cumulative[0.1] == 1
        assert cumulative[1.0] == 1
        assert cumulative[float("inf")] == 1

    def test_overflow_goes_to_inf_bucket(self):
        hist = MetricsRegistry().histogram("lat_seconds", buckets=(0.1, 1.0))
        hist.observe(99.0)
        cumulative = dict(hist._sole_child().cumulative_buckets())
        assert cumulative[0.1] == 0
        assert cumulative[1.0] == 0
        assert cumulative[float("inf")] == 1
        assert hist.count == 1
        assert hist.sum == 99.0

    def test_explicit_inf_bucket_is_stripped(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "lat_seconds", buckets=(0.5, float("inf"))
        )
        assert hist.buckets == (0.5,)

    def test_empty_histogram_exports_zero_series(self):
        registry = MetricsRegistry()
        registry.histogram("lat_seconds", "latency", buckets=(0.5,))
        text = registry.to_prometheus()
        assert 'lat_seconds_bucket{le="0.5"} 0' in text
        assert 'lat_seconds_bucket{le="+Inf"} 0' in text
        assert "lat_seconds_sum 0" in text
        assert "lat_seconds_count 0" in text

    def test_time_context_manager_observes(self):
        hist = MetricsRegistry().histogram("op_seconds")
        with hist.time():
            pass
        assert hist.count == 1
        assert hist.sum >= 0


class TestRegistration:
    def test_re_registration_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "help")
        again = registry.counter("x_total", "other help")
        assert first is again

    def test_conflicting_type_is_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(MetricError):
            registry.gauge("x_total")

    def test_conflicting_labelnames_are_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labelnames=("a",))
        with pytest.raises(MetricError):
            registry.counter("x_total", labelnames=("b",))

    def test_conflicting_buckets_are_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("lat_seconds", buckets=(0.5,))
        with pytest.raises(MetricError):
            registry.histogram("lat_seconds", buckets=(0.25,))

    def test_invalid_names_are_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.counter("bad name")
        with pytest.raises(MetricError):
            registry.counter("ok_total", labelnames=("bad-label",))


class TestExport:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("events_total", "Events.", ("source",)).labels(
            source="dns"
        ).inc(3)
        registry.gauge("depth", "Queue depth.").set(2)
        registry.histogram("lat_seconds", buckets=(0.1, 1.0)).observe(0.05)
        return registry

    def test_prometheus_text_format(self):
        text = self._populated().to_prometheus()
        assert "# HELP events_total Events." in text
        assert "# TYPE events_total counter" in text
        assert 'events_total{source="dns"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 2" in text
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labelnames=("p",)).labels(
            p='a"b\\c\nd'
        ).inc()
        text = registry.to_prometheus()
        assert r'x_total{p="a\"b\\c\nd"} 1' in text

    def test_json_snapshot_round_trips(self):
        snapshot = json.loads(self._populated().to_json())
        assert snapshot["format"] == "repro-metrics-v1"
        names = {m["name"] for m in snapshot["metrics"]}
        assert names == {"events_total", "depth", "lat_seconds"}

    def test_flatten_and_diff(self):
        registry = self._populated()
        before = registry.snapshot()
        registry.counter(
            "events_total", labelnames=("source",)
        ).labels(source="dns").inc(4)
        deltas = registry.diff(before)
        assert deltas == {'events_total{source="dns"}': 4.0}
        flat = MetricsRegistry.flatten(registry.snapshot())
        assert flat['events_total{source="dns"}'] == 7.0
        assert flat["lat_seconds_count"] == 1.0
        assert flat['lat_seconds_bucket{le="0.1"}'] == 1.0


class TestExpositionEdgeCases:
    def test_non_finite_values_use_prometheus_spellings(self):
        registry = MetricsRegistry()
        registry.gauge("pos").set(float("inf"))
        registry.gauge("neg").set(float("-inf"))
        registry.gauge("nan").set(float("nan"))
        text = registry.to_prometheus()
        # `repr()` spellings (inf/-inf/nan) are not valid exposition
        # values; scrapers require +Inf / -Inf / NaN.
        assert "pos +Inf" in text
        assert "neg -Inf" in text
        assert "nan NaN" in text
        assert "inf\n" not in text.replace("+Inf", "").replace("-Inf", "")

    def test_hostname_label_with_quote_and_newline(self):
        # Regression: a hostile SNI used as a label value must not be able
        # to break the exposition format (or smuggle in extra samples).
        registry = MetricsRegistry()
        hostname = 'evil"host\nname.example\\'
        registry.counter(
            "stream_quarantined_hosts_total", labelnames=("hostname",)
        ).labels(hostname=hostname).inc()
        text = registry.to_prometheus()
        line = next(
            sample for sample in text.splitlines()
            if sample.startswith("stream_quarantined_hosts_total{")
        )
        assert line == (
            'stream_quarantined_hosts_total'
            '{hostname="evil\\"host\\nname.example\\\\"} 1'
        )
        # every physical line still parses as comment or sample
        for physical in text.splitlines():
            assert physical.startswith("#") or " " in physical


class TestNullRegistry:
    def test_everything_is_a_no_op(self):
        registry = NullRegistry()
        assert registry.null
        counter = registry.counter("x_total")
        counter.inc(5)
        assert counter.value == 0
        assert counter.labels(a="b") is counter
        hist = registry.histogram("lat_seconds")
        with hist.time():
            pass
        assert hist.count == 0
        assert registry.families() == []
        assert registry.to_prometheus().strip() == ""
        assert registry.snapshot()["metrics"] == []

    def test_shared_singleton_flags(self):
        assert NULL_REGISTRY.null
        assert not MetricsRegistry().null

class TestBucketValidation:
    def test_presets_are_valid_and_sorted(self):
        for preset in (
            LATENCY_BUCKETS_FAST, LATENCY_BUCKETS_SLOW, SIZE_BUCKETS
        ):
            assert validate_buckets(preset) == preset
            assert list(preset) == sorted(preset)

    def test_empty_layout_rejected(self):
        with pytest.raises(MetricError, match="at least one"):
            validate_buckets(())

    def test_only_inf_rejected(self):
        # A lone +Inf is stripped (implicit overflow), leaving nothing.
        with pytest.raises(MetricError, match="at least one"):
            validate_buckets((float("inf"),))

    def test_unsorted_rejected_not_silently_sorted(self):
        with pytest.raises(MetricError, match="ascending"):
            validate_buckets((0.1, 0.05, 0.5))

    def test_duplicate_rejected(self):
        with pytest.raises(MetricError, match="duplicate"):
            validate_buckets((0.1, 0.1, 0.5))

    def test_non_finite_rejected(self):
        with pytest.raises(MetricError, match="finite"):
            validate_buckets((0.1, float("nan")))
        with pytest.raises(MetricError, match="finite"):
            validate_buckets((float("-inf"), 0.1))

    def test_non_numeric_rejected(self):
        with pytest.raises(MetricError, match="numbers"):
            validate_buckets(("fast", "slow"))

    def test_histogram_construction_validates(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.histogram("h_seconds", "H.", buckets=(2.0, 1.0))


class TestExemplars:
    def test_bucket_retains_latest_exemplar(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "lat_seconds", "L.", buckets=(0.1, 1.0)
        )
        histogram.observe(0.05, exemplar="aaaa")
        histogram.observe(0.07, exemplar="bbbb")   # same bucket: replaces
        histogram.observe(0.5)                     # no exemplar: no change
        histogram.observe(5.0, exemplar="cccc")    # +Inf bucket
        exemplars = histogram.exemplars()
        assert exemplars[0.1][0] == "bbbb"
        assert exemplars[float("inf")][0] == "cccc"
        assert 1.0 not in exemplars

    def test_snapshot_carries_exemplars(self):
        registry = MetricsRegistry()
        registry.histogram(
            "lat_seconds", "L.", buckets=(0.1, 1.0)
        ).observe(0.05, exemplar="deadbeef")
        (family,) = json.loads(registry.to_json())["metrics"]
        exemplars = family["series"][0]["exemplars"]
        assert exemplars["0.1"]["trace_id"] == "deadbeef"
        assert exemplars["0.1"]["value"] == 0.05

    def test_default_exposition_has_no_exemplar_syntax(self):
        # The CI ops job parses /metrics with a strict 0.0.4 regex; the
        # exemplar suffix only appears in the opt-in OpenMetrics shape.
        registry = MetricsRegistry()
        registry.histogram(
            "lat_seconds", "L.", buckets=(0.1,)
        ).observe(0.05, exemplar="deadbeef")
        assert "deadbeef" not in registry.to_prometheus()
        assert "# {" not in registry.to_prometheus()

    def test_openmetrics_exposition_carries_exemplars_and_eof(self):
        registry = MetricsRegistry()
        registry.histogram(
            "lat_seconds", "L.", buckets=(0.1,)
        ).observe(0.05, exemplar="deadbeef")
        text = registry.to_openmetrics()
        assert '# {trace_id="deadbeef"} 0.05' in text
        assert text.endswith("# EOF\n")

    def test_null_registry_swallows_exemplars(self):
        NULL_REGISTRY.histogram("h", "H.").observe(0.1, exemplar="x")
        assert NULL_REGISTRY.histogram("h", "H.").exemplars() == {}


class TestMergeSnapshots:
    """Fleet-level aggregation of per-worker registry snapshots."""

    @staticmethod
    def _worker_registry(events, latency):
        registry = MetricsRegistry()
        registry.counter("stream_events_total", "E.").inc(events)
        registry.gauge("stream_active_clients", "C.").set(events / 2)
        registry.histogram(
            "emit_seconds", "L.", buckets=(0.1, 1.0)
        ).observe(latency)
        registry.counter(
            "index_queries_total", "Q.", labelnames=("backend",)
        ).labels(backend="exact").inc(events * 3)
        return registry

    def test_counters_gauges_and_histograms_sum(self):
        a = self._worker_registry(10, 0.05)
        b = self._worker_registry(4, 0.5)
        merged = MetricsRegistry.merge_snapshots(
            [a.snapshot(), b.snapshot()]
        )
        flat = MetricsRegistry.flatten(merged)
        assert flat["stream_events_total"] == 14.0
        assert flat["stream_active_clients"] == 7.0
        assert flat["emit_seconds_count"] == 2.0
        assert flat['emit_seconds_bucket{le="0.1"}'] == 1.0
        assert flat['emit_seconds_bucket{le="+Inf"}'] == 2.0
        assert flat['index_queries_total{backend="exact"}'] == 42.0

    def test_merge_is_order_independent(self):
        a = self._worker_registry(10, 0.05).snapshot()
        b = self._worker_registry(4, 0.5).snapshot()
        assert MetricsRegistry.merge_snapshots(
            [a, b]
        ) == MetricsRegistry.merge_snapshots([b, a])

    def test_single_snapshot_round_trips(self):
        snapshot = self._worker_registry(5, 0.2).snapshot()
        merged = MetricsRegistry.merge_snapshots([snapshot])
        assert MetricsRegistry.flatten(merged) == (
            MetricsRegistry.flatten(snapshot)
        )

    def test_mismatched_bucket_layouts_rejected(self):
        a = MetricsRegistry()
        a.histogram("h_seconds", "H.", buckets=(0.1,)).observe(0.05)
        b = MetricsRegistry()
        b.histogram("h_seconds", "H.", buckets=(0.5,)).observe(0.05)
        with pytest.raises(MetricError):
            MetricsRegistry.merge_snapshots([a.snapshot(), b.snapshot()])

    def test_mismatched_types_rejected(self):
        a = MetricsRegistry()
        a.counter("thing_total", "T.").inc()
        b = MetricsRegistry()
        b.gauge("thing_total", "T.").set(1)
        with pytest.raises(MetricError):
            MetricsRegistry.merge_snapshots([a.snapshot(), b.snapshot()])

    def test_unknown_format_rejected(self):
        with pytest.raises(MetricError):
            MetricsRegistry.merge_snapshots([{"format": "bogus"}])

    def test_newest_exemplar_wins(self):
        a = MetricsRegistry()
        a.histogram("h_seconds", "H.", buckets=(1.0,)).observe(
            0.5, exemplar="older"
        )
        b = MetricsRegistry()
        b.histogram("h_seconds", "H.", buckets=(1.0,)).observe(
            0.5, exemplar="newer"
        )
        snap_a, snap_b = a.snapshot(), b.snapshot()
        # Force a deterministic timestamp ordering.
        snap_a["metrics"][0]["series"][0]["exemplars"]["1"][
            "timestamp"
        ] = 100.0
        snap_b["metrics"][0]["series"][0]["exemplars"]["1"][
            "timestamp"
        ] = 200.0
        merged = MetricsRegistry.merge_snapshots([snap_a, snap_b])
        exemplar = merged["metrics"][0]["series"][0]["exemplars"]["1"]
        assert exemplar["trace_id"] == "newer"

    def test_module_level_alias(self):
        from repro.obs import merge_snapshots

        snapshot = self._worker_registry(1, 0.1).snapshot()
        assert merge_snapshots([snapshot])["format"] == "repro-metrics-v1"


class TestMergeSnapshotsProperty:
    """Merging is exactly addition: N single-observation snapshots merge
    into the same view one registry holding all N observations reports."""

    _OBSERVATIONS = st.lists(
        st.tuples(
            st.sampled_from(("counter", "gauge", "histogram")),
            st.sampled_from(("alpha", "beta")),
            st.floats(
                min_value=0.0, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
        ),
        min_size=1, max_size=12,
    )

    @staticmethod
    def _apply(registry, kind, backend, amount):
        if kind == "counter":
            registry.counter(
                "merged_events_total", "E.", labelnames=("backend",)
            ).labels(backend=backend).inc(amount)
        elif kind == "gauge":
            registry.gauge(
                "merged_depth", "D.", labelnames=("backend",)
            ).labels(backend=backend).inc(amount)
        else:
            registry.histogram(
                "merged_seconds", "S.", buckets=(0.5, 100.0),
                labelnames=("backend",),
            ).labels(backend=backend).observe(amount)

    @given(observations=_OBSERVATIONS)
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_combined_registry(self, observations):
        combined = MetricsRegistry()
        singles = []
        for kind, backend, amount in observations:
            single = MetricsRegistry()
            self._apply(single, kind, backend, amount)
            self._apply(combined, kind, backend, amount)
            singles.append(single.snapshot())
        merged = MetricsRegistry.merge_snapshots(singles)
        # Same series keys, same values — bitwise, not approximately:
        # per series the merge adds the same floats in the same order
        # the combined registry did.
        assert MetricsRegistry.flatten(merged) == (
            MetricsRegistry.flatten(combined.snapshot())
        )
