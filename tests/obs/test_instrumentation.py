"""Pipeline instrumentation tests: registry-backed counters stay exact
across checkpoint/restore, and every stage reports through its registry."""

import pytest

from repro.core.skipgram import SkipGramConfig, SkipGramModel
from repro.core.streaming import StreamingProfiler
from repro.core.supervisor import RetrainSupervisor, SupervisorConfig
from repro.netobs.flows import HostnameEvent
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.utils.timeutils import minutes


def _event(host, t, client="10.0.0.1"):
    return HostnameEvent(
        client_ip=client, timestamp=t, hostname=host, source="tls-sni"
    )


class TestStreamingCheckpointMetrics:
    """The drift regression: counters and checkpoints share one source of
    truth, so checkpoint -> restore -> snapshot round-trips exactly."""

    def _stream_with_traffic(self) -> StreamingProfiler:
        stream = StreamingProfiler(registry=MetricsRegistry())
        stream.ingest(_event("a.example.com", 0.0))
        stream.ingest(_event("b.example.com", minutes(5)))
        stream.ingest(_event("c.example.com", minutes(5), client="10.0.0.2"))
        # One event behind the per-client high-water mark gets dropped.
        stream.ingest(_event("late.example.com", 0.0))
        return stream

    def test_checkpoint_restore_round_trips_counters(self, tmp_path):
        stream = self._stream_with_traffic()
        path = tmp_path / "state.json"
        stream.checkpoint(path)

        restored = StreamingProfiler.restore(
            path, registry=MetricsRegistry()
        )
        assert restored.events_seen == stream.events_seen
        assert restored.late_events_dropped == stream.late_events_dropped
        assert restored.profiles_emitted == stream.profiles_emitted
        assert restored.active_clients == stream.active_clients

    def test_restored_snapshot_matches_original(self, tmp_path):
        stream = self._stream_with_traffic()
        path = tmp_path / "state.json"
        stream.checkpoint(path)
        restored = StreamingProfiler.restore(
            path, registry=MetricsRegistry()
        )
        flatten = MetricsRegistry.flatten
        original = flatten(stream.registry.snapshot())
        rebuilt = flatten(restored.registry.snapshot())
        # Every counter/gauge sample the original had is reproduced
        # exactly; only latency histograms (not checkpointed) may differ.
        for name, value in original.items():
            if name.startswith("stream_emit_latency_seconds"):
                continue
            assert rebuilt.get(name) == value, name

    def test_counters_are_read_only(self):
        stream = StreamingProfiler()
        with pytest.raises(AttributeError):
            stream.events_seen = 99
        with pytest.raises(AttributeError):
            stream.late_events_dropped = 1


class _FlakyPipeline:
    def __init__(self, failures: int):
        self.failures = failures

    def train_on_day(self, trace, day):
        if self.failures > 0:
            self.failures -= 1
            raise RuntimeError("disk full")
        return None

    @property
    def profiler(self):  # pragma: no cover - never swapped in these tests
        raise RuntimeError("no profiler")


class TestSupervisorMetrics:
    def _config(self) -> SupervisorConfig:
        return SupervisorConfig(
            max_attempts=3, backoff_base_seconds=1.0, jitter_fraction=0.0
        )

    def test_failure_and_recovery_are_counted(self):
        registry = MetricsRegistry()
        supervisor = RetrainSupervisor(
            _FlakyPipeline(failures=4),
            config=self._config(),
            registry=registry,
        )
        supervisor.retrain(None, 0)   # 3 attempts, day lost
        supervisor.retrain(None, 1)   # 1 failure, then succeeds

        flat = MetricsRegistry.flatten(registry.snapshot())
        assert flat["retrain_attempts_total"] == 5
        assert flat["retrain_retries_total"] == 3
        assert flat["retrain_successes_total"] == 1
        assert flat["retrain_failed_days_total"] == 1
        # Backoff: day 0 retries pay 1s + 2s; day 1's single retry pays 1s.
        assert flat["retrain_backoff_seconds_total"] == pytest.approx(4.0)
        assert flat["retrain_consecutive_failures"] == 0
        assert flat["retrain_staleness_days"] == 0

    def test_staleness_gauge_tracks_lost_days(self):
        registry = MetricsRegistry()
        pipeline = _FlakyPipeline(failures=0)
        supervisor = RetrainSupervisor(
            pipeline,
            config=SupervisorConfig(max_attempts=1),
            registry=registry,
        )
        supervisor.retrain(None, 0)       # succeeds
        pipeline.failures = 99
        supervisor.retrain(None, 1)
        supervisor.retrain(None, 2)
        flat = MetricsRegistry.flatten(registry.snapshot())
        assert flat["retrain_staleness_days"] == 2
        assert flat["retrain_consecutive_failures"] == 2

    def test_counters_are_read_only(self):
        supervisor = RetrainSupervisor(_FlakyPipeline(failures=0))
        with pytest.raises(AttributeError):
            supervisor.attempts = 5


class TestTrainingMetrics:
    def test_epoch_metrics_and_spans(self):
        registry = MetricsRegistry()
        tracer = Tracer()
        corpus = [
            ["a.com", "b.com", "c.com", "a.com", "b.com"],
            ["b.com", "c.com", "a.com", "c.com", "b.com"],
        ] * 4
        model = SkipGramModel(
            SkipGramConfig(epochs=3, min_count=1, sample=0.0, seed=7),
            registry=registry, tracer=tracer,
        )
        model.fit(corpus)

        flat = MetricsRegistry.flatten(registry.snapshot())
        assert flat["train_tokens_total"] > 0
        assert flat["train_pairs_total"] > 0
        assert flat["train_epoch_seconds_count"] == 3
        assert flat["train_negative_sampling_seconds_total"] > 0
        assert [s.name for s in tracer.spans()] == ["train.epoch"] * 3

    def test_null_instruments_record_nothing(self):
        corpus = [["a.com", "b.com", "c.com"]] * 4
        model = SkipGramModel(SkipGramConfig(epochs=2, min_count=1))
        model.fit(corpus)   # defaults are the no-op registry/tracer
        assert model.registry.null
        assert model.registry.families() == []
