"""Tests for structured JSON logging."""

import io
import json

import pytest

from repro.obs import logging as obslog
from repro.obs.tracing import Tracer


@pytest.fixture()
def stream():
    """Capture records into a StringIO; restore global state afterwards."""
    buffer = io.StringIO()
    obslog.set_stream(buffer)
    obslog.set_level("debug")
    yield buffer
    obslog.set_stream(None)
    obslog.set_level("warning")
    obslog.set_run_id(None)
    obslog.bind_tracer(None)


def _records(buffer: io.StringIO) -> list[dict]:
    return [
        json.loads(line)
        for line in buffer.getvalue().splitlines()
        if line.strip()
    ]


class TestRecords:
    def test_single_line_json_shape(self, stream):
        obslog.get_logger("test.shape").warning(
            "something happened", day=4, attempt=2
        )
        (record,) = _records(stream)
        assert record["level"] == "warning"
        assert record["logger"] == "test.shape"
        assert record["msg"] == "something happened"
        assert record["day"] == 4 and record["attempt"] == 2
        assert record["ts"] > 0

    def test_non_json_fields_are_stringified(self, stream):
        obslog.get_logger("test.str").info("msg", error=ValueError("bad"))
        (record,) = _records(stream)
        assert record["error"] == "bad"

    def test_reserved_keys_are_not_clobbered(self, stream):
        obslog.get_logger("test.reserved").info("msg", level="haxx")
        (record,) = _records(stream)
        assert record["level"] == "info"

    def test_run_id_is_stamped(self, stream):
        obslog.set_run_id("abc123")
        obslog.get_logger("test.run").info("msg")
        (record,) = _records(stream)
        assert record["run_id"] == "abc123"

    def test_span_context_from_bound_tracer(self, stream):
        tracer = Tracer()
        obslog.bind_tracer(tracer)
        logger = obslog.get_logger("test.span")
        with tracer.span("retrain.day", day=1):
            logger.info("inside")
        logger.info("outside")
        inside, outside = _records(stream)
        assert inside["span"] == "retrain.day"
        assert "span" not in outside


class TestLevels:
    def test_threshold_filters_lower_levels(self, stream):
        obslog.set_level("warning")
        logger = obslog.get_logger("test.levels")
        logger.debug("quiet")
        logger.info("quiet")
        logger.warning("loud")
        logger.error("loud")
        assert [r["level"] for r in _records(stream)] == ["warning", "error"]

    def test_invalid_level_is_rejected(self):
        with pytest.raises(ValueError):
            obslog.set_level("loudest")


class TestHelpers:
    def test_loggers_are_cached_by_name(self):
        assert obslog.get_logger("a") is obslog.get_logger("a")
        assert obslog.get_logger("a") is not obslog.get_logger("b")

    def test_new_run_ids_are_short_and_unique(self):
        first, second = obslog.new_run_id(), obslog.new_run_id()
        assert len(first) == 12
        assert first != second
