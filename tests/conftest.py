"""Shared fixtures.

Expensive world-building (taxonomy, web, traces, trained embeddings) is
session-scoped: the objects are treated as immutable by every test that
uses them.  Tests that need to mutate state build their own instances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SkipGramConfig, SkipGramModel, day_corpus
from repro.ontology import OntologyLabeler, build_default_taxonomy
from repro.traffic import (
    PopulationConfig,
    SyntheticWeb,
    TraceGenerator,
    TrackerFilter,
    UserPopulation,
    WebConfig,
    build_blocklists,
)
from repro.utils.randomness import derive_rng

TEST_SEED = 1234


@pytest.fixture(scope="session")
def taxonomy():
    return build_default_taxonomy()


@pytest.fixture(scope="session")
def web(taxonomy):
    return SyntheticWeb.generate(
        taxonomy,
        derive_rng(TEST_SEED, "web"),
        WebConfig(num_sites=300, num_trackers=40),
    )


@pytest.fixture(scope="session")
def population(web):
    return UserPopulation.generate(
        web,
        derive_rng(TEST_SEED, "population"),
        PopulationConfig(num_users=40),
    )


@pytest.fixture(scope="session")
def trace(web, population):
    generator = TraceGenerator(web, population, seed=TEST_SEED)
    return generator.generate(2)


@pytest.fixture(scope="session")
def tracker_filter(web):
    return TrackerFilter(
        build_blocklists(web, derive_rng(TEST_SEED, "blocklists"))
    )


@pytest.fixture(scope="session")
def labelled(taxonomy, web):
    labeler = OntologyLabeler(taxonomy, coverage=0.106)
    return labeler.build_labelled_set(
        web.ground_truth(),
        universe_size=len(web.all_hostnames()),
        rng=derive_rng(TEST_SEED, "labeler"),
        popularity=web.popularity(),
    )


@pytest.fixture(scope="session")
def corpus(trace):
    return day_corpus(trace, 0) + day_corpus(trace, 1)


@pytest.fixture(scope="session")
def embeddings(corpus):
    model = SkipGramModel(SkipGramConfig(epochs=8, seed=TEST_SEED))
    return model.fit(corpus)


@pytest.fixture()
def rng():
    return np.random.default_rng(TEST_SEED)
