"""Cross-module integration tests.

The most important one walks the *entire* eavesdropper path at byte level:
synthetic browsing -> real packets -> SNI extraction -> per-client
sequences -> SGNS training -> session profiling, and verifies the profile
matches what the user was actually doing.
"""

import numpy as np
import pytest

from repro.ads.clicks import affinity
from repro.core import (
    NetworkObserverProfiler,
    PipelineConfig,
    SkipGramConfig,
    sequences_from_requests,
)
from repro.netobs import (
    CaptureConfig,
    NatBox,
    NetworkObserver,
    ObserverConfig,
    TrafficSynthesizer,
)
from repro.utils.timeutils import minutes


class TestWireToProfile:
    @pytest.fixture(scope="class")
    def observed(self, trace):
        """Run day 0+1 traffic through the packet pipeline."""
        observer = NetworkObserver(ObserverConfig(vantage="sni"))
        synthesizer = TrafficSynthesizer(seed=3)
        for day in (0, 1):
            for request in trace.day(day):
                for packet in synthesizer.packets_for_request(request):
                    observer.ingest(packet)
        return observer, synthesizer

    def test_observer_sees_every_request_exactly_once(
        self, observed, trace
    ):
        observer, _ = observed
        total_requests = len(trace.day(0)) + len(trace.day(1))
        total_events = sum(
            len(observer.events_for(c)) for c in observer.clients
        )
        assert total_events == total_requests

    def test_observed_hostnames_match_trace(self, observed, trace):
        observer, synthesizer = observed
        trace_hosts = {
            r.hostname for day in (0, 1) for r in trace.day(day)
        }
        observed_hosts = {
            e.hostname
            for c in observer.clients
            for e in observer.events_for(c)
        }
        assert observed_hosts == trace_hosts

    def test_profile_from_wire_matches_ground_truth(
        self, observed, trace, web, labelled
    ):
        observer, synthesizer = observed
        # map client IPs back to user ids (the experimenter's ground truth)
        user_of_client = {
            synthesizer.client_ip(u): u for u in trace.user_ids()
        }
        streams = observer.as_requests(user_of_client)

        profiler = NetworkObserverProfiler(
            labelled,
            config=PipelineConfig(skipgram=SkipGramConfig(epochs=6, seed=0)),
        )
        corpus = []
        for _, stream in sorted(streams.items()):
            corpus.extend(sequences_from_requests(stream))
        profiler.train_on_sequences(corpus)

        scores = []
        for user_id, stream in sorted(streams.items())[:15]:
            now = stream[-1].timestamp
            profile = profiler.profile_user(stream, now)
            if profile.is_empty:
                continue
            window_hosts = [
                r.hostname
                for r in stream
                if now - minutes(20) < r.timestamp <= now
            ]
            true_vectors = [
                web.true_category_vector(h) for h in window_hosts
            ]
            true_vectors = [v for v in true_vectors if v is not None]
            if not true_vectors:
                continue
            oracle = np.mean(true_vectors, axis=0)
            scores.append(affinity(oracle, profile.categories))
        assert len(scores) >= 5
        assert float(np.mean(scores)) > 0.3


class TestNatDegradation:
    def test_nat_merges_users_into_one_client(self, trace):
        requests = trace.day(0)[:400]
        synthesizer = TrafficSynthesizer(seed=4)
        nat = NatBox()
        observer = NetworkObserver(ObserverConfig(vantage="sni"))
        for request in requests:
            for packet in synthesizer.packets_for_request(request):
                observer.ingest(nat.translate(packet))
        assert len(observer.clients) == 1
        merged = observer.events_for(observer.clients[0])
        # everything is attributed to one pseudo-user
        assert len(merged) == len(
            [r for r in requests]
        )


class TestDnsVantageEquivalence:
    def test_dns_observer_sees_same_hostnames(self, trace):
        requests = trace.day(0)[:300]
        config = CaptureConfig(dns_fraction=1.0)
        synthesizer = TrafficSynthesizer(seed=5, config=config)
        sni_obs = NetworkObserver(ObserverConfig(vantage="sni"))
        dns_obs = NetworkObserver(ObserverConfig(vantage="dns"))
        for request in requests:
            for packet in synthesizer.packets_for_request(request):
                sni_obs.ingest(packet)
        synthesizer2 = TrafficSynthesizer(seed=5, config=config)
        for request in requests:
            for packet in synthesizer2.packets_for_request(request):
                dns_obs.ingest(packet)
        sni_hosts = {
            e.hostname for c in sni_obs.clients
            for e in sni_obs.events_for(c)
        }
        dns_hosts = {
            e.hostname for c in dns_obs.clients
            for e in dns_obs.events_for(c)
        }
        assert dns_hosts == sni_hosts
