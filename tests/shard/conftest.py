"""Shared fixtures for the sharded-runtime tests.

One small trained model is exported once per session (mappable,
``compress=False``) and every test — single-process reference and
worker fleets alike — serves it, so parity comparisons always run over
byte-identical model files.
"""

from __future__ import annotations

import pytest

from repro.core import SkipGramConfig
from repro.core.pipeline import NetworkObserverProfiler, PipelineConfig
from repro.core.streaming import StreamingConfig, StreamingProfiler
from repro.netobs.flows import HostnameEvent

TEST_SEED = 1234

#: Streaming knobs every run in this package shares.
STREAM_CONFIG = {
    "session_minutes": 20.0,
    "report_interval_minutes": 10.0,
}


@pytest.fixture(scope="session")
def shard_model_dir(tmp_path_factory, labelled, trace, tracker_filter):
    pipeline = NetworkObserverProfiler(
        labelled,
        config=PipelineConfig(
            skipgram=SkipGramConfig(epochs=2, seed=TEST_SEED)
        ),
        tracker_filter=tracker_filter,
    )
    pipeline.train_on_day(trace, 0)
    return str(
        pipeline.export_model_dir(tmp_path_factory.mktemp("shard-model"))
    )


def client_ip(user_id: int) -> str:
    return f"10.0.{user_id // 256}.{user_id % 256}"


@pytest.fixture(scope="session")
def shard_events(trace):
    """Day-1 requests as wire tuples, in global (timestamp, user) order."""
    return [
        (client_ip(r.user_id), r.timestamp, r.hostname, "tls-sni")
        for r in trace.day(1)
    ]


def single_process_emissions(
    model_dir, labelled, tracker_filter, events
) -> list[dict]:
    """The ground truth every fleet result must reproduce exactly."""
    pipeline = NetworkObserverProfiler(
        labelled, tracker_filter=tracker_filter
    )
    pipeline.load_model_dir(model_dir, mmap_mode=None)
    stream = StreamingProfiler(
        config=StreamingConfig(**STREAM_CONFIG),
        tracker_filter=tracker_filter,
    )
    stream.swap_model(pipeline.profiler)
    emissions = []
    for client, timestamp, hostname, source in events:
        emission = stream.ingest(
            HostnameEvent(
                client_ip=client,
                timestamp=timestamp,
                hostname=hostname,
                source=source,
            )
        )
        if emission is not None:
            emissions.append({
                "client": emission.client,
                "timestamp": emission.timestamp,
                "profile": emission.profile.to_payload(),
                "window_hosts": list(emission.window_hosts),
            })
    emissions.sort(key=lambda e: (e["timestamp"], e["client"]))
    return emissions


@pytest.fixture(scope="session")
def reference_emissions(
    shard_model_dir, labelled, tracker_filter, shard_events
):
    emissions = single_process_emissions(
        shard_model_dir, labelled, tracker_filter, shard_events
    )
    assert emissions, "degenerate fixture: no profiles emitted"
    return emissions
