"""ShardRouter: stability, uniformity, NAT co-location, spec round-trip."""

import subprocess
import sys

from repro.shard import ShardRouter


class TestStability:
    def test_deterministic_within_process(self):
        router = ShardRouter(4, salt="s")
        clients = [f"10.0.0.{i}" for i in range(64)]
        assert router.assignments(clients) == router.assignments(clients)

    def test_deterministic_across_processes(self):
        # Python's builtin hash is per-process randomized; the router
        # must not be.  A fresh interpreter computes the same shard.
        script = (
            "import sys; sys.path.insert(0, 'src'); "
            "from repro.shard import ShardRouter; "
            "print(ShardRouter(4, salt='s').shard_of('10.0.0.7'))"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
        )
        assert int(out.stdout) == ShardRouter(4, salt="s").shard_of(
            "10.0.0.7"
        )

    def test_single_shard_takes_everything(self):
        router = ShardRouter(1)
        assert {
            router.shard_of(f"c{i}") for i in range(100)
        } == {0}

    def test_salt_changes_the_partition(self):
        clients = [f"10.0.0.{i}" for i in range(128)]
        a = ShardRouter(4, salt="a").assignments(clients)
        b = ShardRouter(4, salt="b").assignments(clients)
        assert a != b


class TestUniformity:
    def test_roughly_balanced(self):
        router = ShardRouter(4)
        counts = [0, 0, 0, 0]
        for i in range(4000):
            counts[router.shard_of(f"10.{i % 256}.{i // 256}.1")] += 1
        for count in counts:
            assert 700 <= count <= 1300   # ±30% of fair share


class TestNatAwareness:
    def test_merged_clients_stay_colocated(self):
        # Clients NATed behind one egress are one observed identity:
        # their windows must live on one shard, whatever the salt.
        nat_groups = {
            "192.168.1.10": "203.0.113.5",
            "192.168.1.11": "203.0.113.5",
            "192.168.1.12": "203.0.113.5",
        }
        for salt in ("", "a", "b"):
            router = ShardRouter(8, salt=salt, nat_groups=nat_groups)
            shards = {
                router.shard_of(client) for client in nat_groups
            }
            assert len(shards) == 1
            # and they ride with their public address
            assert shards == {router.shard_of("203.0.113.5")}

    def test_unmapped_clients_unaffected(self):
        with_nat = ShardRouter(
            8, nat_groups={"192.168.1.10": "203.0.113.5"}
        )
        without = ShardRouter(8)
        assert with_nat.shard_of("10.0.0.1") == without.shard_of(
            "10.0.0.1"
        )


class TestSpecRoundTrip:
    def test_round_trip(self):
        router = ShardRouter(
            4, salt="x", nat_groups={"a": "g", "b": "g"}
        )
        clone = ShardRouter.from_spec(router.spec())
        clients = ["a", "b", "c", "10.0.0.1"]
        assert clone.assignments(clients) == router.assignments(clients)

    def test_validation(self):
        import pytest

        with pytest.raises(ValueError):
            ShardRouter(0)
