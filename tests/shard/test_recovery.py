"""Fault isolation: ``kill -9`` one worker, the day still completes.

The coordinator's replay buffer plus the worker's checkpoint make
delivery at-least-once and application exactly-once, so merged output
after a mid-stream SIGKILL is byte-identical to the undisturbed run —
no duplicate sessions, no dropped ones.
"""

from __future__ import annotations

import json
import os
import signal
import time

from repro.shard import SHARD_CHECKPOINT_FORMAT, ShardCoordinator

from tests.shard.conftest import STREAM_CONFIG


def _coordinator(tmp_path, shard_model_dir, labelled, tracker_filter):
    return ShardCoordinator(
        2,
        checkpoint_dir=tmp_path / "ckpt",
        model_dir=shard_model_dir,
        labelled=labelled,
        stream_config=STREAM_CONFIG,
        tracker_filter=tracker_filter,
        checkpoint_every_batches=2,
    )


def _sigkill(coordinator, shard: int) -> None:
    """SIGKILL one worker and wait for the process to actually die.

    ``os.kill(pid, 0)`` still succeeds on the zombie, so liveness is
    checked through the Process handle (which reaps on ``is_alive``).
    """
    process = coordinator._shards[shard].process
    os.kill(process.pid, signal.SIGKILL)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if not process.is_alive():
            return
        time.sleep(0.05)
    raise AssertionError(f"pid {process.pid} survived SIGKILL")


def test_kill_nine_loses_only_one_window_and_heals(
    tmp_path, shard_model_dir, labelled, tracker_filter, shard_events,
    reference_emissions,
):
    coordinator = _coordinator(
        tmp_path, shard_model_dir, labelled, tracker_filter
    )
    coordinator.start()
    try:
        batch_size = 400
        batches = [
            shard_events[i:i + batch_size]
            for i in range(0, len(shard_events), batch_size)
        ]
        kill_at = len(batches) // 2
        for i, batch in enumerate(batches):
            if i == kill_at:
                _sigkill(coordinator, 0)
                # Next dispatch (or explicit poll) notices the death.
            coordinator.dispatch(batch)
            coordinator.poll()
        result = coordinator.finish()
    finally:
        coordinator.terminate()

    # Exactly-once application: identical output despite the replay.
    assert result.emissions == reference_emissions
    assert result.events_seen == len(shard_events)
    assert result.restarts >= 1
    # Isolation: the undisturbed shard never restarted.
    assert result.per_shard[1]["restarts"] == 0

    # The per-shard checkpoint is the restart artefact and it survives.
    checkpoint = json.loads(
        coordinator.shard_checkpoint_path(0).read_text()
    )
    assert checkpoint["format"] == SHARD_CHECKPOINT_FORMAT
    assert checkpoint["shard_id"] == 0


def test_kill_during_finish_still_completes(
    tmp_path, shard_model_dir, labelled, tracker_filter, shard_events,
    reference_emissions,
):
    coordinator = _coordinator(
        tmp_path, shard_model_dir, labelled, tracker_filter
    )
    coordinator.start()
    try:
        for i in range(0, len(shard_events), 400):
            coordinator.dispatch(shard_events[i:i + 400])
        _sigkill(coordinator, 1)
        result = coordinator.finish()
    finally:
        coordinator.terminate()
    assert result.emissions == reference_emissions
    assert result.restarts >= 1


def test_poll_reports_and_heals_idle_deaths(
    tmp_path, shard_model_dir, labelled, tracker_filter, shard_events,
):
    coordinator = _coordinator(
        tmp_path, shard_model_dir, labelled, tracker_filter
    )
    coordinator.start()
    try:
        coordinator.dispatch(shard_events[:400])
        _sigkill(coordinator, 0)
        restarted = coordinator.poll()
        assert restarted == [0]
        status = coordinator.status()
        assert status["shards"][0]["alive"]
        assert status["shards"][0]["restarts"] == 1
        assert status["restarts"] == 1
        assert coordinator.poll() == []
    finally:
        coordinator.terminate()
