"""Fleet observability: live telemetry, heartbeats, straggler alerts.

Workers ship ``repro-shard-telemetry-v1`` frames on a dedicated queue;
the coordinator caches the latest per shard, the
:class:`~repro.shard.monitor.FleetMonitor` turns the stream into
``fleet_*`` gauges, and :func:`repro.obs.slo.fleet_slos` turns a silent
worker into a firing — and, on resume, clearing — ``/alerts`` entry.
These tests run the real spawn fleet but no model: telemetry must not
depend on profiles being emitted.
"""

from __future__ import annotations

import os
import signal
import time

from repro.obs import FlightRecorder, MetricsRegistry, SLOEngine, fleet_slos
from repro.shard import SHARD_TELEMETRY_FORMAT, ShardCoordinator

from tests.shard.conftest import STREAM_CONFIG


def _events(count: int = 240, users: int = 6) -> list[tuple]:
    return [
        (f"10.9.0.{u}", 1000.0 + i * 5, f"site{i % 5}.example.com",
         "tls-sni")
        for u in range(users) for i in range(count // users)
    ]


def _coordinator(tmp_path, registry=None, **kwargs) -> ShardCoordinator:
    kwargs.setdefault("telemetry_interval_seconds", 0.1)
    kwargs.setdefault("monitor_interval_seconds", 0.1)
    return ShardCoordinator(
        2,
        checkpoint_dir=tmp_path / "ckpt",
        stream_config=STREAM_CONFIG,
        registry=registry if registry is not None else MetricsRegistry(),
        **kwargs,
    )


def _wait(predicate, timeout: float = 30.0, interval: float = 0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def _fleet_events_total(coordinator) -> float:
    flat = MetricsRegistry.flatten(coordinator.fleet_metrics_snapshot())
    return sum(
        value for key, value in flat.items()
        if key.startswith("stream_events_total{")
    )


class TestTelemetryFrames:
    def test_frames_cached_and_status_enriched(self, tmp_path):
        coordinator = _coordinator(tmp_path)
        coordinator.start()
        try:
            coordinator.dispatch(_events())
            assert _wait(lambda: all(
                (entry["events_seen"] or 0) > 0
                for entry in coordinator.status()["shards"]
            )), "telemetry frames never arrived"
            status = coordinator.status()
            assert status["workers"] == 2
            assert status["telemetry_interval_seconds"] == 0.1
            for entry in status["shards"]:
                frame = coordinator._shards[entry["shard_id"]].telemetry
                assert frame["format"] == SHARD_TELEMETRY_FORMAT
                assert frame["shard_id"] == entry["shard_id"]
                assert entry["heartbeat_age_seconds"] is not None
                assert entry["last_heartbeat_wall"] is not None
                assert entry["lag_batches"] >= 0
            summary = status["fleet"]
            assert set(summary) == {
                "max_heartbeat_age_seconds", "max_lag_batches",
                "lag_skew_batches", "throughput_skew",
            }
        finally:
            coordinator.terminate()

    def test_idle_workers_keep_heartbeating(self, tmp_path):
        # Zero dispatches: heartbeat age must stay near the telemetry
        # interval, because silence has to mean stuck — never idle.
        coordinator = _coordinator(tmp_path)
        coordinator.start()
        try:
            time.sleep(0.8)   # several idle intervals
            assert _wait(
                lambda: coordinator.monitor.update()[
                    "max_heartbeat_age_seconds"
                ] < 1.0,
                timeout=10.0,
            )
        finally:
            coordinator.terminate()

    def test_fleet_snapshot_labels_every_shard(self, tmp_path):
        coordinator = _coordinator(tmp_path)
        coordinator.start()
        try:
            events = _events()
            coordinator.dispatch(events)
            assert _wait(
                lambda: _fleet_events_total(coordinator) == len(events)
            )
            flat = MetricsRegistry.flatten(
                coordinator.fleet_metrics_snapshot()
            )
            shard_keys = [
                key for key in flat
                if key.startswith("stream_events_total{")
            ]
            assert 'stream_events_total{shard="0"}' in shard_keys
            assert 'stream_events_total{shard="1"}' in shard_keys
            # The coordinator's own series merge in unlabelled.
            assert "shard_batches_dispatched_total" in str(flat)
        finally:
            coordinator.terminate()

    def test_mid_run_scrapes_are_monotone(self, tmp_path):
        coordinator = _coordinator(tmp_path)
        coordinator.start()
        try:
            events = _events()
            half = len(events) // 2
            coordinator.dispatch(events[:half])
            assert _wait(
                lambda: _fleet_events_total(coordinator) >= half
            )
            first = _fleet_events_total(coordinator)
            coordinator.dispatch(events[half:])
            assert _wait(
                lambda: _fleet_events_total(coordinator) == len(events)
            )
            assert _fleet_events_total(coordinator) >= first
            result = coordinator.finish()
            # After finish the merged view comes from final results.
            assert _fleet_events_total(coordinator) == len(events)
            assert result.events_seen == len(events)
        finally:
            coordinator.terminate()


class TestStragglerDetection:
    def test_sigstop_fires_alert_and_sigcont_clears_it(self, tmp_path):
        registry = MetricsRegistry()
        coordinator = _coordinator(tmp_path, registry=registry)
        engine = SLOEngine(
            registry,
            slos=fleet_slos(max_heartbeat_age_seconds=1.0),
        )
        coordinator.start()
        try:
            coordinator.dispatch(_events())

            def firing():
                engine.evaluate()
                return {
                    alert["name"]
                    for alert in engine.alerts_report()["firing"]
                }

            assert _wait(lambda: "fleet-straggler" not in firing())
            victim = coordinator._shards[0].process.pid
            os.kill(victim, signal.SIGSTOP)
            try:
                assert _wait(
                    lambda: "fleet-straggler" in firing()
                ), "straggler alert never fired under SIGSTOP"
            finally:
                os.kill(victim, signal.SIGCONT)
            # No dispatch needed: the resumed worker's idle heartbeats
            # alone must bring the age back under threshold.
            assert _wait(
                lambda: "fleet-straggler" not in firing()
            ), "straggler alert never cleared after SIGCONT"
        finally:
            coordinator.terminate()

    def test_finish_freezes_healthy_gauges(self, tmp_path):
        registry = MetricsRegistry()
        coordinator = _coordinator(tmp_path, registry=registry)
        engine = SLOEngine(
            registry, slos=fleet_slos(max_heartbeat_age_seconds=1.0)
        )
        coordinator.start()
        try:
            coordinator.dispatch(_events())
            coordinator.finish()
        finally:
            coordinator.terminate()
        # Done shards are excluded from the aggregates, and the monitor
        # stopped after a final update: a lingering admin server must
        # keep serving cleared alerts, not a climbing heartbeat age.
        time.sleep(1.2)
        engine.evaluate()
        names = {
            alert["name"] for alert in engine.alerts_report()["firing"]
        }
        assert "fleet-straggler" not in names
        flat = MetricsRegistry.flatten(registry.snapshot())
        assert flat["fleet_max_heartbeat_age_seconds"] < 1.0


class TestWorkerLifecycleEvents:
    def test_spawn_crash_respawn_replay_recorded(self, tmp_path):
        registry = MetricsRegistry()
        flight = FlightRecorder(registry=registry)
        # checkpoint_every_batches=2 guarantees the first batch is never
        # acked before the kill, so the respawn must replay it.
        coordinator = _coordinator(
            tmp_path, registry=registry, flight=flight, worker_flight=True,
            checkpoint_every_batches=2,
        )
        coordinator.start()
        try:
            events = _events()
            coordinator.dispatch(events[:120])
            process = coordinator._shards[0].process
            os.kill(process.pid, signal.SIGKILL)
            assert _wait(lambda: not process.is_alive())
            coordinator.poll()
            coordinator.dispatch(events[120:])
            coordinator.finish()
        finally:
            coordinator.terminate()
        names = [
            event["name"]
            for event in flight.report(reason="test")["events"]
            if event["kind"] == "worker"
        ]
        assert "shard.spawn" in names
        assert "shard.crash" in names
        assert "shard.respawn" in names
        assert "shard.replay" in names
        assert "shard.done" in names
        # The respawned worker dumped its flight ring next to its
        # checkpoint, where ``repro doctor --shard-dir`` collects it.
        assert coordinator.shard_flight_path(0).is_file()
        assert coordinator.shard_flight_path(1).is_file()
