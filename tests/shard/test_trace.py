"""Cross-process trace reassembly over the coordinator→worker hop.

With a head sampler attached, the coordinator stamps each sampled
client's wire events with a ``(trace_id, span_id)`` context and opens a
one-shot ``shard.route`` span; the worker's tracer joins that context,
so its ``stream.ingest`` spans parent back across the process boundary.
Workers export completed sampled roots in telemetry frames, and the
coordinator adopts them — one tracer ends up holding both sides.
"""

from __future__ import annotations

import time

from repro.obs import HeadSampler, MetricsRegistry, Tracer
from repro.shard import ShardCoordinator

from tests.shard.conftest import STREAM_CONFIG


def _events(count: int = 120, users: int = 4) -> list[tuple]:
    return [
        (f"10.8.0.{u}", 1000.0 + i * 5, f"site{i % 5}.example.com",
         "tls-sni")
        for u in range(users) for i in range(count // users)
    ]


def test_sampled_run_reassembles_both_sides_of_the_hop(tmp_path):
    tracer = Tracer()
    coordinator = ShardCoordinator(
        2,
        checkpoint_dir=tmp_path / "ckpt",
        stream_config=STREAM_CONFIG,
        registry=MetricsRegistry(),
        tracer=tracer,
        trace_sampler=HeadSampler(1.0),
        telemetry_interval_seconds=0.05,
    )
    coordinator.start()
    try:
        coordinator.dispatch(_events())
        coordinator.finish()   # final frames flush remaining spans
    finally:
        coordinator.terminate()

    # Every client was sampled, so every client has a cached context.
    assert coordinator._client_traces
    trace_ids = {
        wire[0] for wire in coordinator._client_traces.values()
        if wire is not None
    }
    assert trace_ids

    reassembled = 0
    for trace_id in trace_ids:
        spans = tracer.trace_spans(trace_id)
        names = {span.name for span in spans}
        if "stream.ingest" not in names:
            continue
        reassembled += 1
        # The coordinator side of the hop...
        assert "shard.route" in names
        (route,) = [s for s in spans if s.name == "shard.route"]
        # ...is the parent of every worker-side ingest span.
        ingests = [s for s in spans if s.name == "stream.ingest"]
        for ingest in ingests:
            assert ingest.trace_id == trace_id
            assert ingest.parent_span_id == route.span_id
    assert reassembled, "no trace carried worker-side spans"

    # Adopted worker roots are tagged with their shard of origin.
    shard_tags = {
        root.tags.get("shard")
        for root in tracer.spans()
        if root.name == "stream.ingest"
    }
    assert shard_tags <= {"0", "1"}
    assert shard_tags


def test_unsampled_run_ships_no_spans(tmp_path):
    # No sampler: wire events stay 4-tuples, workers run NULL tracers,
    # frames carry no spans, the coordinator tracer stays empty.
    tracer = Tracer()
    coordinator = ShardCoordinator(
        2,
        checkpoint_dir=tmp_path / "ckpt",
        stream_config=STREAM_CONFIG,
        registry=MetricsRegistry(),
        tracer=tracer,
        telemetry_interval_seconds=0.05,
    )
    coordinator.start()
    try:
        coordinator.dispatch(_events(count=40))
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            frames = [s.telemetry for s in coordinator._shards]
            if all(f is not None for f in frames):
                break
            time.sleep(0.05)
        coordinator.finish()
    finally:
        coordinator.terminate()
    for state in coordinator._shards:
        assert state.telemetry["spans"] == []
    assert tracer.spans() == []
