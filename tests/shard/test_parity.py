"""Shard parity: the fleet's merged output equals single-process output.

The acceptance bar from the sharding design: for every worker count and
every sharding (salt), merged emissions are *identical* — same profiles,
same timestamps, same window hosts — to one StreamingProfiler consuming
the same day.  Real spawned processes, tiny world, mapped model.
"""

from __future__ import annotations

import pytest

from repro.shard import ShardCoordinator

from tests.shard.conftest import STREAM_CONFIG


def _run_fleet(
    num_shards, tmp_path, shard_model_dir, labelled, tracker_filter,
    shard_events, salt, batch_size=500, checkpoint_every_batches=4,
):
    coordinator = ShardCoordinator(
        num_shards,
        checkpoint_dir=tmp_path / "ckpt",
        model_dir=shard_model_dir,
        labelled=labelled,
        stream_config=STREAM_CONFIG,
        tracker_filter=tracker_filter,
        salt=salt,
        checkpoint_every_batches=checkpoint_every_batches,
    )
    coordinator.start()
    try:
        for start in range(0, len(shard_events), batch_size):
            coordinator.dispatch(shard_events[start:start + batch_size])
        return coordinator.finish()
    finally:
        coordinator.terminate()


@pytest.mark.parametrize("salt", ["", "alternate-sharding"])
@pytest.mark.parametrize("num_shards", [1, 2, 4])
def test_fleet_matches_single_process(
    num_shards, salt, tmp_path, shard_model_dir, labelled,
    tracker_filter, shard_events, reference_emissions,
):
    result = _run_fleet(
        num_shards, tmp_path, shard_model_dir, labelled,
        tracker_filter, shard_events, salt,
    )
    assert result.emissions == reference_emissions
    assert result.events_seen == len(shard_events)
    assert result.profiles_emitted == len(reference_emissions)
    assert result.restarts == 0


def test_fleet_metrics_merge_to_global_totals(
    tmp_path, shard_model_dir, labelled, tracker_filter, shard_events,
    reference_emissions,
):
    result = _run_fleet(
        2, tmp_path, shard_model_dir, labelled, tracker_filter,
        shard_events, salt="",
    )
    assert result.metrics["format"] == "repro-metrics-v1"
    by_name = {f["name"]: f for f in result.metrics["metrics"]}
    ingested = by_name["stream_events_total"]
    total = sum(s["value"] for s in ingested["series"])
    assert total == len(shard_events)
    emitted = by_name["stream_profiles_total"]
    assert sum(
        s["value"] for s in emitted["series"]
    ) == len(reference_emissions)


def test_status_reports_the_whole_fleet(
    tmp_path, shard_model_dir, labelled, tracker_filter, shard_events,
):
    coordinator = ShardCoordinator(
        2,
        checkpoint_dir=tmp_path / "ckpt",
        model_dir=shard_model_dir,
        labelled=labelled,
        stream_config=STREAM_CONFIG,
        tracker_filter=tracker_filter,
    )
    coordinator.start()
    try:
        coordinator.dispatch(shard_events[:200])
        status = coordinator.status()
        assert status["num_shards"] == 2
        assert status["started"] and not status["finished"]
        assert len(status["shards"]) == 2
        for shard in status["shards"]:
            assert shard["alive"]
            assert isinstance(shard["pid"], int)
        coordinator.finish()
        assert coordinator.status()["finished"]
    finally:
        coordinator.terminate()
