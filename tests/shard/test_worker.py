"""ShardWorker in-process: sequencing, checkpointing, exactly-once."""

import json

import pytest

from repro.shard import SHARD_CHECKPOINT_FORMAT, ShardWorker, WorkerSpec
from repro.shard.router import ShardRouter

from tests.shard.conftest import STREAM_CONFIG


def _spec(tmp_path, shard_id=0, num_shards=1, **overrides):
    kwargs = dict(
        shard_id=shard_id,
        num_shards=num_shards,
        checkpoint_path=str(tmp_path / f"shard-{shard_id:03d}.json"),
        router=ShardRouter(num_shards).spec(),
        stream_config=dict(STREAM_CONFIG),
    )
    kwargs.update(overrides)
    return WorkerSpec(**kwargs)


def _owned_client(num_shards, shard_id):
    router = ShardRouter(num_shards)
    for i in range(10_000):
        client = f"10.0.0.{i}"
        if router.shard_of(client) == shard_id:
            return client
    raise AssertionError("no client hashed to shard")


class TestSequencing:
    def test_batches_apply_in_order(self, tmp_path):
        worker = ShardWorker(_spec(tmp_path))
        client = _owned_client(1, 0)
        worker.ingest_batch(0, [(client, 10.0, "a.com", "tls-sni")])
        worker.ingest_batch(1, [(client, 20.0, "b.com", "tls-sni")])
        assert worker.next_seq == 2
        assert worker.stream.events_seen == 2

    def test_replayed_batch_is_skipped_whole(self, tmp_path):
        worker = ShardWorker(_spec(tmp_path))
        client = _owned_client(1, 0)
        batch = [(client, 10.0, "a.com", "tls-sni")]
        worker.ingest_batch(0, batch)
        worker.ingest_batch(0, batch)   # at-least-once delivery
        worker.ingest_batch(0, batch)
        assert worker.stream.events_seen == 1   # exactly-once application
        assert worker.next_seq == 1

    def test_gap_fails_loudly(self, tmp_path):
        worker = ShardWorker(_spec(tmp_path))
        client = _owned_client(1, 0)
        worker.ingest_batch(0, [(client, 10.0, "a.com", "tls-sni")])
        with pytest.raises(RuntimeError, match="gap"):
            worker.ingest_batch(2, [(client, 20.0, "b.com", "tls-sni")])

    def test_misrouted_client_rejected(self, tmp_path):
        worker = ShardWorker(_spec(tmp_path, shard_id=0, num_shards=4))
        stranger = _owned_client(4, 3)
        with pytest.raises(RuntimeError, match="routed"):
            worker.ingest_batch(0, [(stranger, 10.0, "a.com", "tls-sni")])


class TestCheckpointing:
    def test_round_trip_resumes_exactly(self, tmp_path):
        spec = _spec(tmp_path)
        worker = ShardWorker(spec)
        client = _owned_client(1, 0)
        worker.ingest_batch(0, [(client, 10.0, "a.com", "tls-sni")])
        worker.ingest_batch(1, [(client, 700.0, "b.com", "tls-sni")])
        worker.checkpoint()

        resumed = ShardWorker(_spec(tmp_path))
        assert resumed.restored
        assert resumed.next_seq == worker.next_seq
        assert resumed.stream.events_seen == worker.stream.events_seen
        # Both apply the same next batch and agree on all state.
        tail = [(client, 1300.0, "c.com", "tls-sni")]
        worker.ingest_batch(2, tail)
        resumed.ingest_batch(2, tail)
        assert resumed.stream.snapshot_state() == (
            worker.stream.snapshot_state()
        )
        assert resumed.emissions == worker.emissions

    def test_checkpoint_format_is_tagged(self, tmp_path):
        worker = ShardWorker(_spec(tmp_path))
        worker.checkpoint()
        payload = json.loads(worker.checkpoint_path.read_text())
        assert payload["format"] == SHARD_CHECKPOINT_FORMAT
        assert payload["next_seq"] == 0
        assert "stream" in payload

    def test_checkpoint_is_atomic(self, tmp_path, monkeypatch):
        import os

        worker = ShardWorker(_spec(tmp_path))
        worker.checkpoint()
        before = worker.checkpoint_path.read_bytes()
        client = _owned_client(1, 0)
        worker.ingest_batch(0, [(client, 10.0, "a.com", "tls-sni")])

        def explode(src, dst):
            raise OSError("power cut")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError):
            worker.checkpoint()
        assert worker.checkpoint_path.read_bytes() == before

    def test_wrong_shard_checkpoint_rejected(self, tmp_path):
        worker = ShardWorker(_spec(tmp_path, shard_id=0, num_shards=2))
        worker.checkpoint()
        path = tmp_path / "shard-000.json"
        with pytest.raises(ValueError, match="belongs to shard"):
            ShardWorker(
                _spec(
                    tmp_path, shard_id=0, num_shards=4,
                    checkpoint_path=str(path),
                    router=ShardRouter(4).spec(),
                )
            )

    def test_spec_validation(self, tmp_path):
        with pytest.raises(ValueError):
            ShardWorker(_spec(tmp_path, shard_id=5, num_shards=2))
