"""Exact <-> IVF parity (satellite of the index subsystem PR).

Two guarantees back the recall knob:

* ``nprobe == num_clusters`` degenerates IVF to an exhaustive scan whose
  ordering matches :class:`ExactIndex` exactly — property-tested over
  random matrices, metrics and cluster counts;
* at the *default* ``nprobe`` (half the cells), recall against the exact
  top-N stays >= 0.95 on a clustered embedding fixture shaped like the
  trained hostname space (the same planting scheme as
  ``benchmarks/bench_index.py``, smaller so it runs in tier-1 time).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import ExactIndex, IVFIndex


@st.composite
def index_problems(draw):
    size = draw(st.integers(min_value=4, max_value=40))
    dim = draw(st.integers(min_value=2, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(size, dim))
    query = rng.normal(size=dim)
    num_clusters = draw(st.integers(min_value=1, max_value=size))
    n = draw(st.integers(min_value=1, max_value=size + 5))
    metric = draw(st.sampled_from(["cosine", "euclidean"]))
    return matrix, query, num_clusters, n, metric


@given(index_problems())
@settings(max_examples=60, deadline=None)
def test_full_probe_ivf_matches_exact_ordering(problem):
    matrix, query, num_clusters, n, metric = problem
    exact = ExactIndex(matrix, metric=metric)
    ivf = IVFIndex(
        matrix,
        metric=metric,
        num_clusters=num_clusters,
        nprobe=num_clusters,   # probe everything: recall must be 1.0
    )
    exact_ids, exact_scores = exact.search(query, n)
    ivf_ids, ivf_scores = ivf.search(query, n)
    np.testing.assert_array_equal(ivf_ids, exact_ids)
    np.testing.assert_array_equal(ivf_scores, exact_scores)


def test_default_nprobe_recall_on_clustered_fixture():
    """recall@N >= 0.95 at the default (half the cells probed)."""
    rng = np.random.default_rng(12345)
    size, dim, top_n = 4096, 32, 1000
    centers = rng.normal(size=(16, dim))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    assignment = rng.integers(16, size=size)
    matrix = centers[assignment] + 0.12 * rng.normal(size=(size, dim))
    matrix /= np.linalg.norm(matrix, axis=1, keepdims=True)
    queries = matrix[rng.integers(size, size=50)] + 0.04 * rng.normal(
        size=(50, dim)
    )

    exact = ExactIndex(matrix, metric="cosine", normalized=True)
    ivf = IVFIndex(matrix, metric="cosine", normalized=True)
    assert ivf.nprobe == (ivf.num_clusters + 1) // 2

    hits = 0
    for query in queries:
        truth, _ = exact.search(query, top_n)
        got, _ = ivf.search(query, top_n)
        hits += np.isin(truth, got).sum()
    recall = hits / (len(queries) * top_n)
    assert recall >= 0.95, f"recall@{top_n} {recall:.4f} < 0.95"


def test_low_nprobe_trades_recall_for_fewer_rows_scanned():
    """The knob moves the right way: fewer probes -> fewer candidates."""
    rng = np.random.default_rng(7)
    matrix = rng.normal(size=(500, 8))
    ivf = IVFIndex(matrix, num_clusters=20, nprobe=20)
    query = rng.normal(size=8)
    sizes = [
        len(ivf._candidates(ivf._prepare_query(query), nprobe))
        for nprobe in (1, 5, 20)
    ]
    assert sizes[0] < sizes[1] < sizes[2] == 500
