"""Tests for vector-index save/load (repro.index persistence)."""

import numpy as np
import pytest

from repro.index import (
    INDEX_FORMAT,
    BlockedExactIndex,
    ExactIndex,
    IVFIndex,
    IndexConfig,
    build_index,
    load_index,
)


def _matrix(size=64, dim=8, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(size, dim))


def _build(backend, matrix, **kwargs):
    return build_index(
        matrix, metric="cosine",
        config=IndexConfig(backend=backend, **kwargs),
    )


BACKENDS = ("exact", "blocked", "ivf")


class TestRoundTrip:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_search_results_survive_save_load(self, backend, tmp_path):
        matrix = _matrix()
        index = _build(backend, matrix)
        path = tmp_path / "index.npz"
        index.save(path)
        loaded = load_index(path)
        assert type(loaded) is type(index)
        assert len(loaded) == len(index)
        assert loaded.dim == index.dim
        for seed in range(5):
            query = _matrix(size=1, dim=8, seed=100 + seed)[0]
            ids, sims = index.search(query, 10)
            loaded_ids, loaded_sims = loaded.search(query, 10)
            assert ids.tolist() == loaded_ids.tolist()
            assert np.allclose(sims, loaded_sims)

    def test_blocked_preserves_block_rows(self, tmp_path):
        index = _build("blocked", _matrix(), block_rows=7)
        index.save(tmp_path / "index.npz")
        loaded = load_index(tmp_path / "index.npz")
        assert isinstance(loaded, BlockedExactIndex)
        assert loaded.block_rows == 7

    def test_ivf_preserves_clustering_and_nprobe(self, tmp_path):
        index = _build("ivf", _matrix(size=128), num_clusters=8, nprobe=3)
        index.save(tmp_path / "index.npz")
        loaded = load_index(tmp_path / "index.npz")
        assert isinstance(loaded, IVFIndex)
        assert loaded.nprobe == 3
        assert np.array_equal(loaded._centroids, index._centroids)
        assert np.array_equal(loaded._assignment, index._assignment)

    def test_ivf_load_does_not_recluster(self, tmp_path, monkeypatch):
        index = _build("ivf", _matrix(size=128), num_clusters=8)
        index.save(tmp_path / "index.npz")

        def explode(*args, **kwargs):
            raise AssertionError("load must not re-run k-means")

        import repro.index.ivf as ivf_module

        monkeypatch.setattr(ivf_module, "_kmeans", explode)
        loaded = load_index(tmp_path / "index.npz")
        query = _matrix(size=1, dim=8, seed=9)[0]
        ids, _ = loaded.search(query, 5)
        assert len(ids) == 5

    def test_describe_names_backend(self):
        index = _build("exact", _matrix())
        meta = index.describe()
        assert meta["backend"] == "exact"
        assert meta["size"] == 64 and meta["dim"] == 8


class TestDeterminism:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_saving_twice_yields_identical_bytes(self, backend, tmp_path):
        matrix = _matrix()
        index = _build(backend, matrix)
        first, second = tmp_path / "a.npz", tmp_path / "b.npz"
        index.save(first)
        index.save(second)
        assert first.read_bytes() == second.read_bytes()

    def test_rebuilt_index_same_bytes(self, tmp_path):
        # Two independent builds over the same matrix serialize
        # identically — the property the store's digests depend on.
        matrix = _matrix()
        first, second = tmp_path / "a.npz", tmp_path / "b.npz"
        _build("exact", matrix).save(first)
        _build("exact", matrix).save(second)
        assert first.read_bytes() == second.read_bytes()


class TestLoadValidation:
    def test_non_index_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, vectors=np.zeros((2, 2)))
        with pytest.raises(ValueError, match="not a saved vector index"):
            load_index(path)

    def test_wrong_format_rejected(self, tmp_path):
        import json

        path = tmp_path / "wrong.npz"
        header = json.dumps({"format": "something-else"}).encode()
        np.savez(
            path,
            header=np.frombuffer(header, dtype=np.uint8),
            vectors=np.zeros((2, 2)),
        )
        with pytest.raises(ValueError, match=INDEX_FORMAT):
            load_index(path)
