"""Unit tests for the vector-index subsystem (repro.index)."""

import numpy as np
import pytest

from repro.index import (
    PAD_ID,
    BlockedExactIndex,
    ExactIndex,
    IVFIndex,
    IndexConfig,
    build_index,
    default_nprobe,
    default_num_clusters,
    top_ids_desc,
    unit_rows,
)
from repro.obs.metrics import MetricsRegistry


def _matrix(size=64, dim=8, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(size, dim))


def _brute_force_cosine(matrix, query, n):
    unit = unit_rows(matrix)
    q = query / max(np.linalg.norm(query), 1e-12)
    sims = unit @ q
    top = np.argpartition(-sims, n - 1)[:n]
    return top[np.argsort(-sims[top], kind="stable")]


def _brute_force_euclidean(matrix, query, n):
    deltas = matrix - query
    distances = np.einsum("ij,ij->i", deltas, deltas)
    top = np.argpartition(distances, n - 1)[:n]
    return top[np.argsort(distances[top], kind="stable")]


class TestTopIdsDesc:
    def test_orders_descending_with_stable_ties(self):
        scores = np.array([0.5, 0.9, 0.5, 0.1])
        assert top_ids_desc(scores, 3).tolist() == [1, 0, 2]

    def test_n_clamped_to_length(self):
        assert len(top_ids_desc(np.array([1.0, 2.0]), 10)) == 2

    def test_non_positive_n_is_empty(self):
        out = top_ids_desc(np.array([1.0, 2.0]), 0)
        assert out.dtype == np.int64 and len(out) == 0
        assert len(top_ids_desc(np.array([1.0]), -3)) == 0


class TestConfig:
    def test_defaults_validate(self):
        IndexConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"backend": "faiss"},
            {"block_rows": 0},
            {"num_clusters": 0},
            {"nprobe": 0},
            {"kmeans_iterations": 0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            IndexConfig(**kwargs).validate()

    def test_build_index_dispatches_each_backend(self):
        matrix = _matrix()
        for backend, cls in (
            ("exact", ExactIndex),
            ("blocked", BlockedExactIndex),
            ("ivf", IVFIndex),
        ):
            index = build_index(
                matrix, config=IndexConfig(backend=backend)
            )
            assert isinstance(index, cls)
            assert index.name == backend

    def test_defaults_scale_with_size(self):
        assert default_num_clusters(10000) == 100
        assert default_num_clusters(1) == 1
        assert default_nprobe(100) == 50
        assert default_nprobe(1) == 1


class TestContract:
    """Behaviour every backend must share."""

    def _backends(self, matrix, metric="cosine"):
        return [
            ExactIndex(matrix, metric=metric),
            BlockedExactIndex(matrix, metric=metric, block_rows=17),
            IVFIndex(matrix, metric=metric, num_clusters=4),
        ]

    def test_search_non_positive_n_is_empty(self):
        for index in self._backends(_matrix()):
            ids, scores = index.search(np.ones(8), 0)
            assert len(ids) == 0 and len(scores) == 0
            ids, _ = index.search(np.ones(8), -2)
            assert len(ids) == 0

    def test_search_n_clamped_to_size(self):
        for index in self._backends(_matrix(size=10)):
            ids, _ = index.search(np.ones(8), 50)
            assert len(ids) <= 10

    def test_batch_matches_single(self):
        matrix = _matrix()
        queries = _matrix(size=5, seed=3)
        for index in self._backends(matrix):
            batch_ids, batch_scores = index.search_batch(queries, 7)
            assert batch_ids.shape == (5, 7)
            for row, query in enumerate(queries):
                ids, scores = index.search(query, 7)
                got = batch_ids[row][batch_ids[row] >= 0]
                np.testing.assert_array_equal(got, ids)
                np.testing.assert_allclose(
                    batch_scores[row][: len(scores)], scores,
                    rtol=1e-5, atol=1e-6,
                )

    def test_batch_empty_inputs(self):
        for index in self._backends(_matrix()):
            ids, scores = index.search_batch(np.empty((0, 8)), 5)
            assert ids.shape == (0, 5) or ids.shape == (0, 0)
            ids, _ = index.search_batch(np.ones((3, 8)), 0)
            assert ids.shape == (3, 0)

    def test_scores_all_is_exhaustive(self):
        matrix = _matrix()
        query = np.arange(8, dtype=float)
        expected = unit_rows(matrix) @ (query / np.linalg.norm(query))
        for index in self._backends(matrix):
            np.testing.assert_allclose(
                index.scores_all(query), expected, rtol=1e-12
            )

    def test_rejects_bad_shapes(self):
        index = ExactIndex(_matrix())
        with pytest.raises(ValueError):
            index.search(np.ones(5), 3)          # wrong dim
        with pytest.raises(ValueError):
            index.search_batch(np.ones((2, 5)), 3)
        with pytest.raises(ValueError):
            ExactIndex(np.ones(4))               # 1-D
        with pytest.raises(ValueError):
            ExactIndex(np.empty((0, 4)))         # empty
        with pytest.raises(ValueError):
            ExactIndex(_matrix(), metric="manhattan")

    def test_zero_query_cosine_is_safe(self):
        for index in self._backends(_matrix()):
            ids, scores = index.search(np.zeros(8), 3)
            assert np.isfinite(scores).all()


class TestExactness:
    """Exact and blocked reproduce the historical brute-force ordering."""

    def test_exact_cosine_bitwise(self):
        matrix, query = _matrix(), np.arange(8, dtype=float) - 3.0
        index = ExactIndex(matrix)
        ids, scores = index.search(query, 9)
        expected = _brute_force_cosine(matrix, query, 9)
        np.testing.assert_array_equal(ids, expected)
        unit = unit_rows(matrix)
        q = query / np.linalg.norm(query)
        np.testing.assert_array_equal(scores, (unit @ q)[expected])

    def test_exact_euclidean_bitwise(self):
        matrix, query = _matrix(), np.arange(8, dtype=float)
        index = ExactIndex(matrix, metric="euclidean")
        ids, scores = index.search(query, 9)
        expected = _brute_force_euclidean(matrix, query, 9)
        np.testing.assert_array_equal(ids, expected)
        assert (scores <= 0).all()       # negative squared distances

    @pytest.mark.parametrize("metric", ["cosine", "euclidean"])
    def test_blocked_matches_exact_sets(self, metric):
        matrix = _matrix(size=200)
        exact = ExactIndex(matrix, metric=metric)
        blocked = BlockedExactIndex(
            matrix, metric=metric, block_rows=64
        )
        for seed in range(5):
            query = _matrix(size=1, seed=seed)[0]
            e_ids, e_scores = exact.search(query, 20)
            b_ids, b_scores = blocked.search(query, 20)
            # float32 scoring may swap near-ties; the sets agree and
            # scores match to float32 precision.
            assert set(e_ids.tolist()) == set(b_ids.tolist())
            np.testing.assert_allclose(
                b_scores, e_scores, rtol=1e-5, atol=1e-5
            )


class TestIVF:
    def test_full_probe_matches_exact(self):
        matrix = _matrix(size=100)
        exact = ExactIndex(matrix)
        ivf = IVFIndex(matrix, num_clusters=8, nprobe=8)
        for seed in range(5):
            query = _matrix(size=1, seed=seed)[0]
            np.testing.assert_array_equal(
                ivf.search(query, 15)[0], exact.search(query, 15)[0]
            )

    def test_partial_probe_returns_subset_of_matrix(self):
        matrix = _matrix(size=100)
        ivf = IVFIndex(matrix, num_clusters=10, nprobe=2)
        ids, scores = ivf.search(np.ones(8), 30)
        assert len(ids) <= 30
        assert len(set(ids.tolist())) == len(ids)
        assert (np.diff(scores) <= 0).all()

    def test_batch_pads_with_pad_id(self):
        # 1 probed cell of a tiny clustered matrix can hold < n rows.
        rng = np.random.default_rng(0)
        matrix = np.vstack(
            [rng.normal(size=(10, 4)) + 20, rng.normal(size=(10, 4)) - 20]
        )
        ivf = IVFIndex(matrix, num_clusters=2, nprobe=1)
        ids, scores = ivf.search_batch(rng.normal(size=(4, 4)) + 20, 15)
        assert ids.shape == (4, 15)
        assert (ids[:, 10:] == PAD_ID).all()
        assert np.isneginf(scores[:, 10:]).all()

    def test_cells_partition_the_matrix(self):
        ivf = IVFIndex(_matrix(size=50), num_clusters=7)
        assert sum(ivf.cell_sizes) == 50
        assert min(ivf.cell_sizes) >= 1   # reseeding kills empty cells

    def test_deterministic_across_builds(self):
        matrix = _matrix(size=80)
        a = IVFIndex(matrix, num_clusters=6, seed=3)
        b = IVFIndex(matrix, num_clusters=6, seed=3)
        query = np.ones(8)
        np.testing.assert_array_equal(
            a.search(query, 10)[0], b.search(query, 10)[0]
        )

    def test_search_with_nprobe_clamps(self):
        ivf = IVFIndex(_matrix(size=40), num_clusters=5, nprobe=1)
        full, _ = ivf.search_with_nprobe(np.ones(8), 10, nprobe=99)
        exact = ExactIndex(_matrix(size=40))
        np.testing.assert_array_equal(full, exact.search(np.ones(8), 10)[0])
        assert len(ivf.search_with_nprobe(np.ones(8), 0, nprobe=2)[0]) == 0


class TestMetrics:
    def test_counters_and_histograms_flow(self):
        registry = MetricsRegistry()
        index = ExactIndex(_matrix(size=30), registry=registry)
        index.search(np.ones(8), 5)
        index.search_batch(np.ones((4, 8)), 5)
        index.scores_all(np.ones(8))
        flat = MetricsRegistry.flatten(registry.snapshot())
        queries = flat[
            'index_queries_total{backend="exact"}'
        ]
        assert queries == 1 + 4 + 1
        scanned = flat[
            'index_rows_scanned_total{backend="exact"}'
        ]
        assert scanned == 30 * 6
        assert (
            flat['index_search_seconds_count{backend="exact"}'] == 2
        )

    def test_ivf_build_histogram(self):
        registry = MetricsRegistry()
        IVFIndex(_matrix(size=30), num_clusters=3, registry=registry)
        flat = MetricsRegistry.flatten(registry.snapshot())
        assert flat['index_build_seconds_count{backend="ivf"}'] == 1

    def test_null_registry_default_measures_nothing(self):
        index = ExactIndex(_matrix(size=10))
        assert not index._measure
        index.search(np.ones(8), 3)   # must not raise
