"""Admin HTTP endpoint: the live operations plane of a running observer.

A deployed eavesdropper is a long-running process (continuous ingest,
daily retrains, generation rollovers) whose interesting state — what is
serving, how stale it is, whether the last retrain drifted — lives in
memory.  :class:`AdminServer` exposes that state over plain HTTP on a
loopback port, stdlib only:

=================  =========================================================
route              serves
=================  =========================================================
``/metrics``       Prometheus text exposition of the live registry;
                   ``?scope=fleet`` merges the shard workers' latest
                   telemetry snapshots (``shard``-labelled) into it
``/healthz``       process liveness (200 as long as the thread answers)
``/readyz``        200 iff a model generation is loaded **and** the
                   supervisor is not mid-validation; 503 otherwise, with
                   a JSON body explaining which condition failed
``/varz``          JSON snapshot: run_id, serving generation, index
                   backend, uptime, checkpoint age, stream/supervisor
                   counters
``/generations``   the artifact store's manifest list
``/drift/latest``  the most recent :class:`~repro.obs.drift.DriftReport`
``/slo``           every declared objective with burn rates and budgets
``/alerts``        only the objectives whose multi-window alert is firing
``/profile``       the continuous profiler's report, or an on-demand
                   bounded burst (``?seconds=N``, collapsed/speedscope
                   via ``?format=...``)
``/flight``        the flight recorder's ring (``?dump=1`` also writes
                   the configured dump file atomically)
``/shards``        the shard coordinator's fleet state: per-worker pid,
                   liveness, sequence cursors, restarts, checkpoints,
                   plus live telemetry (events/s, lag, heartbeat age)
``/trace``         index of reassembled traces the tracer has seen
``/trace/<id>``    one trace as a span tree — coordinator-side and
                   adopted worker-side spans reassembled by parent ids
=================  =========================================================

Query parameters are validated before any work happens: unknown
parameters, non-numeric numbers, out-of-range values, and oversized
query strings are client errors (4xx) — a garbage request can never 500
or tie up the process (``/profile`` bursts are bounded to
``MAX_PROFILE_SECONDS``).

Readiness semantics (also documented in README "Operations"): the gate
window is *validation*, not degradation.  While the supervisor runs its
post-train checks (``supervisor.validating``), a rollback may be about
to replace the serving pointer, so load balancers should hold traffic —
``/readyz`` returns 503.  A *degraded* supervisor (consecutive lost
days) keeps serving the last good generation by design; that is exactly
the failure mode this system exists to survive, so ``/readyz`` stays 200
and reports ``degraded: true`` in the body for alerting.

The server threads only ever *read* shared state (the registry locks
internally; generations are immutable; model swaps are single
assignments), so attaching it to a live stream is safe without any
cooperation from the hot path.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qsl

from repro.obs.logging import get_logger, get_run_id
from repro.obs.metrics import MetricsRegistry, snapshot_to_prometheus
from repro.obs.tracing import NULL_TRACER, Tracer, span_to_wire

log = get_logger("obs.server")

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

MAX_QUERY_LENGTH = 1024
MAX_PROFILE_SECONDS = 60.0


class _ParamError(ValueError):
    """A client sent a query string we refuse to act on (HTTP 400)."""


def _parse_query(raw: str, allowed: tuple[str, ...]) -> dict[str, str]:
    """Validated query parameters; raises :class:`_ParamError` on junk."""
    if not raw:
        return {}
    if len(raw) > MAX_QUERY_LENGTH:
        raise _ParamError(
            f"query string too long ({len(raw)} > {MAX_QUERY_LENGTH})"
        )
    params: dict[str, str] = {}
    for key, value in parse_qsl(raw, keep_blank_values=True):
        if key not in allowed:
            raise _ParamError(
                f"unknown parameter {key!r}; allowed: {sorted(allowed)}"
            )
        if key in params:
            raise _ParamError(f"duplicate parameter {key!r}")
        params[key] = value
    return params


def _parse_number(
    params: dict[str, str],
    key: str,
    default: float,
    minimum: float,
    maximum: float,
) -> float:
    raw = params.get(key)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise _ParamError(f"{key} must be a number, got {raw!r}") from None
    if value != value or not minimum <= value <= maximum:
        raise _ParamError(
            f"{key} must be in [{minimum:g}, {maximum:g}], got {raw!r}"
        )
    return value


def _resolve(target):
    """Attachment targets may be objects or zero-arg callables.

    Callables let a caller attach state that does not exist yet — e.g.
    the experiment runner's supervisor, which is created mid-run — and
    have the server see it the moment it appears.
    """
    return target() if callable(target) else target


class AdminServer:
    """Loopback HTTP admin plane over a live metrics registry.

    Construct with the registry, :meth:`attach` whatever operational
    state exists (stream, store, supervisor, pipeline), then
    :meth:`start`.  ``port=0`` binds an ephemeral port (read it back
    from :attr:`port` after start); the route handlers are also plain
    methods (:meth:`ready`, :meth:`varz`, ...) so tests and the
    ``doctor`` bundle can ask the same questions without HTTP.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        tracer: Tracer | None = None,
        run_id: str | None = None,
    ):
        self.registry = registry
        self.host = host
        self._requested_port = port
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.run_id = run_id
        self._stream = None
        self._store = None
        self._supervisor = None
        self._pipeline = None
        self._checkpoint_path = None
        self._slo_engine = None
        self._profiler = None
        self._flight = None
        self._flight_path = None
        self._coordinator = None
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._started_at: float | None = None
        self._requests_total = registry.counter(
            "admin_requests_total",
            "Admin-endpoint requests served, by route and status.",
            labelnames=("route", "status"),
        )

    def attach(
        self,
        stream=None,
        store=None,
        supervisor=None,
        pipeline=None,
        checkpoint_path=None,
        slo_engine=None,
        profiler=None,
        flight=None,
        flight_path=None,
        coordinator=None,
    ) -> "AdminServer":
        """Attach live state; each argument may be the object or a thunk.

        Only non-None arguments are updated, so components can attach
        themselves as they come up.  Returns self for chaining.
        """
        if stream is not None:
            self._stream = stream
        if store is not None:
            self._store = store
        if supervisor is not None:
            self._supervisor = supervisor
        if pipeline is not None:
            self._pipeline = pipeline
        if checkpoint_path is not None:
            self._checkpoint_path = checkpoint_path
        if slo_engine is not None:
            self._slo_engine = slo_engine
        if profiler is not None:
            self._profiler = profiler
        if flight is not None:
            self._flight = flight
        if flight_path is not None:
            self._flight_path = flight_path
        if coordinator is not None:
            self._coordinator = coordinator
        return self

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "AdminServer":
        if self._httpd is not None:
            raise RuntimeError("admin server already started")
        server = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 (stdlib handler contract)
                server._handle(self)

            def log_message(self, format, *args):
                pass   # requests go to admin_requests_total, not stderr

        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), _Handler
        )
        self._httpd.daemon_threads = True
        self._started_at = time.time()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="admin-server",
            daemon=True,
        )
        self._thread.start()
        log.info("admin server listening", host=self.host, port=self.port)
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested_port

    def url(self, path: str = "") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def __enter__(self) -> "AdminServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- state questions (HTTP-free, reused by tests and doctor) -------------

    def model_loaded(self) -> bool:
        stream = _resolve(self._stream)
        if stream is not None:
            return bool(stream.has_model)
        pipeline = _resolve(self._pipeline)
        if pipeline is not None:
            return bool(getattr(pipeline, "is_trained", False))
        return False

    def ready(self) -> tuple[bool, dict]:
        """(ready?, explanatory body) — the ``/readyz`` contract."""
        supervisor = _resolve(self._supervisor)
        loaded = self.model_loaded()
        validating = bool(supervisor.validating) if supervisor else False
        ready = loaded and not validating
        body = {
            "ready": ready,
            "model_loaded": loaded,
            "validating": validating,
            "serving_generation": self._serving_generation(),
        }
        if supervisor is not None:
            body["degraded"] = bool(supervisor.is_degraded)
            body["consecutive_failures"] = supervisor.consecutive_failures
        return ready, body

    def _serving_generation(self) -> str | None:
        stream = _resolve(self._stream)
        if stream is not None:
            generation = getattr(stream, "serving_generation", None)
            if generation is not None:
                return generation
        store = _resolve(self._store)
        if store is not None:
            return store.latest_id()
        return None

    def _index_backend(self) -> str | None:
        stream = _resolve(self._stream)
        if stream is not None and stream.index_backend is not None:
            return stream.index_backend
        pipeline = _resolve(self._pipeline)
        if pipeline is not None:
            try:
                return pipeline.profiler.index_backend
            except Exception:
                return None
        return None

    def varz(self) -> dict:
        """The ``/varz`` JSON: one glance at what this process is doing."""
        now = time.time()
        stream = _resolve(self._stream)
        supervisor = _resolve(self._supervisor)
        body: dict = {
            "run_id": self.run_id or get_run_id(),
            "uptime_seconds": (
                None if self._started_at is None
                else round(now - self._started_at, 3)
            ),
            "serving_generation": self._serving_generation(),
            "index_backend": self._index_backend(),
            "model_loaded": self.model_loaded(),
        }
        if stream is not None:
            checkpoint_time = stream.last_checkpoint_time
            body["stream"] = {
                "events_seen": stream.events_seen,
                "profiles_emitted": stream.profiles_emitted,
                "model_swaps": stream.model_swaps,
                "active_clients": stream.active_clients,
                "checkpoint_age_seconds": (
                    None if checkpoint_time is None
                    else round(now - checkpoint_time, 3)
                ),
            }
        if supervisor is not None:
            body["supervisor"] = {
                "successes": supervisor.successes,
                "failed_days": len(supervisor.failed_days),
                "consecutive_failures": supervisor.consecutive_failures,
                "degraded": bool(supervisor.is_degraded),
                "validating": bool(supervisor.validating),
                "last_success_day": supervisor.last_success_day,
            }
        coordinator = _resolve(self._coordinator)
        if coordinator is not None:
            fleet = coordinator.status()
            body["fleet"] = {
                "workers": fleet["num_shards"],
                "num_shards": fleet["num_shards"],
                "salt": fleet["salt"],
                "restarts": fleet["restarts"],
                "started": fleet["started"],
                "finished": fleet["finished"],
            }
        return body

    def generations(self) -> dict | None:
        """The ``/generations`` JSON; None without an attached store."""
        store = _resolve(self._store)
        if store is None:
            return None
        serving = store.latest_id()
        return {
            "serving": serving,
            "generations": [
                {
                    "generation_id": record.generation_id,
                    "created_from_day": record.created_from_day,
                    "created_at": record.created_at,
                    "components": sorted(record.components),
                    "index_backend": record.index_meta.get("backend"),
                    "serving": record.generation_id == serving,
                }
                for record in store.list_generations()
            ],
        }

    def drift_latest(self) -> dict | None:
        """Most recent drift report: live supervisor first, then store."""
        supervisor = _resolve(self._supervisor)
        if supervisor is not None:
            report = getattr(supervisor, "last_drift_report", None)
            if report is not None:
                return report.to_dict()
        store = _resolve(self._store)
        if store is not None:
            from repro.store import DRIFT_REPORT_COMPONENT

            for record in reversed(store.list_generations()):
                if record.has_component(DRIFT_REPORT_COMPONENT):
                    return json.loads(
                        record.component_path(
                            DRIFT_REPORT_COMPONENT
                        ).read_text()
                    )
        return None

    def slo_report(self) -> dict | None:
        """The ``/slo`` JSON; None without an attached engine."""
        engine = _resolve(self._slo_engine)
        if engine is None:
            return None
        return engine.slo_report()

    def alerts_report(self) -> dict | None:
        """The ``/alerts`` JSON; None without an attached engine."""
        engine = _resolve(self._slo_engine)
        if engine is None:
            return None
        return engine.alerts_report()

    def profile_burst(self, seconds: float, hz: float):
        """A bounded on-demand burst on a *fresh* profiler instance.

        Each request gets its own sampler, so concurrent bursts (or a
        burst alongside the continuous profiler) never contend on state.
        """
        from repro.obs.profile import SamplingProfiler

        profiler = SamplingProfiler(hz=hz, registry=self.registry)
        profiler.run_for(seconds)
        return profiler

    def flight_report(self, dump: bool = False) -> dict | None:
        """The ``/flight`` JSON; None without an attached recorder."""
        flight = _resolve(self._flight)
        if flight is None:
            return None
        body = flight.report(reason="admin-route")
        if dump and self._flight_path is not None:
            body["dump_path"] = str(
                flight.dump(self._flight_path, reason="admin-route")
            )
        return body

    def shards_report(self) -> dict | None:
        """The ``/shards`` JSON; None without an attached coordinator."""
        coordinator = _resolve(self._coordinator)
        if coordinator is None:
            return None
        return coordinator.status()

    def fleet_exposition(self) -> str | None:
        """``/metrics?scope=fleet``: the coordinator's merged snapshot
        (its own registry + every shard's latest telemetry frame,
        ``shard``-labelled) rendered as Prometheus text.  None without
        an attached coordinator."""
        coordinator = _resolve(self._coordinator)
        if coordinator is None:
            return None
        return snapshot_to_prometheus(
            coordinator.fleet_metrics_snapshot(), exemplars=True
        )

    def traces_report(self, limit: int = 100) -> dict:
        """The ``/trace`` index: recently completed traces, newest first."""
        traces: dict[str, dict] = {}
        for root in self.tracer.spans():
            for span in root.walk():
                if not span.trace_id:
                    continue
                entry = traces.setdefault(span.trace_id, {
                    "trace_id": span.trace_id,
                    "spans": 0,
                    "start_wall": span.start_wall,
                    "names": set(),
                })
                entry["spans"] += 1
                entry["start_wall"] = min(
                    entry["start_wall"], span.start_wall
                )
                entry["names"].add(span.name)
        listing = sorted(
            traces.values(), key=lambda e: e["start_wall"], reverse=True
        )[:limit]
        for entry in listing:
            entry["names"] = sorted(entry["names"])
        return {"count": len(traces), "traces": listing}

    def trace_report(self, trace_id: str) -> dict | None:
        """The ``/trace/<id>`` JSON: the trace's spans reassembled into
        trees by parent span id (a span whose parent was not recorded —
        e.g. the worker half arriving before the coordinator half is
        queried — becomes its own root).  None for an unknown id."""
        spans = self.tracer.trace_spans(trace_id)
        if not spans:
            return None
        nodes = {}
        for span in spans:
            wire = span_to_wire(span, children=False)
            wire["children"] = []
            nodes[id(span)] = (span, wire)
        by_span_id = {
            span.span_id: wire
            for span, wire in nodes.values()
            if span.span_id
        }
        roots = []
        for span, wire in nodes.values():
            parent = (
                by_span_id.get(span.parent_span_id)
                if span.parent_span_id else None
            )
            if parent is not None and parent is not wire:
                parent["children"].append(wire)
            else:
                roots.append(wire)
        return {
            "trace_id": trace_id,
            "span_count": len(spans),
            "roots": roots,
        }

    def _serve_profile(self, query: str) -> tuple[int, str, bytes]:
        """The ``/profile`` route: continuous report or bounded burst."""
        params = _parse_query(query, ("seconds", "hz", "format"))
        fmt = params.get("format", "report")
        if fmt not in ("report", "collapsed", "speedscope"):
            raise _ParamError(
                f"format must be report, collapsed or speedscope, "
                f"got {fmt!r}"
            )
        if "seconds" in params:
            seconds = _parse_number(
                params, "seconds", 5.0, 0.1, MAX_PROFILE_SECONDS
            )
            hz = _parse_number(params, "hz", 100.0, 1.0, 1000.0)
            profiler = self.profile_burst(seconds, hz)
        else:
            if "hz" in params:
                raise _ParamError("hz only applies to ?seconds= bursts")
            profiler = _resolve(self._profiler)
            if profiler is None:
                return _not_found(
                    "no continuous profiler attached; "
                    "request a burst with ?seconds=N"
                )
        if fmt == "collapsed":
            return 200, "text/plain; charset=utf-8", (
                profiler.to_collapsed().encode()
            )
        if fmt == "speedscope":
            return 200, "application/json", (
                json.dumps(profiler.to_speedscope()) + "\n"
            ).encode()
        return 200, "application/json", _json_bytes(profiler.report())

    # -- request dispatch ----------------------------------------------------

    def _handle(self, handler: BaseHTTPRequestHandler) -> None:
        path, _, query = handler.path.partition("?")
        route = path.rstrip("/") or "/"
        try:
            if route == "/metrics":
                params = _parse_query(query, ("format", "scope"))
                fmt = params.get("format", "prometheus")
                scope = params.get("scope", "process")
                if scope not in ("process", "fleet"):
                    raise _ParamError(
                        f"scope must be process or fleet, got {scope!r}"
                    )
                if scope == "fleet":
                    if fmt != "prometheus":
                        raise _ParamError(
                            "scope=fleet renders a merged snapshot and "
                            "supports format=prometheus only"
                        )
                    text = self.fleet_exposition()
                    if text is None:
                        status, content_type, payload = _not_found(
                            "no shard coordinator attached"
                        )
                    else:
                        status, content_type, payload = (
                            200, PROMETHEUS_CONTENT_TYPE, text.encode()
                        )
                elif fmt == "prometheus":
                    status, content_type, payload = (
                        200, PROMETHEUS_CONTENT_TYPE,
                        self.registry.to_prometheus().encode(),
                    )
                elif fmt == "openmetrics":
                    status, content_type, payload = (
                        200, OPENMETRICS_CONTENT_TYPE,
                        self.registry.to_openmetrics().encode(),
                    )
                else:
                    raise _ParamError(
                        f"format must be prometheus or openmetrics, "
                        f"got {fmt!r}"
                    )
            elif route == "/healthz":
                _parse_query(query, ())
                status, content_type, payload = (
                    200, "application/json", b'{"ok": true}\n'
                )
            elif route == "/readyz":
                _parse_query(query, ())
                ready, body = self.ready()
                status = 200 if ready else 503
                content_type, payload = "application/json", _json_bytes(body)
            elif route == "/varz":
                _parse_query(query, ())
                status, content_type, payload = (
                    200, "application/json", _json_bytes(self.varz())
                )
            elif route == "/generations":
                _parse_query(query, ())
                body = self.generations()
                if body is None:
                    status, content_type, payload = _not_found(
                        "no artifact store attached"
                    )
                else:
                    status, content_type, payload = (
                        200, "application/json", _json_bytes(body)
                    )
            elif route == "/drift/latest":
                _parse_query(query, ())
                body = self.drift_latest()
                if body is None:
                    status, content_type, payload = _not_found(
                        "no drift report yet"
                    )
                else:
                    status, content_type, payload = (
                        200, "application/json", _json_bytes(body)
                    )
            elif route == "/slo":
                _parse_query(query, ())
                body = self.slo_report()
                if body is None:
                    status, content_type, payload = _not_found(
                        "no SLO engine attached"
                    )
                else:
                    status, content_type, payload = (
                        200, "application/json", _json_bytes(body)
                    )
            elif route == "/alerts":
                _parse_query(query, ())
                body = self.alerts_report()
                if body is None:
                    status, content_type, payload = _not_found(
                        "no SLO engine attached"
                    )
                else:
                    status, content_type, payload = (
                        200, "application/json", _json_bytes(body)
                    )
            elif route == "/shards":
                _parse_query(query, ())
                body = self.shards_report()
                if body is None:
                    status, content_type, payload = _not_found(
                        "no shard coordinator attached"
                    )
                else:
                    status, content_type, payload = (
                        200, "application/json", _json_bytes(body)
                    )
            elif route == "/trace" or route.startswith("/trace/"):
                _parse_query(query, ())
                trace_id = route[len("/trace/"):] if route != "/trace" else ""
                route = "/trace"   # one bounded label for every trace id
                if not trace_id:
                    status, content_type, payload = (
                        200, "application/json",
                        _json_bytes(self.traces_report()),
                    )
                elif "/" in trace_id:
                    raise _ParamError(
                        f"malformed trace id {trace_id!r}"
                    )
                else:
                    body = self.trace_report(trace_id)
                    if body is None:
                        status, content_type, payload = _not_found(
                            f"no spans recorded for trace {trace_id!r}"
                        )
                    else:
                        status, content_type, payload = (
                            200, "application/json", _json_bytes(body)
                        )
            elif route == "/profile":
                status, content_type, payload = self._serve_profile(query)
            elif route == "/flight":
                params = _parse_query(query, ("dump",))
                dump = params.get("dump")
                if dump is not None and dump not in ("0", "1"):
                    raise _ParamError(f"dump must be 0 or 1, got {dump!r}")
                body = self.flight_report(dump=dump == "1")
                if body is None:
                    status, content_type, payload = _not_found(
                        "no flight recorder attached"
                    )
                else:
                    status, content_type, payload = (
                        200, "application/json", _json_bytes(body)
                    )
            else:
                status, content_type, payload = _not_found(
                    f"unknown route {route!r}"
                )
                route = "<other>"   # unbounded label values are a leak
        except _ParamError as error:
            status = 400
            content_type = "application/json"
            payload = _json_bytes({"error": str(error)})
        except Exception as error:   # a broken route must not kill serving
            status = 500
            content_type = "application/json"
            payload = _json_bytes(
                {"error": f"{type(error).__name__}: {error}"}
            )
            log.error(
                "admin route failed", route=route,
                error=f"{type(error).__name__}: {error}",
            )
        self._requests_total.labels(route=route, status=str(status)).inc()
        handler.send_response(status)
        handler.send_header("Content-Type", content_type)
        handler.send_header("Content-Length", str(len(payload)))
        handler.end_headers()
        handler.wfile.write(payload)


def _json_bytes(body: dict) -> bytes:
    return (json.dumps(body, indent=2, sort_keys=True) + "\n").encode()


def _not_found(reason: str) -> tuple[int, str, bytes]:
    return 404, "application/json", _json_bytes({"error": reason})
