"""SLO engine: declarative objectives with multi-window burn-rate alerts.

Aggregate telemetry says what the pipeline *did*; an SLO says whether it
is *meeting its objective* — and, when it is not, how fast the error
budget is burning.  This module evaluates declarative objectives over the
live :class:`~repro.obs.metrics.MetricsRegistry`:

* **latency** — a quantile bound on an (unlabelled) histogram, e.g.
  ``profile_latency_seconds p99 < 50 ms``.  An observation above the
  threshold bucket is a *bad event*; the error budget is ``1 - quantile``
  (p99 ⇒ 1 % of events may be slow).
* **ratio** — a bad-events/total-events bound over two counter families,
  e.g. quarantined packets / stream events ``< 1 %``.  The threshold *is*
  the budget.
* **gauge_min** / **gauge_max** — an instantaneous floor/ceiling on a
  gauge, e.g. the drift monitor's neighbour-overlap@k (a live recall
  proxy) must stay above a floor.  Gauges that still read exactly 0.0 are
  treated as "not yet measured" and skipped.

Burn rate follows the standard multi-window definition: the bad-event
fraction over a trailing window divided by the error budget (burn 1.0 =
exactly consuming budget; 14.4 = a 30-day budget gone in 2 days).  An
alert fires only when **both** the fast window (default 5 m) and the slow
window (default 1 h) exceed their burn thresholds — the slow window
confirms real budget loss, the fast window makes the alert clear quickly
once the condition recovers.

The engine keeps a bounded ring of flattened registry snapshots (one per
:meth:`SLOEngine.evaluate` call) to compute windowed deltas; it can run
on its own daemon thread (:meth:`start`) or be driven by the admin
server's ``/slo`` and ``/alerts`` routes, which evaluate on demand.
States are also recorded as ``slo_*`` metrics so dashboards and the
flight recorder see alert transitions.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry, _label_suffix

log = get_logger("obs.slo")

KINDS = ("latency", "ratio", "gauge_min", "gauge_max")


@dataclass(frozen=True)
class SLO:
    """One declarative objective over registry metrics."""

    name: str                      # stable identifier ("profile-latency-p99")
    kind: str                      # one of KINDS
    threshold: float               # seconds / ratio bound / gauge bound
    metric: str = ""               # histogram (latency) or gauge name
    quantile: float = 0.99         # latency kind only
    numerator: str = ""            # ratio kind: bad-event counter family
    denominator: str = ""          # ratio kind: total-event counter family
    description: str = ""

    def validate(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"SLO kind must be one of {KINDS}, got {self.kind!r}"
            )
        if self.kind in ("latency", "gauge_min", "gauge_max") and not self.metric:
            raise ValueError(f"SLO {self.name!r}: metric is required")
        if self.kind == "ratio" and not (self.numerator and self.denominator):
            raise ValueError(
                f"SLO {self.name!r}: numerator and denominator are required"
            )
        if self.kind == "latency" and not 0.0 < self.quantile < 1.0:
            raise ValueError(
                f"SLO {self.name!r}: quantile must be in (0, 1)"
            )

    @property
    def budget(self) -> float:
        """Allowed bad-event fraction (error budget)."""
        if self.kind == "latency":
            return 1.0 - self.quantile
        if self.kind == "ratio":
            return self.threshold
        return 0.0  # gauge objectives are instantaneous, no budget


def default_slos() -> list[SLO]:
    """The stock objectives shipped with ``stream --slo``."""
    return [
        SLO(
            name="profile-latency-p99",
            kind="latency",
            metric="profile_latency_seconds",
            quantile=0.99,
            threshold=0.05,
            description="99% of session profiles computed in under 50 ms.",
        ),
        SLO(
            name="stream-quarantine-ratio",
            kind="ratio",
            numerator="quarantine_admitted_total",
            denominator="stream_events_total",
            threshold=0.01,
            description="Under 1% of stream events quarantined as malformed.",
        ),
        SLO(
            name="index-recall-floor",
            kind="gauge_min",
            metric="drift_neighbour_overlap",
            threshold=0.50,
            description=(
                "Live recall proxy: drift-check neighbour overlap@k must "
                "stay above the floor."
            ),
        ),
    ]


def fleet_slos(
    max_heartbeat_age_seconds: float = 5.0,
    max_lag_skew_batches: float = 256.0,
) -> list[SLO]:
    """Straggler objectives over the FleetMonitor's ``fleet_*`` gauges.

    Both are ``gauge_max`` (instantaneous) objectives, so they fire the
    evaluation after the condition appears and clear the evaluation
    after it goes away — a SIGSTOPped worker fires ``fleet-straggler``
    within one heartbeat timeout, and a SIGCONT (or a respawn that
    resumes acking) clears it.  The gauges read 0.0 until the monitor's
    first update, which the engine treats as "not yet measured".

    ``stream --workers N --slo`` appends these to :func:`default_slos`.
    """
    return [
        SLO(
            name="fleet-straggler",
            kind="gauge_max",
            metric="fleet_max_heartbeat_age_seconds",
            threshold=max_heartbeat_age_seconds,
            description=(
                "Every live shard worker heartbeats (ships a telemetry "
                "frame) within the timeout; a silent worker is stuck."
            ),
        ),
        SLO(
            name="fleet-lag-skew",
            kind="gauge_max",
            metric="fleet_lag_skew_batches",
            threshold=max_lag_skew_batches,
            description=(
                "No shard's unacked replay backlog may run away from "
                "its peers'; skew means one worker is falling behind."
            ),
        ),
    ]


@dataclass
class SLOState:
    """The evaluated condition of one SLO at one instant."""

    slo: SLO
    ok: bool = True
    alerting: bool = False
    skipped: bool = False          # gauge not yet measured / no events
    current: float | None = None   # measured quantile / ratio / gauge value
    burn_fast: float = 0.0
    burn_slow: float = 0.0
    bad_events: float = 0.0        # cumulative since engine start
    total_events: float = 0.0
    budget_remaining: float = 1.0  # of the cumulative budget, [0, 1]
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "name": self.slo.name,
            "kind": self.slo.kind,
            "description": self.slo.description,
            "threshold": self.slo.threshold,
            "quantile": (
                self.slo.quantile if self.slo.kind == "latency" else None
            ),
            "budget": self.slo.budget,
            "ok": self.ok,
            "alerting": self.alerting,
            "skipped": self.skipped,
            "current": self.current,
            "burn_fast": round(self.burn_fast, 4),
            "burn_slow": round(self.burn_slow, 4),
            "bad_events": self.bad_events,
            "total_events": self.total_events,
            "budget_remaining": round(self.budget_remaining, 4),
            "detail": self.detail,
        }


def _family_total(flat: dict[str, float], name: str) -> float:
    """Sum of every series of counter family ``name`` in a flat snapshot."""
    prefix = name + "{"
    return sum(
        value for key, value in flat.items()
        if key == name or key.startswith(prefix)
    )


def _bucket_value(flat: dict[str, float], metric: str, le: str) -> float:
    return flat.get(f"{metric}_bucket{_label_suffix({'le': le})}", 0.0)


def _bucket_bounds(flat: dict[str, float], metric: str) -> list[str]:
    """The ``le`` spellings present for ``metric`` in a flat snapshot."""
    prefix = f'{metric}_bucket{{le="'
    bounds = []
    for key in flat:
        if key.startswith(prefix) and key.endswith('"}'):
            bounds.append(key[len(prefix):-2])
    return bounds


def estimate_quantile(
    buckets: list[tuple[float, float]], quantile: float
) -> float | None:
    """Linear-interpolated quantile from (upper bound, cumulative count).

    The Prometheus ``histogram_quantile`` estimator; None without data.
    """
    if not buckets:
        return None
    total = buckets[-1][1]
    if total <= 0:
        return None
    rank = quantile * total
    previous_bound, previous_count = 0.0, 0.0
    for bound, count in buckets:
        if count >= rank:
            if bound == float("inf"):
                return previous_bound
            if count == previous_count:
                return bound
            fraction = (rank - previous_count) / (count - previous_count)
            return previous_bound + (bound - previous_bound) * fraction
        previous_bound, previous_count = bound, count
    return buckets[-1][0]


class SLOEngine:
    """Evaluates a set of :class:`SLO` over snapshot history.

    ``clock`` is injectable (monotonic seconds) so tests can steer the
    windows without sleeping.  All public methods are thread-safe: the
    admin server evaluates on demand while the background thread (if
    started) evaluates on its cadence.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        slos: list[SLO] | None = None,
        fast_window_seconds: float = 300.0,
        slow_window_seconds: float = 3600.0,
        fast_burn_threshold: float = 14.4,
        slow_burn_threshold: float = 1.0,
        clock=time.monotonic,
    ):
        if fast_window_seconds <= 0 or slow_window_seconds <= 0:
            raise ValueError("SLO windows must be positive")
        if slow_window_seconds < fast_window_seconds:
            raise ValueError("slow window must be >= fast window")
        self.registry = registry
        self.slos = list(slos) if slos is not None else default_slos()
        for slo in self.slos:
            slo.validate()
        self.fast_window_seconds = float(fast_window_seconds)
        self.slow_window_seconds = float(slow_window_seconds)
        self.fast_burn_threshold = float(fast_burn_threshold)
        self.slow_burn_threshold = float(slow_burn_threshold)
        self._clock = clock
        self._lock = threading.Lock()
        # (monotonic instant, flattened snapshot) ring; the oldest entry
        # kept is just past the slow window so windowed deltas always
        # have a baseline.
        self._history: deque[tuple[float, dict[str, float]]] = deque()
        self._baseline: dict[str, float] | None = None
        self._states: dict[str, SLOState] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        m = registry
        self._evaluations_total = m.counter(
            "slo_evaluations_total", "SLO engine evaluation passes."
        )
        self._burn_gauge = m.gauge(
            "slo_burn_rate",
            "Error-budget burn rate, by objective and window.",
            labelnames=("slo", "window"),
        )
        self._alert_gauge = m.gauge(
            "slo_alert_active",
            "1 while the multi-window burn alert for this objective fires.",
            labelnames=("slo",),
        )
        self._budget_gauge = m.gauge(
            "slo_error_budget_remaining",
            "Cumulative error budget remaining, by objective (1.0 = intact).",
            labelnames=("slo",),
        )
        self._transitions_total = m.counter(
            "slo_alert_transitions_total",
            "Alert state flips, by objective and direction.",
            labelnames=("slo", "direction"),
        )
        # Observers called on every alert flip: (slo_name, active, state
        # dict).  The flight recorder hooks in here.
        self.on_transition: list = []

    # -- lifecycle -----------------------------------------------------------

    def start(self, interval_seconds: float = 5.0) -> "SLOEngine":
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        if self._thread is not None:
            raise RuntimeError("SLO engine already started")

        def run():
            while not self._stop.wait(interval_seconds):
                try:
                    self.evaluate()
                except Exception as error:  # evaluation must not kill serving
                    log.error(
                        "slo evaluation failed",
                        error=f"{type(error).__name__}: {error}",
                    )

        self._thread = threading.Thread(
            target=run, name="slo-engine", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # -- history -------------------------------------------------------------

    def _window_baseline(
        self, now: float, window: float
    ) -> dict[str, float] | None:
        """Newest snapshot at or before ``now - window`` (oldest as fallback).

        None when history cannot yet cover any part of the window.
        """
        target = now - window
        chosen = None
        for instant, flat in self._history:
            if instant <= target:
                chosen = flat
            else:
                break
        if chosen is not None:
            return chosen
        return self._history[0][1] if self._history else None

    # -- evaluation ----------------------------------------------------------

    def evaluate(self) -> dict[str, SLOState]:
        """Take a snapshot, update every SLO's state, return the states."""
        with self._lock:
            now = self._clock()
            flat = MetricsRegistry.flatten(self.registry.snapshot())
            if self._baseline is None:
                self._baseline = flat
            self._history.append((now, flat))
            horizon = now - self.slow_window_seconds
            while len(self._history) > 1 and self._history[1][0] <= horizon:
                self._history.popleft()
            fast_base = self._window_baseline(now, self.fast_window_seconds)
            slow_base = self._window_baseline(now, self.slow_window_seconds)
            for slo in self.slos:
                previous = self._states.get(slo.name)
                state = self._evaluate_one(slo, flat, fast_base, slow_base)
                self._states[slo.name] = state
                self._export(state)
                was_alerting = previous.alerting if previous else False
                if state.alerting != was_alerting:
                    direction = "fire" if state.alerting else "clear"
                    self._transitions_total.labels(
                        slo=slo.name, direction=direction
                    ).inc()
                    log.warning(
                        "slo alert transition",
                        slo=slo.name, direction=direction,
                        burn_fast=round(state.burn_fast, 2),
                        burn_slow=round(state.burn_slow, 2),
                    )
                    for observer in self.on_transition:
                        try:
                            observer(slo.name, state.alerting, state.to_dict())
                        except Exception:
                            pass
            self._evaluations_total.inc()
            return dict(self._states)

    def _export(self, state: SLOState) -> None:
        name = state.slo.name
        self._burn_gauge.labels(slo=name, window="fast").set(state.burn_fast)
        self._burn_gauge.labels(slo=name, window="slow").set(state.burn_slow)
        self._alert_gauge.labels(slo=name).set(1.0 if state.alerting else 0.0)
        self._budget_gauge.labels(slo=name).set(state.budget_remaining)

    def _evaluate_one(
        self,
        slo: SLO,
        flat: dict[str, float],
        fast_base: dict[str, float] | None,
        slow_base: dict[str, float] | None,
    ) -> SLOState:
        state = SLOState(slo=slo)
        if slo.kind in ("gauge_min", "gauge_max"):
            value = flat.get(slo.metric)
            if value is None or value == 0.0:
                state.skipped = True
                state.detail = f"gauge {slo.metric} not yet measured"
                return state
            state.current = value
            if slo.kind == "gauge_min":
                state.ok = value >= slo.threshold
            else:
                state.ok = value <= slo.threshold
            state.alerting = not state.ok
            state.detail = (
                f"{slo.metric} = {value:g} vs "
                f"{'floor' if slo.kind == 'gauge_min' else 'ceiling'} "
                f"{slo.threshold:g}"
            )
            return state

        bad_now, total_now = self._bad_total(slo, flat)
        bad_base, total_base = self._bad_total(slo, self._baseline)
        state.bad_events = max(0.0, bad_now - bad_base)
        state.total_events = max(0.0, total_now - total_base)
        if state.total_events <= 0:
            state.skipped = True
            state.detail = "no events yet"
            return state
        budget = slo.budget
        allowed = state.total_events * budget
        state.budget_remaining = (
            max(0.0, 1.0 - state.bad_events / allowed) if allowed > 0 else 0.0
        )
        state.burn_fast = self._window_burn(slo, flat, fast_base, budget)
        state.burn_slow = self._window_burn(slo, flat, slow_base, budget)
        if slo.kind == "latency":
            bounds = _bucket_bounds(flat, slo.metric)
            pairs = sorted(
                (float(b.replace("+Inf", "inf")),
                 _bucket_value(flat, slo.metric, b))
                for b in bounds
            )
            state.current = estimate_quantile(pairs, slo.quantile)
        else:
            state.current = bad_now / total_now if total_now else 0.0
        state.alerting = (
            state.burn_fast >= self.fast_burn_threshold
            and state.burn_slow >= self.slow_burn_threshold
        )
        state.ok = not state.alerting and state.budget_remaining > 0.0
        state.detail = (
            f"burn fast {state.burn_fast:.1f}x / slow "
            f"{state.burn_slow:.1f}x of a {budget:.2%} budget"
        )
        return state

    def _bad_total(
        self, slo: SLO, flat: dict[str, float] | None
    ) -> tuple[float, float]:
        """(bad events, total events) counters as of one flat snapshot."""
        if flat is None:
            return 0.0, 0.0
        if slo.kind == "latency":
            total = flat.get(f"{slo.metric}_count", 0.0)
            le = self._threshold_bound(slo, flat)
            good = _bucket_value(flat, slo.metric, le) if le else 0.0
            return max(0.0, total - good), total
        numerator = _family_total(flat, slo.numerator)
        denominator = _family_total(flat, slo.denominator)
        return numerator, denominator

    def _threshold_bound(
        self, slo: SLO, flat: dict[str, float]
    ) -> str | None:
        """Largest bucket ``le`` spelling not above the latency threshold."""
        best, best_value = None, None
        for spelling in _bucket_bounds(flat, slo.metric):
            if spelling == "+Inf":
                continue
            value = float(spelling)
            if value <= slo.threshold + 1e-12:
                if best_value is None or value > best_value:
                    best, best_value = spelling, value
        return best

    def _window_burn(
        self,
        slo: SLO,
        flat: dict[str, float],
        base: dict[str, float] | None,
        budget: float,
    ) -> float:
        if budget <= 0:
            return 0.0
        bad_now, total_now = self._bad_total(slo, flat)
        bad_base, total_base = self._bad_total(slo, base)
        bad = max(0.0, bad_now - bad_base)
        total = max(0.0, total_now - total_base)
        if total <= 0:
            return 0.0
        return (bad / total) / budget

    # -- reporting -----------------------------------------------------------

    def states(self, evaluate: bool = True) -> dict[str, SLOState]:
        """Current per-SLO states (optionally re-evaluating first)."""
        if evaluate:
            return self.evaluate()
        with self._lock:
            return dict(self._states)

    def slo_report(self, evaluate: bool = True) -> dict:
        """The ``/slo`` JSON: every objective and its condition."""
        states = self.states(evaluate=evaluate)
        return {
            "format": "repro-slo-v1",
            "fast_window_seconds": self.fast_window_seconds,
            "slow_window_seconds": self.slow_window_seconds,
            "fast_burn_threshold": self.fast_burn_threshold,
            "slow_burn_threshold": self.slow_burn_threshold,
            "objectives": [
                states[slo.name].to_dict()
                for slo in self.slos
                if slo.name in states
            ],
        }

    def alerts_report(self, evaluate: bool = True) -> dict:
        """The ``/alerts`` JSON: only what is firing right now."""
        states = self.states(evaluate=evaluate)
        firing = [
            state.to_dict()
            for state in states.values()
            if state.alerting
        ]
        return {
            "format": "repro-alerts-v1",
            "firing": sorted(firing, key=lambda s: s["name"]),
            "count": len(firing),
        }
