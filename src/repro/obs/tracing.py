"""Span tracing: a process-local trace tree with wall/CPU timings.

Usage::

    tracer = Tracer()
    with tracer.span("train.epoch", epoch=3):
        ...

Spans nest per thread (a span opened inside another becomes its child),
carry arbitrary JSON-safe tags, and record wall time, CPU time and the
opening thread.  Two exports:

* :meth:`Tracer.to_chrome_trace` — the Chrome ``trace_event`` JSON format
  (an object with a ``traceEvents`` list of complete ``"ph": "X"``
  events), loadable in ``chrome://tracing`` and https://ui.perfetto.dev;
* :meth:`Tracer.summary` — a human-readable table aggregated by span
  name (calls, total/mean wall, total CPU), for CLI output and logs.

:class:`NullTracer` is the no-op default for instrumented code paths, so
tracing costs nothing unless a real tracer is passed in.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class Span:
    """One timed region; ``children`` are the spans opened inside it."""

    name: str
    tags: dict
    start_wall: float            # epoch seconds (time.time)
    duration: float = 0.0        # wall seconds
    cpu_time: float = 0.0        # process CPU seconds
    thread_id: int = 0
    children: list["Span"] = field(default_factory=list)

    def walk(self):
        """This span, then every descendant (depth first)."""
        yield self
        for child in self.children:
            yield from child.walk()


class Tracer:
    """Collects spans into per-thread trees; thread-safe."""

    null = False

    def __init__(self) -> None:
        self._roots: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **tags):
        """Open a span for the duration of the ``with`` block."""
        record = Span(
            name=name,
            tags=tags,
            start_wall=time.time(),
            thread_id=threading.get_ident(),
        )
        start_perf = time.perf_counter()
        start_cpu = time.process_time()
        stack = self._stack()
        stack.append(record)
        try:
            yield record
        finally:
            record.duration = time.perf_counter() - start_perf
            record.cpu_time = time.process_time() - start_cpu
            stack.pop()
            if stack:
                stack[-1].children.append(record)
            else:
                with self._lock:
                    self._roots.append(record)

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def spans(self) -> list[Span]:
        """Completed root spans (their subtrees hang off ``children``)."""
        with self._lock:
            return list(self._roots)

    # -- exports -------------------------------------------------------------

    def to_chrome_trace(self) -> dict:
        """The ``chrome://tracing`` / Perfetto ``trace_event`` JSON object."""
        events = []
        for root in self.spans():
            for span in root.walk():
                event = {
                    "name": span.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": span.start_wall * 1e6,       # microseconds
                    "dur": span.duration * 1e6,
                    "pid": os.getpid(),
                    "tid": span.thread_id,
                }
                if span.tags or span.cpu_time:
                    event["args"] = dict(span.tags)
                    event["args"]["cpu_time_s"] = round(span.cpu_time, 6)
                events.append(event)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path) -> int:
        """Write the trace file; returns the number of events."""
        trace = self.to_chrome_trace()
        Path(path).write_text(json.dumps(trace))
        return len(trace["traceEvents"])

    def summary(self) -> str:
        """Aggregate by span name into an aligned operator-facing table."""
        totals: dict[str, list[float]] = {}  # name -> [calls, wall, cpu]
        for root in self.spans():
            for span in root.walk():
                row = totals.setdefault(span.name, [0, 0.0, 0.0])
                row[0] += 1
                row[1] += span.duration
                row[2] += span.cpu_time
        if not totals:
            return "trace: no spans recorded"
        rows = sorted(totals.items(), key=lambda kv: -kv[1][1])
        width = max(len("span"), max(len(name) for name in totals))
        lines = [
            f"{'span':<{width}}  {'calls':>6}  {'wall s':>9}  "
            f"{'mean ms':>9}  {'cpu s':>9}"
        ]
        for name, (calls, wall, cpu) in rows:
            mean_ms = wall / calls * 1e3
            lines.append(
                f"{name:<{width}}  {int(calls):>6}  {wall:>9.3f}  "
                f"{mean_ms:>9.3f}  {cpu:>9.3f}"
            )
        return "\n".join(lines)


class _NullSpan:
    """Reusable no-op context manager yielding None."""

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """No-op tracer: ``span()`` costs a dict build and nothing else."""

    null = True

    def span(self, name: str, **tags):
        return _NULL_SPAN

    def current(self) -> Span | None:
        return None

    def spans(self) -> list[Span]:
        return []


NULL_TRACER = NullTracer()
