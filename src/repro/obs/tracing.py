"""Span tracing: a process-local trace tree with wall/CPU timings.

Usage::

    tracer = Tracer()
    with tracer.span("train.epoch", epoch=3):
        ...

Spans nest per thread (a span opened inside another becomes its child),
carry arbitrary JSON-safe tags, and record wall time, CPU time and the
opening thread.  Two exports:

* :meth:`Tracer.to_chrome_trace` — the Chrome ``trace_event`` JSON format
  (an object with a ``traceEvents`` list of complete ``"ph": "X"``
  events), loadable in ``chrome://tracing`` and https://ui.perfetto.dev;
* :meth:`Tracer.summary` — a human-readable table aggregated by span
  name (calls, total/mean wall, total CPU), for CLI output and logs.

Timestamp basis: every duration and every span start is measured on
``time.perf_counter()`` (monotonic); a single wall-clock anchor taken at
tracer construction maps perf offsets back to epoch seconds for display.
An NTP step mid-run therefore cannot produce negative durations or a
misordered Chrome trace — the wall clock is consulted exactly once.

Request-scoped tracing: a :class:`TraceContext` (trace_id, span_id,
sampling decision) rides a :mod:`contextvars` variable.  Components that
open spans while a *sampled* context is active get trace/span/parent ids
stamped onto their spans automatically, so one session's journey —
ingest → profile → index search — can be reassembled across components
with :meth:`Tracer.trace_spans`.  :class:`HeadSampler` makes the head
decision deterministically from the client id, so the same clients are
sampled on every shard and every replay.

Cross-process traces: a context serialized with
:meth:`TraceContext.wire` crosses a process boundary (the sharded
runtime puts it on the batch wire), the remote process installs it with
:func:`TraceContext.from_wire` + :func:`use_trace`, and its completed
span trees travel back as plain dicts (:func:`span_to_wire` /
:func:`span_from_wire`).  :meth:`Tracer.adopt` grafts those remote
trees into the local tracer, so :meth:`Tracer.trace_spans` reassembles
one coordinator → worker → profile → index tree no matter which
process timed each hop.

:class:`NullTracer` is the no-op default for instrumented code paths, so
tracing costs nothing unless a real tracer is passed in.
"""

from __future__ import annotations

import contextvars
import hashlib
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

# -- request-scoped trace context -------------------------------------------


@dataclass(frozen=True)
class TraceContext:
    """One request's identity: which trace it belongs to and whether the
    head-based sampling decision kept it.

    ``span_id`` is the id of the innermost open span (the parent of the
    next span opened under this context); a fresh context has no open
    span yet, so its ``span_id`` is the empty string.
    """

    trace_id: str
    span_id: str = ""
    sampled: bool = True

    def child(self, span_id: str) -> "TraceContext":
        return TraceContext(self.trace_id, span_id, self.sampled)

    def wire(self) -> tuple:
        """The picklable form that crosses a process boundary.

        Only sampled contexts are worth shipping, so the sampling bit is
        implicit: :meth:`from_wire` always restores ``sampled=True``.
        """
        return (self.trace_id, self.span_id)

    @staticmethod
    def from_wire(wire) -> "TraceContext | None":
        if wire is None:
            return None
        trace_id, span_id = wire
        return TraceContext(str(trace_id), str(span_id), True)


_CURRENT_TRACE: contextvars.ContextVar[TraceContext | None] = (
    contextvars.ContextVar("repro_trace_context", default=None)
)


def current_trace() -> TraceContext | None:
    """The active :class:`TraceContext`, if any (sampled or not)."""
    return _CURRENT_TRACE.get()


def current_exemplar() -> str | None:
    """The active *sampled* trace id — what a histogram exemplar records."""
    ctx = _CURRENT_TRACE.get()
    if ctx is not None and ctx.sampled:
        return ctx.trace_id
    return None


@contextmanager
def use_trace(ctx: TraceContext | None):
    """Install ``ctx`` as the active trace context for the block."""
    token = _CURRENT_TRACE.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT_TRACE.reset(token)


def new_trace_id() -> str:
    return os.urandom(8).hex()


def new_span_id() -> str:
    return os.urandom(4).hex()


class HeadSampler:
    """Deterministic head-based sampling keyed on the client id.

    The decision hashes ``client_id`` (salted), so a given client is
    either always traced or never traced at a given rate — the property
    that lets per-shard traces line up and replays reproduce.  ``rate``
    is the sampled fraction in [0, 1].
    """

    # Decisions are deterministic per client, so they cache perfectly;
    # the bound only exists to keep a churning client space (spoofed
    # addresses) from growing the dict without limit.
    _CACHE_LIMIT = 1 << 16

    def __init__(self, rate: float, salt: str = "trace"):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1], got {rate}")
        self.rate = float(rate)
        self.salt = salt
        # Compare in integer space so rate=1.0 keeps everything and
        # rate=0.0 keeps nothing, with no float-edge surprises.
        self._threshold = int(self.rate * (1 << 32))
        self._decisions: dict[str, bool] = {}

    def sampled(self, client_id: str) -> bool:
        if self._threshold == 0:
            return False
        if self._threshold >= (1 << 32):
            return True
        decision = self._decisions.get(client_id)
        if decision is None:
            digest = hashlib.blake2b(
                f"{self.salt}:{client_id}".encode(), digest_size=4
            ).digest()
            decision = int.from_bytes(digest, "big") < self._threshold
            if len(self._decisions) >= self._CACHE_LIMIT:
                self._decisions.clear()
            self._decisions[client_id] = decision
        return decision

    def start(self, client_id: str) -> TraceContext | None:
        """A fresh root context for a sampled client; None otherwise."""
        if not self.sampled(client_id):
            return None
        return TraceContext(trace_id=new_trace_id())


# -- spans ------------------------------------------------------------------


@dataclass
class Span:
    """One timed region; ``children`` are the spans opened inside it."""

    name: str
    tags: dict
    start_wall: float            # epoch seconds, derived from perf_counter
    duration: float = 0.0        # wall seconds (monotonic basis)
    cpu_time: float = 0.0        # process CPU seconds
    thread_id: int = 0
    children: list["Span"] = field(default_factory=list)
    trace_id: str | None = None      # set when a sampled context was active
    span_id: str | None = None
    parent_span_id: str | None = None

    def walk(self):
        """This span, then every descendant (depth first)."""
        yield self
        for child in self.children:
            yield from child.walk()


def span_to_wire(span: Span, children: bool = True) -> dict:
    """A completed span (tree) as a JSON-safe dict for the telemetry wire."""
    wire = {
        "name": span.name,
        "tags": dict(span.tags),
        "start_wall": span.start_wall,
        "duration": span.duration,
        "cpu_time": span.cpu_time,
        "thread_id": span.thread_id,
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_span_id": span.parent_span_id,
    }
    if children:
        wire["children"] = [
            span_to_wire(child, children=True) for child in span.children
        ]
    return wire


def span_from_wire(wire: dict) -> Span:
    """Rebuild a :class:`Span` tree from its :func:`span_to_wire` dict."""
    return Span(
        name=wire["name"],
        tags=dict(wire.get("tags", {})),
        start_wall=float(wire.get("start_wall", 0.0)),
        duration=float(wire.get("duration", 0.0)),
        cpu_time=float(wire.get("cpu_time", 0.0)),
        thread_id=int(wire.get("thread_id", 0)),
        children=[
            span_from_wire(child) for child in wire.get("children", [])
        ],
        trace_id=wire.get("trace_id"),
        span_id=wire.get("span_id"),
        parent_span_id=wire.get("parent_span_id"),
    )


class Tracer:
    """Collects spans into per-thread trees; thread-safe."""

    null = False

    def __init__(self) -> None:
        self._roots: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        # The one wall-clock read of this tracer's lifetime: all span
        # starts are perf_counter offsets from this anchor, so a stepped
        # wall clock cannot skew or reorder the recorded timeline.
        self._anchor_wall = time.time()
        self._anchor_perf = time.perf_counter()

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **tags):
        """Open a span for the duration of the ``with`` block.

        If a sampled :class:`TraceContext` is active (see
        :func:`use_trace`), the span joins that trace: it records the
        trace id, a fresh span id, and its parent's span id, and becomes
        the parent of any span opened inside the block — across
        component boundaries, not just this tracer's thread stack.
        """
        record = Span(
            name=name,
            tags=tags,
            start_wall=0.0,
            thread_id=threading.get_ident(),
        )
        ctx = _CURRENT_TRACE.get()
        token = None
        if ctx is not None and ctx.sampled:
            record.trace_id = ctx.trace_id
            record.span_id = new_span_id()
            record.parent_span_id = ctx.span_id or None
            token = _CURRENT_TRACE.set(ctx.child(record.span_id))
        start_perf = time.perf_counter()
        record.start_wall = self._anchor_wall + (
            start_perf - self._anchor_perf
        )
        start_cpu = time.process_time()
        stack = self._stack()
        stack.append(record)
        try:
            yield record
        finally:
            record.duration = time.perf_counter() - start_perf
            record.cpu_time = time.process_time() - start_cpu
            stack.pop()
            if token is not None:
                _CURRENT_TRACE.reset(token)
            if stack:
                stack[-1].children.append(record)
            else:
                with self._lock:
                    self._roots.append(record)

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def spans(self) -> list[Span]:
        """Completed root spans (their subtrees hang off ``children``)."""
        with self._lock:
            return list(self._roots)

    def adopt(self, root: Span) -> None:
        """Graft a remote process's completed span tree into this tracer.

        The sharded runtime's reassembly hook: workers export their
        finished roots over the telemetry channel and the coordinator
        adopts them, so :meth:`trace_spans` sees both sides of the hop.
        """
        with self._lock:
            self._roots.append(root)

    def drain_sampled(self) -> list[Span]:
        """Remove and return completed roots that belong to some trace.

        Roots whose subtree carries no trace id stay put (they are
        process-local timing, not part of any cross-process trace); the
        returned ones are the exporter's to ship exactly once.
        """
        with self._lock:
            keep, drained = [], []
            for root in self._roots:
                if any(span.trace_id for span in root.walk()):
                    drained.append(root)
                else:
                    keep.append(root)
            self._roots = keep
        return drained

    def trace_spans(self, trace_id: str) -> list[Span]:
        """Every completed span belonging to ``trace_id``, start-ordered.

        A trace can cross component (and thread) boundaries, so its spans
        may live under several roots; this reassembles them.  This is the
        exemplar contract: a trace_id exported from a latency histogram
        bucket resolves here to the full ingest → profile → search tree.
        """
        found = [
            span
            for root in self.spans()
            for span in root.walk()
            if span.trace_id == trace_id
        ]
        found.sort(key=lambda s: s.start_wall)
        return found

    # -- exports -------------------------------------------------------------

    def to_chrome_trace(self) -> dict:
        """The ``chrome://tracing`` / Perfetto ``trace_event`` JSON object."""
        events = []
        for root in self.spans():
            for span in root.walk():
                event = {
                    "name": span.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": span.start_wall * 1e6,       # microseconds
                    "dur": span.duration * 1e6,
                    "pid": os.getpid(),
                    "tid": span.thread_id,
                }
                if span.tags or span.cpu_time or span.trace_id:
                    event["args"] = dict(span.tags)
                    event["args"]["cpu_time_s"] = round(span.cpu_time, 6)
                    if span.trace_id:
                        event["args"]["trace_id"] = span.trace_id
                        event["args"]["span_id"] = span.span_id
                        if span.parent_span_id:
                            event["args"]["parent_span_id"] = (
                                span.parent_span_id
                            )
                events.append(event)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path) -> int:
        """Write the trace file; returns the number of events."""
        trace = self.to_chrome_trace()
        Path(path).write_text(json.dumps(trace))
        return len(trace["traceEvents"])

    def summary(self) -> str:
        """Aggregate by span name into an aligned operator-facing table."""
        totals: dict[str, list[float]] = {}  # name -> [calls, wall, cpu]
        for root in self.spans():
            for span in root.walk():
                row = totals.setdefault(span.name, [0, 0.0, 0.0])
                row[0] += 1
                row[1] += span.duration
                row[2] += span.cpu_time
        if not totals:
            return "trace: no spans recorded"
        rows = sorted(totals.items(), key=lambda kv: -kv[1][1])
        width = max(len("span"), max(len(name) for name in totals))
        lines = [
            f"{'span':<{width}}  {'calls':>6}  {'wall s':>9}  "
            f"{'mean ms':>9}  {'cpu s':>9}"
        ]
        for name, (calls, wall, cpu) in rows:
            mean_ms = wall / calls * 1e3
            lines.append(
                f"{name:<{width}}  {int(calls):>6}  {wall:>9.3f}  "
                f"{mean_ms:>9.3f}  {cpu:>9.3f}"
            )
        return "\n".join(lines)


class _NullSpan:
    """Reusable no-op context manager yielding None."""

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """No-op tracer: ``span()`` costs a dict build and nothing else."""

    null = True

    def span(self, name: str, **tags):
        return _NULL_SPAN

    def current(self) -> Span | None:
        return None

    def spans(self) -> list[Span]:
        return []


NULL_TRACER = NullTracer()
