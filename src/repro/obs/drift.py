"""Generation drift monitoring: does the candidate model still look sane?

The paper's observer retrains embeddings **daily** and immediately starts
serving the new model (§5.4).  The dangerous failures of that loop are
slow and silent: the hostname mix shifts (arXiv:1710.00069 shows profile
quality is highly sensitive to the observed hostname distribution), the
embedding space reorganises (arXiv:2401.07410 shows DNS-embedding quality
degrades silently under distribution drift), label coverage decays, or
the upstream capture starts quarantining a growing share of its input.
None of those throw an exception — the retrain "succeeds" and the served
profiles quietly rot.

:class:`DriftMonitor` compares a **candidate** model (the one a retrain
just produced) against the **serving** one along four axes, plus two
stream-health anomaly detectors:

* **vocabulary churn** — Jaccard similarity of the two vocabularies; a
  collapse means the observed hostname mix changed wholesale;
* **neighbour overlap@k** — for a seeded sample of hostnames present in
  both vocabularies, the mean overlap between each host's k nearest
  neighbours in the two embedding spaces (queries go through the bound
  :mod:`repro.index` backend, like every other similarity lookup);
* **labelled coverage delta** — the relative change in how many labelled
  hosts (H_L) the embedding space contains; Eq. 4 has no vote without
  labelled neighbours;
* **category-distribution shift** — Jensen–Shannon divergence (base 2,
  so in [0, 1]) between the mean category distributions both models
  assign to a fixed, seeded probe-session grid drawn from the shared
  vocabulary;
* **EWMA anomaly detection** — exponentially weighted mean/variance
  trackers over the stream's quarantine and late-drop rates flag a
  retrain that happens while the *input* is misbehaving.

Every comparison produces a :class:`DriftReport`; breached thresholds
(from :class:`DriftConfig`) are listed by name, and the supervisor's
drift gate treats a non-empty breach list exactly like a failed
post-train validation: rollback + retract, previous generation keeps
serving.  Reports are JSON-serializable (canonical form via
``utils/serialization.py``) and are published as a component of every
store generation, so a post-mortem can replay the drift history of a
deployment from the store alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.utils.randomness import derive_rng

log = get_logger("obs.drift")

#: Schema tag stamped into every serialized report.
DRIFT_REPORT_FORMAT = "repro-drift-v1"


@dataclass
class DriftConfig:
    """Probe sizes and gate thresholds for generation comparison.

    Thresholds are deliberately loose: the gate exists to veto
    *catastrophic* drift (a label shuffle, a scrambled embedding space,
    a vocabulary from a different network), not to second-guess the
    normal day-to-day wobble of retraining on fresh traffic.
    """

    # -- probe sizes ---------------------------------------------------------
    sample_hosts: int = 64          # hosts sampled for neighbour overlap
    neighbour_k: int = 10           # overlap@k
    probe_sessions: int = 32        # fixed probe-session grid size
    probe_session_length: int = 5   # hostnames per probe session
    seed: int = 0                   # derives every probe sample

    # -- gate thresholds (breach => rollback when gated) ---------------------
    gate: bool = True                        # False: report, never veto
    max_vocab_churn: float = 0.75            # 1 - Jaccard(vocabs)
    min_neighbour_overlap: float = 0.05      # mean overlap@k floor
    max_labelled_coverage_drop: float = 0.3  # relative drop in |H_L ∩ V|
    max_category_jsd: float = 0.25           # JSD of probe-grid profiles

    # -- EWMA stream-health anomaly detection --------------------------------
    ewma_alpha: float = 0.3
    ewma_threshold_sigma: float = 4.0
    ewma_warmup: int = 3
    # Anomalies annotate the report; they only veto when this is set.
    gate_on_anomalies: bool = False

    def validate(self) -> None:
        if self.sample_hosts < 1:
            raise ValueError("sample_hosts must be >= 1")
        if self.neighbour_k < 1:
            raise ValueError("neighbour_k must be >= 1")
        if self.probe_sessions < 1:
            raise ValueError("probe_sessions must be >= 1")
        if self.probe_session_length < 1:
            raise ValueError("probe_session_length must be >= 1")
        if not 0 <= self.max_vocab_churn <= 1:
            raise ValueError("max_vocab_churn must be in [0, 1]")
        if not 0 <= self.min_neighbour_overlap <= 1:
            raise ValueError("min_neighbour_overlap must be in [0, 1]")
        if not 0 <= self.max_labelled_coverage_drop <= 1:
            raise ValueError("max_labelled_coverage_drop must be in [0, 1]")
        if not 0 <= self.max_category_jsd <= 1:
            raise ValueError("max_category_jsd must be in [0, 1]")
        if not 0 < self.ewma_alpha <= 1:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.ewma_threshold_sigma <= 0:
            raise ValueError("ewma_threshold_sigma must be positive")
        if self.ewma_warmup < 1:
            raise ValueError("ewma_warmup must be >= 1")

    def thresholds(self) -> dict:
        """The gate thresholds, for embedding into reports."""
        return {
            "max_vocab_churn": self.max_vocab_churn,
            "min_neighbour_overlap": self.min_neighbour_overlap,
            "max_labelled_coverage_drop": self.max_labelled_coverage_drop,
            "max_category_jsd": self.max_category_jsd,
        }


class EwmaDetector:
    """EWMA mean/variance tracker that flags outlier observations.

    Classic exponentially-weighted moving average with a companion EWMA
    of the squared deviation; an observation further than
    ``threshold_sigma`` standard deviations from the running mean is
    anomalous.  The first ``warmup`` observations only prime the state —
    a monitor must not alarm on the very first rate it ever sees.
    """

    def __init__(
        self,
        alpha: float = 0.3,
        threshold_sigma: float = 4.0,
        warmup: int = 3,
    ):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.threshold_sigma = threshold_sigma
        self.warmup = warmup
        self.mean = 0.0
        self.variance = 0.0
        self.samples = 0

    @property
    def std(self) -> float:
        return math.sqrt(max(self.variance, 0.0))

    def update(self, value: float) -> bool:
        """Fold in one observation; True if it was anomalous."""
        value = float(value)
        anomalous = False
        if self.samples >= self.warmup:
            # A flat-lined series (std 0) alarms on any change at all,
            # so give the band a small absolute floor.
            band = self.threshold_sigma * max(self.std, 1e-6)
            anomalous = abs(value - self.mean) > band
        if self.samples == 0:
            self.mean = value
        else:
            deviation = value - self.mean
            self.mean += self.alpha * deviation
            self.variance = (1 - self.alpha) * (
                self.variance + self.alpha * deviation * deviation
            )
        self.samples += 1
        return anomalous

    def state(self) -> dict:
        return {
            "mean": self.mean,
            "std": self.std,
            "samples": self.samples,
        }


@dataclass(frozen=True)
class DriftReport:
    """One candidate-vs-serving comparison, with the gate's verdict."""

    serving_generation: str | None
    candidate_day: int | None
    vocab_jaccard: float
    vocab_churn: float            # 1 - jaccard
    shared_hosts: int
    neighbour_overlap: float      # mean overlap@k over the host sample
    sampled_hosts: int
    labelled_coverage_serving: int
    labelled_coverage_candidate: int
    labelled_coverage_delta: float    # relative; negative = coverage drop
    category_jsd: float               # base-2 JSD, in [0, 1]
    quarantine_rate: float | None = None
    late_drop_rate: float | None = None
    anomalies: tuple[str, ...] = ()
    breaches: tuple[str, ...] = ()
    thresholds: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when no gate threshold was breached."""
        return not self.breaches

    def to_dict(self) -> dict:
        return {
            "format": DRIFT_REPORT_FORMAT,
            "serving_generation": self.serving_generation,
            "candidate_day": self.candidate_day,
            "vocab_jaccard": self.vocab_jaccard,
            "vocab_churn": self.vocab_churn,
            "shared_hosts": self.shared_hosts,
            "neighbour_overlap": self.neighbour_overlap,
            "sampled_hosts": self.sampled_hosts,
            "labelled_coverage_serving": self.labelled_coverage_serving,
            "labelled_coverage_candidate": self.labelled_coverage_candidate,
            "labelled_coverage_delta": self.labelled_coverage_delta,
            "category_jsd": self.category_jsd,
            "quarantine_rate": self.quarantine_rate,
            "late_drop_rate": self.late_drop_rate,
            "anomalies": list(self.anomalies),
            "breaches": list(self.breaches),
            "thresholds": dict(self.thresholds),
            "ok": self.ok,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DriftReport":
        if payload.get("format") != DRIFT_REPORT_FORMAT:
            raise ValueError(
                f"not a {DRIFT_REPORT_FORMAT} payload: "
                f"{payload.get('format')!r}"
            )
        return cls(
            serving_generation=payload["serving_generation"],
            candidate_day=payload["candidate_day"],
            vocab_jaccard=float(payload["vocab_jaccard"]),
            vocab_churn=float(payload["vocab_churn"]),
            shared_hosts=int(payload["shared_hosts"]),
            neighbour_overlap=float(payload["neighbour_overlap"]),
            sampled_hosts=int(payload["sampled_hosts"]),
            labelled_coverage_serving=int(
                payload["labelled_coverage_serving"]
            ),
            labelled_coverage_candidate=int(
                payload["labelled_coverage_candidate"]
            ),
            labelled_coverage_delta=float(
                payload["labelled_coverage_delta"]
            ),
            category_jsd=float(payload["category_jsd"]),
            quarantine_rate=payload.get("quarantine_rate"),
            late_drop_rate=payload.get("late_drop_rate"),
            anomalies=tuple(payload.get("anomalies", ())),
            breaches=tuple(payload.get("breaches", ())),
            thresholds=dict(payload.get("thresholds", {})),
        )

    def summary(self) -> str:
        """One-line operator digest for logs and the CLI."""
        verdict = "ok" if self.ok else f"BREACH({', '.join(self.breaches)})"
        return (
            f"drift vs {self.serving_generation or '<in-memory>'}: "
            f"churn {self.vocab_churn:.3f}, "
            f"nn-overlap {self.neighbour_overlap:.3f}, "
            f"coverage {self.labelled_coverage_delta:+.3f}, "
            f"jsd {self.category_jsd:.3f} -> {verdict}"
        )


def _jensen_shannon(p: np.ndarray, q: np.ndarray) -> float:
    """Base-2 Jensen–Shannon divergence of two distributions, in [0, 1].

    Handles degenerate inputs the way the gate needs: two empty
    distributions are identical (0), one empty against one real is
    maximal drift (1).
    """
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    p_sum, q_sum = p.sum(), q.sum()
    if p_sum <= 0 and q_sum <= 0:
        return 0.0
    if p_sum <= 0 or q_sum <= 0:
        return 1.0
    p = p / p_sum
    q = q / q_sum
    m = 0.5 * (p + q)

    def _kl(a: np.ndarray, b: np.ndarray) -> float:
        mask = a > 0
        return float(np.sum(a[mask] * np.log2(a[mask] / b[mask])))

    return min(1.0, max(0.0, 0.5 * _kl(p, m) + 0.5 * _kl(q, m)))


class DriftMonitor:
    """Compares a candidate model generation against the serving one.

    Both sides are :class:`~repro.core.profiler.SessionProfiler`
    instances (each carries its embeddings, its bound vector index, and
    its view of the labelled set), so the monitor needs no access to
    training internals — it probes the exact objects that would serve.
    The monitor is long-lived: its EWMA stream-health state accumulates
    across retrains, which is what lets it notice a *rate change* rather
    than an absolute level.
    """

    def __init__(
        self,
        config: DriftConfig | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ):
        self.config = config or DriftConfig()
        self.config.validate()
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        cfg = self.config
        self._quarantine_ewma = EwmaDetector(
            cfg.ewma_alpha, cfg.ewma_threshold_sigma, cfg.ewma_warmup
        )
        self._late_ewma = EwmaDetector(
            cfg.ewma_alpha, cfg.ewma_threshold_sigma, cfg.ewma_warmup
        )
        m = self.registry
        self._checks_total = m.counter(
            "drift_checks_total", "Candidate-vs-serving drift comparisons."
        )
        self._breaches_total = m.counter(
            "drift_breaches_total",
            "Threshold breaches, by drift metric.",
            labelnames=("metric",),
        )
        self._anomalies_total = m.counter(
            "drift_anomalies_total",
            "EWMA stream-health anomalies, by rate.",
            labelnames=("rate",),
        )
        self._vocab_churn_gauge = m.gauge(
            "drift_vocab_churn", "1 - Jaccard(vocabularies), last check."
        )
        self._overlap_gauge = m.gauge(
            "drift_neighbour_overlap",
            "Mean neighbour overlap@k over the host sample, last check.",
        )
        self._coverage_delta_gauge = m.gauge(
            "drift_labelled_coverage_delta",
            "Relative labelled-coverage change, last check.",
        )
        self._jsd_gauge = m.gauge(
            "drift_category_jsd",
            "Probe-grid category-distribution JSD, last check.",
        )

    # -- component metrics ----------------------------------------------------

    @staticmethod
    def _vocab_set(profiler) -> set[str]:
        return set(profiler.embeddings.vocabulary.hosts)

    def _neighbour_overlap(
        self, serving, candidate, shared: list[str]
    ) -> tuple[float, int]:
        """Mean overlap@k of each sampled host's neighbour sets."""
        cfg = self.config
        if not shared:
            return 0.0, 0
        rng = derive_rng(cfg.seed, "drift-neighbour-sample")
        count = min(cfg.sample_hosts, len(shared))
        sample = [
            shared[int(i)]
            for i in rng.choice(len(shared), size=count, replace=False)
        ]
        overlaps = []
        for host in sample:
            before = {
                name for name, _ in
                serving.embeddings.most_similar(host, cfg.neighbour_k)
            }
            after = {
                name for name, _ in
                candidate.embeddings.most_similar(host, cfg.neighbour_k)
            }
            denominator = max(len(before), len(after), 1)
            overlaps.append(len(before & after) / denominator)
        return float(np.mean(overlaps)), count

    def _probe_grid(self, shared: list[str]) -> list[list[str]]:
        """The fixed, seeded probe-session grid over the shared vocab."""
        cfg = self.config
        if not shared:
            return []
        rng = derive_rng(cfg.seed, "drift-probe-grid")
        sessions = []
        for _ in range(cfg.probe_sessions):
            size = min(cfg.probe_session_length, len(shared))
            picks = rng.choice(len(shared), size=size, replace=False)
            sessions.append([shared[int(i)] for i in picks])
        return sessions

    def _category_shift(self, serving, candidate, shared: list[str]) -> float:
        """JSD between mean probe-grid category distributions."""
        sessions = self._probe_grid(shared)
        if not sessions:
            return 0.0
        before = np.zeros(serving.num_categories)
        after = np.zeros(candidate.num_categories)
        if before.shape != after.shape:
            # Different taxonomies cannot be compared dimension-wise;
            # that is maximal drift by definition.
            return 1.0
        for hosts in sessions:
            before += serving.profile(list(hosts)).categories
            after += candidate.profile(list(hosts)).categories
        return _jensen_shannon(before, after)

    # -- stream health ---------------------------------------------------------

    def observe_stream_health(
        self,
        quarantine_rate: float | None,
        late_drop_rate: float | None,
    ) -> tuple[str, ...]:
        """Feed the EWMA detectors; returns the anomaly names tripped."""
        anomalies = []
        if quarantine_rate is not None and self._quarantine_ewma.update(
            quarantine_rate
        ):
            anomalies.append("quarantine_rate")
            self._anomalies_total.labels(rate="quarantine").inc()
        if late_drop_rate is not None and self._late_ewma.update(
            late_drop_rate
        ):
            anomalies.append("late_drop_rate")
            self._anomalies_total.labels(rate="late_drop").inc()
        return tuple(anomalies)

    def ewma_state(self) -> dict:
        return {
            "quarantine": self._quarantine_ewma.state(),
            "late_drop": self._late_ewma.state(),
        }

    # -- the comparison --------------------------------------------------------

    def compare(
        self,
        serving,
        candidate,
        serving_generation: str | None = None,
        candidate_day: int | None = None,
        quarantine_rate: float | None = None,
        late_drop_rate: float | None = None,
    ) -> DriftReport:
        """Compare two profilers; returns the report (never raises on drift).

        ``serving`` / ``candidate`` are session profilers; pass stream
        health rates to fold this check's input quality into the EWMA
        detectors.  Breaches are *reported*, not raised — enforcement is
        the supervisor's drift gate.
        """
        cfg = self.config
        with self.tracer.span(
            "drift.check",
            serving=serving_generation, day=candidate_day,
        ):
            vocab_before = self._vocab_set(serving)
            vocab_after = self._vocab_set(candidate)
            union = vocab_before | vocab_after
            intersection = vocab_before & vocab_after
            jaccard = len(intersection) / len(union) if union else 1.0
            churn = 1.0 - jaccard
            shared = sorted(intersection)

            overlap, sampled = self._neighbour_overlap(
                serving, candidate, shared
            )
            coverage_before = serving.labelled_in_vocabulary
            coverage_after = candidate.labelled_in_vocabulary
            coverage_delta = (
                (coverage_after - coverage_before) / coverage_before
                if coverage_before else 0.0
            )
            jsd = self._category_shift(serving, candidate, shared)
            anomalies = self.observe_stream_health(
                quarantine_rate, late_drop_rate
            )

            breaches = []
            if churn > cfg.max_vocab_churn:
                breaches.append("vocab_churn")
            if overlap < cfg.min_neighbour_overlap:
                breaches.append("neighbour_overlap")
            if -coverage_delta > cfg.max_labelled_coverage_drop:
                breaches.append("labelled_coverage")
            if jsd > cfg.max_category_jsd:
                breaches.append("category_jsd")
            if cfg.gate_on_anomalies and anomalies:
                breaches.append("stream_health")

        self._checks_total.inc()
        self._vocab_churn_gauge.set(churn)
        self._overlap_gauge.set(overlap)
        self._coverage_delta_gauge.set(coverage_delta)
        self._jsd_gauge.set(jsd)
        for metric in breaches:
            self._breaches_total.labels(metric=metric).inc()

        report = DriftReport(
            serving_generation=serving_generation,
            candidate_day=candidate_day,
            vocab_jaccard=jaccard,
            vocab_churn=churn,
            shared_hosts=len(shared),
            neighbour_overlap=overlap,
            sampled_hosts=sampled,
            labelled_coverage_serving=coverage_before,
            labelled_coverage_candidate=coverage_after,
            labelled_coverage_delta=coverage_delta,
            category_jsd=jsd,
            quarantine_rate=quarantine_rate,
            late_drop_rate=late_drop_rate,
            anomalies=anomalies,
            breaches=tuple(breaches),
            thresholds=cfg.thresholds(),
        )
        if report.ok:
            log.info("drift check passed", summary=report.summary())
        else:
            log.warning(
                "drift check breached",
                summary=report.summary(), breaches=list(report.breaches),
            )
        return report


def stream_health_rates(registry: MetricsRegistry) -> tuple[float, float]:
    """(quarantine rate, late-drop rate) from a shared registry.

    Rates are relative to the events the stream has ingested; a registry
    without those families (or a :class:`NullRegistry`) yields zeros, so
    callers can pass the result straight to :meth:`DriftMonitor.compare`.
    """
    events = registry.counter(
        "stream_events_total",
        "Hostname events ingested by the streaming profiler.",
    ).value
    if events <= 0:
        return 0.0, 0.0
    quarantined = registry.counter(
        "quarantine_admitted_total",
        "Malformed inputs quarantined, by error kind.",
        labelnames=("kind",),
    ).total()
    late = registry.counter(
        "stream_late_events_dropped_total",
        "Out-of-order events older than the lateness bound, dropped.",
    ).value
    return quarantined / events, late / events
