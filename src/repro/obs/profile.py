"""Continuous sampling profiler: stack samples into folded-stack counts.

A daemon thread wakes ~``hz`` times per second, snapshots every thread's
Python stack via :func:`sys._current_frames`, and folds each stack into a
``root;caller;...;leaf`` key with a hit counter — the classic
collapsed-stack shape.  No interpreter hooks, no per-call overhead: cost
is bounded by sample rate × stack depth, independent of how hot the
profiled code is, which is what lets it run *continuously* in production
(the throughput benchmark budgets the whole introspection plane, this
profiler at 100 Hz included, under a 1.10x ratio).

Exports:

* :meth:`SamplingProfiler.to_collapsed` — one ``stack count`` line per
  folded stack, directly consumable by ``flamegraph.pl`` and by
  https://www.speedscope.app (drag-and-drop).
* :meth:`SamplingProfiler.to_speedscope` — native speedscope JSON
  (``"$schema": https://www.speedscope.app/file-format-schema.json``),
  one sampled profile per observed thread.

Frames are keyed ``function (module:line)`` using the *definition* line,
so all samples inside one function fold together.  The profiler's own
sampling thread is excluded.  Wire-up: ``--profile`` on ``repro stream``
/ ``repro experiment`` runs it for the whole command and writes both
exports next to the other run artifacts; ``/profile?seconds=N`` on the
admin server runs a bounded burst on demand and streams the result back.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from collections import Counter

from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry

DEFAULT_HZ = 100.0
MAX_STACK_DEPTH = 128


def _fold(frame) -> str:
    """Fold one thread's stack, outermost first: ``a (m:1);b (m:9)``."""
    parts: list[str] = []
    depth = 0
    while frame is not None and depth < MAX_STACK_DEPTH:
        code = frame.f_code
        module = code.co_filename.rsplit("/", 1)[-1]
        parts.append(f"{code.co_name} ({module}:{code.co_firstlineno})")
        frame = frame.f_back
        depth += 1
    parts.reverse()
    return ";".join(parts)


class SamplingProfiler:
    """Samples ``sys._current_frames()`` on a daemon thread.

    Thread-safe; reusable (start → stop → start accumulates into the
    same counts unless :meth:`reset` is called between runs).
    """

    def __init__(
        self,
        hz: float = DEFAULT_HZ,
        registry: MetricsRegistry = NULL_REGISTRY,
    ):
        if hz <= 0:
            raise ValueError(f"sample rate must be positive, got {hz}")
        self.hz = float(hz)
        self.interval = 1.0 / self.hz
        self._lock = threading.Lock()
        self._counts: Counter[str] = Counter()
        self._samples = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at: float | None = None
        self._wall_sampled = 0.0
        self._samples_total = registry.counter(
            "profile_samples_total",
            "Stack samples taken by the continuous profiler.",
        )

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def samples(self) -> int:
        with self._lock:
            return self._samples

    def start(self) -> "SamplingProfiler":
        if self.running:
            raise RuntimeError("profiler already running")
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="sampling-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None
        if self._started_at is not None:
            self._wall_sampled += time.perf_counter() - self._started_at
            self._started_at = None
        return self

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()
            self._samples = 0
            self._wall_sampled = 0.0

    def run_for(self, seconds: float) -> "SamplingProfiler":
        """Blocking bounded burst (the ``/profile?seconds=N`` path)."""
        self.start()
        try:
            time.sleep(max(0.0, seconds))
        finally:
            self.stop()
        return self

    def _run(self) -> None:
        me = threading.get_ident()
        # Sleep against a perf_counter deadline so sampling cadence does
        # not drift with the cost of the sample itself.
        next_tick = time.perf_counter()
        while not self._stop.is_set():
            frames = sys._current_frames()
            folded = [
                _fold(frame)
                for ident, frame in frames.items()
                if ident != me
            ]
            with self._lock:
                for stack in folded:
                    if stack:
                        self._counts[stack] += 1
                self._samples += 1
            self._samples_total.inc()
            next_tick += self.interval
            delay = next_tick - time.perf_counter()
            if delay > 0:
                self._stop.wait(delay)
            else:
                # Fell behind (GIL contention, slow fold): re-anchor
                # rather than firing a catch-up burst.
                next_tick = time.perf_counter()

    # -- exports -------------------------------------------------------------

    def folded(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def to_collapsed(self) -> str:
        """flamegraph.pl-compatible ``stack count`` lines (sorted)."""
        counts = self.folded()
        return "".join(
            f"{stack} {count}\n" for stack, count in sorted(counts.items())
        )

    def to_speedscope(self, name: str = "repro") -> dict:
        """The speedscope JSON file-format object (sampled profile)."""
        counts = self.folded()
        frame_index: dict[str, int] = {}
        frames: list[dict] = []
        samples: list[list[int]] = []
        weights: list[int] = []
        for stack, count in sorted(counts.items()):
            indices = []
            for part in stack.split(";"):
                if part not in frame_index:
                    frame_index[part] = len(frames)
                    frames.append({"name": part})
                indices.append(frame_index[part])
            samples.append(indices)
            weights.append(count)
        total = sum(weights)
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "name": name,
            "activeProfileIndex": 0,
            "exporter": "repro-obs-profile",
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "none",
                    "startValue": 0,
                    "endValue": total,
                    "samples": samples,
                    "weights": weights,
                }
            ],
        }

    def write_collapsed(self, path) -> int:
        """Write the collapsed-stack file; returns distinct stack count."""
        from pathlib import Path

        counts = self.folded()
        Path(path).write_text(self.to_collapsed())
        return len(counts)

    def write_speedscope(self, path, name: str = "repro") -> int:
        from pathlib import Path

        doc = self.to_speedscope(name=name)
        Path(path).write_text(json.dumps(doc))
        return len(doc["profiles"][0]["samples"])

    def report(self) -> dict:
        """JSON summary for ``/profile`` responses and doctor bundles."""
        with self._lock:
            counts = dict(self._counts)
            samples = self._samples
            wall = self._wall_sampled
            if self._started_at is not None:
                wall += time.perf_counter() - self._started_at
        top = sorted(counts.items(), key=lambda kv: -kv[1])[:25]
        return {
            "format": "repro-profile-v1",
            "hz": self.hz,
            "samples": samples,
            "wall_seconds": round(wall, 3),
            "distinct_stacks": len(counts),
            "running": self.running,
            "top_stacks": [
                {"stack": stack, "count": count} for stack, count in top
            ],
        }
