"""Observability substrate: metrics registry, span tracing, JSON logging.

One telemetry story for the whole pipeline.  Components accept an
optional ``registry`` (:class:`MetricsRegistry`) and ``tracer``
(:class:`Tracer`); components whose legacy counters migrated onto the
registry (streaming, quarantine, supervisor, flow table) default to a
private real registry so their counters always count, while hot-path
components (SGNS training, per-session profiling) default to the no-op
:data:`NULL_REGISTRY` / :data:`NULL_TRACER` and pay nothing unless a
real instrument is passed in.
"""

from repro.obs.doctor import collect_bundle
from repro.obs.drift import (
    DriftConfig,
    DriftMonitor,
    DriftReport,
    EwmaDetector,
    stream_health_rates,
)
from repro.obs.flush import MetricsFlusher
from repro.obs.logging import (
    JsonLogger,
    bind_tracer,
    get_logger,
    get_run_id,
    new_run_id,
    set_level,
    set_run_id,
    set_stream,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from repro.obs.server import PROMETHEUS_CONTENT_TYPE, AdminServer
from repro.obs.tracing import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "AdminServer",
    "Counter",
    "DEFAULT_BUCKETS",
    "DriftConfig",
    "DriftMonitor",
    "DriftReport",
    "EwmaDetector",
    "Gauge",
    "Histogram",
    "JsonLogger",
    "MetricError",
    "MetricsFlusher",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "PROMETHEUS_CONTENT_TYPE",
    "Span",
    "Tracer",
    "bind_tracer",
    "collect_bundle",
    "get_logger",
    "get_run_id",
    "new_run_id",
    "set_level",
    "set_run_id",
    "set_stream",
    "stream_health_rates",
]
