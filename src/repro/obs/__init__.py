"""Observability substrate: metrics, tracing, SLOs, profiling, forensics.

One telemetry story for the whole pipeline.  Components accept an
optional ``registry`` (:class:`MetricsRegistry`) and ``tracer``
(:class:`Tracer`); components whose legacy counters migrated onto the
registry (streaming, quarantine, supervisor, flow table) default to a
private real registry so their counters always count, while hot-path
components (SGNS training, per-session profiling) default to the no-op
:data:`NULL_REGISTRY` / :data:`NULL_TRACER` and pay nothing unless a
real instrument is passed in.

On top of the aggregate layer sits the deep introspection plane:

* request-scoped tracing — :class:`TraceContext` + :class:`HeadSampler`
  thread one sampled session's journey (ingest → profile → index
  search) into a single trace, and latency histograms export the trace
  id as an OpenMetrics exemplar;
* :class:`SLOEngine` — declarative objectives with multi-window
  burn-rate alerting, served at ``/slo`` and ``/alerts``;
* :class:`SamplingProfiler` — continuous ~100 Hz stack sampling with
  flamegraph/speedscope export, on demand via ``/profile``;
* :class:`FlightRecorder` — a bounded ring of recent structured events
  dumped on crash, SIGTERM or demand, collected by ``repro doctor``.
"""

from repro.obs.doctor import collect_bundle, read_bundle
from repro.obs.drift import (
    DriftConfig,
    DriftMonitor,
    DriftReport,
    EwmaDetector,
    stream_health_rates,
)
from repro.obs.flight import FlightRecorder
from repro.obs.flush import MetricsFlusher
from repro.obs.logging import (
    JsonLogger,
    bind_tracer,
    get_logger,
    get_run_id,
    new_run_id,
    set_level,
    set_run_id,
    set_stream,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS_FAST,
    LATENCY_BUCKETS_SLOW,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    label_snapshot,
    merge_snapshots,
    snapshot_to_prometheus,
    validate_buckets,
)
from repro.obs.profile import SamplingProfiler
from repro.obs.server import PROMETHEUS_CONTENT_TYPE, AdminServer
from repro.obs.slo import SLO, SLOEngine, SLOState, default_slos, fleet_slos
from repro.obs.tracing import (
    HeadSampler,
    NULL_TRACER,
    NullTracer,
    Span,
    TraceContext,
    Tracer,
    current_exemplar,
    current_trace,
    span_from_wire,
    span_to_wire,
    use_trace,
)

__all__ = [
    "AdminServer",
    "Counter",
    "DEFAULT_BUCKETS",
    "DriftConfig",
    "DriftMonitor",
    "DriftReport",
    "EwmaDetector",
    "FlightRecorder",
    "Gauge",
    "HeadSampler",
    "Histogram",
    "JsonLogger",
    "LATENCY_BUCKETS_FAST",
    "LATENCY_BUCKETS_SLOW",
    "MetricError",
    "MetricsFlusher",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "PROMETHEUS_CONTENT_TYPE",
    "SIZE_BUCKETS",
    "SLO",
    "SLOEngine",
    "SLOState",
    "SamplingProfiler",
    "Span",
    "TraceContext",
    "Tracer",
    "bind_tracer",
    "collect_bundle",
    "current_exemplar",
    "current_trace",
    "default_slos",
    "fleet_slos",
    "get_logger",
    "get_run_id",
    "label_snapshot",
    "merge_snapshots",
    "new_run_id",
    "read_bundle",
    "set_level",
    "set_run_id",
    "set_stream",
    "snapshot_to_prometheus",
    "span_from_wire",
    "span_to_wire",
    "stream_health_rates",
    "use_trace",
    "validate_buckets",
]
