"""Periodic metrics snapshots: telemetry that survives a kill -9.

``stream --metrics-out`` writes its telemetry once, at clean exit — so a
crashed or killed run leaves nothing.  :class:`MetricsFlusher` is a tiny
daemon thread that rewrites the snapshot every ``interval_seconds`` with
the same atomic ``.tmp`` + ``os.replace`` discipline as every other
artifact in this repo, so whatever kills the process, the file on disk
is a complete, recent snapshot — never a torn one.

Format follows the CLI convention: a ``.json`` destination gets the
``repro-metrics-v1`` JSON snapshot, anything else Prometheus text.
"""

from __future__ import annotations

import threading
from pathlib import Path

from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.utils.serialization import atomic_write_text

log = get_logger("obs.flush")


class MetricsFlusher:
    """Background thread flushing a registry snapshot to disk on a cadence."""

    def __init__(
        self,
        registry: MetricsRegistry,
        path: str | Path,
        interval_seconds: float,
    ):
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        self.registry = registry
        self.path = Path(path)
        self.interval_seconds = float(interval_seconds)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._flushes_total = registry.counter(
            "metrics_flushes_total",
            "Periodic metrics snapshots written to disk.",
        )

    def flush_now(self) -> None:
        """Write one snapshot immediately (atomic replace)."""
        if self.path.suffix == ".json":
            payload = self.registry.to_json(indent=2)
        else:
            payload = self.registry.to_prometheus()
        atomic_write_text(self.path, payload)
        self._flushes_total.inc()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            try:
                self.flush_now()
            except Exception as error:   # a full disk must not kill serving
                log.error(
                    "metrics flush failed",
                    path=str(self.path),
                    error=f"{type(error).__name__}: {error}",
                )

    def start(self) -> "MetricsFlusher":
        if self._thread is not None:
            raise RuntimeError("flusher already started")
        self._thread = threading.Thread(
            target=self._run, name="metrics-flusher", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, final_flush: bool = True) -> None:
        """Stop the thread; by default write one last snapshot."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if final_flush:
            self.flush_now()

    def __enter__(self) -> "MetricsFlusher":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
