"""``repro doctor``: one-directory debug bundle for post-mortems.

When a long-running observer misbehaves, the facts are scattered: live
metrics behind the admin port, drift reports inside store generations,
traces and snapshots in whatever files the run was started with.
:func:`collect_bundle` gathers everything reachable into a single
directory an operator can attach to a ticket:

================  ==========================================================
file              contents
================  ==========================================================
``metrics.prom``  Prometheus exposition (live scrape or copied snapshot)
``varz.json``     ``/varz`` process snapshot (live only)
``readyz.json``   ``/readyz`` verdict + body, with the HTTP status
``healthz.json``  ``/healthz`` body (live only)
``generations.json``  store manifest list (live route or offline store)
``drift.json``    latest drift report (live route or newest generation)
``slo.json``      ``/slo`` objective states with burn rates (live only)
``alerts.json``   ``/alerts`` firing objectives (live only)
``flight.json``   flight-recorder ring dump (``/flight`` or a dump file)
``profile.collapsed``  on-demand CPU profile, flamegraph.pl format
``trace.json``    Chrome trace copied from ``--trace``
``shards.json``   ``/shards`` fleet state (live only; absence is explicit)
``metrics_fleet.prom``  ``/metrics?scope=fleet`` merged fleet exposition
``traces.json``   ``/trace`` index of reassembled cross-process traces
``shards/``       per-shard checkpoints and worker flight dumps copied
                  from ``--shard-dir`` (the coordinator checkpoint dir)
``config.json``   the resolved CLI configuration of the doctor run target
``bundle.json``   what was collected, from where, and what failed
================  ==========================================================

Every source is optional and every failure is recorded rather than
raised — a half-dead process should still yield a half-full bundle.
Offline runs (no ``admin_url``) record the absence of the live-only
captures (SLO states, alerts, the on-demand profile, fleet state) in
the manifest's ``errors`` map instead of failing; a live process with
no shard coordinator attached records the fleet routes as ``absent``
the same way.

Manifest format: ``repro-doctor-v3``.  v3 adds the fleet captures
(``shards.json``, ``metrics_fleet.prom``, ``traces.json``, ``shards/``);
everything a v1 or v2 bundle contained keeps its filename and shape, so
older bundles remain readable (see ``read_bundle``).
"""

from __future__ import annotations

import json
import shutil
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.obs.logging import get_logger
from repro.utils.serialization import atomic_write_json, atomic_write_text

log = get_logger("obs.doctor")

#: Admin routes fetched live, mapped to bundle filenames.
_LIVE_ROUTES = (
    ("/metrics", "metrics.prom"),
    ("/healthz", "healthz.json"),
    ("/readyz", "readyz.json"),
    ("/varz", "varz.json"),
    ("/generations", "generations.json"),
    ("/drift/latest", "drift.json"),
    ("/slo", "slo.json"),
    ("/alerts", "alerts.json"),
    ("/flight", "flight.json"),
    ("/shards", "shards.json"),
    ("/metrics?scope=fleet", "metrics_fleet.prom"),
    ("/trace", "traces.json"),
)

#: Bundle manifest formats :func:`read_bundle` accepts.
SUPPORTED_BUNDLE_FORMATS = (
    "repro-doctor-v1", "repro-doctor-v2", "repro-doctor-v3",
)

#: Live-only captures whose absence an offline bundle must explain.
_LIVE_ONLY = {
    "/slo": "slo.json",
    "/alerts": "alerts.json",
    "/flight": "flight.json",
    "/profile": "profile.collapsed",
    "/shards": "shards.json",
    "/metrics?scope=fleet": "metrics_fleet.prom",
    "/trace": "traces.json",
}


def _fetch(url: str, timeout: float) -> tuple[int | None, str]:
    """(status, body) for a GET; (None, error) when unreachable.

    Non-200 statuses are *data* here — a 503 ``/readyz`` is exactly what
    a post-mortem wants to capture.
    """
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode()
    except (urllib.error.URLError, OSError, ValueError) as error:
        return None, f"{type(error).__name__}: {error}"


def collect_bundle(
    out_dir: str | Path,
    admin_url: str | None = None,
    store=None,
    metrics_path: str | Path | None = None,
    trace_path: str | Path | None = None,
    flight_path: str | Path | None = None,
    config: dict | None = None,
    timeout: float = 5.0,
    profile_seconds: float = 5.0,
    shard_dir: str | Path | None = None,
) -> dict:
    """Assemble a debug bundle in ``out_dir``; returns the bundle manifest.

    ``admin_url`` scrapes a live process — including its ``/slo`` and
    ``/alerts`` states, its flight-recorder ring, and (when
    ``profile_seconds`` > 0) an on-demand CPU profile burst; ``store``
    (an :class:`~repro.store.ArtifactStore`) reads generation manifests
    and drift reports offline; ``metrics_path`` / ``trace_path`` /
    ``flight_path`` copy telemetry files a run already wrote, and
    ``shard_dir`` (a coordinator's checkpoint directory) copies every
    per-shard checkpoint and worker flight dump into ``shards/``.  Live
    routes win over offline sources for the same filename; nothing
    reachable is an empty-but-valid bundle whose manifest says so, with
    live-only captures (SLO, alerts, profile, fleet state) explicitly
    noted absent.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    collected: dict[str, str] = {}     # filename -> source
    errors: dict[str, str] = {}        # source -> what went wrong

    if admin_url is not None:
        base = admin_url.rstrip("/")
        for route, filename in _LIVE_ROUTES:
            status, body = _fetch(base + route, timeout)
            if status is None:
                errors[route] = body
                continue
            if route == "/readyz":
                # Keep the status alongside the body: 503-during-retrain
                # vs 503-no-model is the whole point of the capture.
                try:
                    parsed = json.loads(body)
                except ValueError:
                    parsed = {"raw": body}
                atomic_write_json(
                    out / filename, {"status": status, "body": parsed}
                )
            elif status == 404:
                # Routes that answer "nothing attached" (e.g. /shards
                # without a coordinator) are recorded as explicitly
                # absent, not as scrape failures.
                try:
                    reason = json.loads(body).get("error") or ""
                except ValueError:
                    reason = ""
                errors[route] = (
                    f"absent: {reason}" if reason else "absent: HTTP 404"
                )
                continue
            elif status != 200:
                errors[route] = f"HTTP {status}"
                continue
            else:
                atomic_write_text(out / filename, body)
            collected[filename] = base + route
        if profile_seconds > 0:
            route = (
                f"/profile?seconds={profile_seconds:g}&format=collapsed"
            )
            # The burst blocks server-side for its full duration, so the
            # fetch timeout must outlast it.
            status, body = _fetch(
                base + route, timeout + profile_seconds
            )
            if status == 200:
                atomic_write_text(out / "profile.collapsed", body)
                collected["profile.collapsed"] = base + route
            else:
                errors["/profile"] = (
                    body if status is None else f"HTTP {status}"
                )
    else:
        for route, filename in _LIVE_ONLY.items():
            if filename not in collected:
                errors[route] = "not collected: no live admin endpoint"

    if store is not None:
        try:
            if "generations.json" not in collected:
                serving = store.latest_id()
                atomic_write_json(out / "generations.json", {
                    "serving": serving,
                    "generations": [
                        {
                            "generation_id": record.generation_id,
                            "created_from_day": record.created_from_day,
                            "created_at": record.created_at,
                            "components": sorted(record.components),
                            "serving": record.generation_id == serving,
                        }
                        for record in store.list_generations()
                    ],
                })
                collected["generations.json"] = str(store.root)
            if "drift.json" not in collected:
                from repro.store import DRIFT_REPORT_COMPONENT

                for record in reversed(store.list_generations()):
                    if record.has_component(DRIFT_REPORT_COMPONENT):
                        shutil.copyfile(
                            record.component_path(DRIFT_REPORT_COMPONENT),
                            out / "drift.json",
                        )
                        collected["drift.json"] = record.generation_id
                        break
        except Exception as error:
            errors["store"] = f"{type(error).__name__}: {error}"

    for source, filename in (
        (metrics_path, "metrics.prom"), (trace_path, "trace.json"),
        (flight_path, "flight.json"),
    ):
        if source is None or filename in collected:
            continue
        source = Path(source)
        if source.is_file():
            shutil.copyfile(source, out / filename)
            collected[filename] = str(source)
        else:
            errors[str(source)] = "file not found"

    if shard_dir is not None:
        shard_dir = Path(shard_dir)
        if shard_dir.is_dir():
            shard_files = sorted(shard_dir.glob("shard-*.json"))
            if shard_files:
                (out / "shards").mkdir(exist_ok=True)
                for source in shard_files:
                    shutil.copyfile(source, out / "shards" / source.name)
                    collected[f"shards/{source.name}"] = str(source)
            else:
                errors[str(shard_dir)] = "no shard-*.json files found"
        else:
            errors[str(shard_dir)] = "directory not found"

    if config is not None:
        atomic_write_json(out / "config.json", _json_safe(config))
        collected["config.json"] = "resolved configuration"

    manifest = {
        "format": "repro-doctor-v3",
        "created_at": time.time(),
        "admin_url": admin_url,
        "collected": collected,
        "errors": errors,
    }
    atomic_write_json(out / "bundle.json", manifest)
    log.info(
        "doctor bundle written",
        out=str(out), files=sorted(collected), errors=sorted(errors),
    )
    return manifest


def read_bundle(bundle_dir: str | Path) -> dict:
    """Load a doctor bundle's manifest, accepting every supported format.

    v1 bundles (pre-introspection-plane) have no ``slo.json`` /
    ``alerts.json`` / ``flight.json`` / ``profile.collapsed`` entries,
    and v2 bundles (pre-fleet-plane) none of the ``shards.json`` /
    ``metrics_fleet.prom`` / ``traces.json`` / ``shards/`` captures;
    readers treat those exactly like a newer offline bundle that noted
    their absence.  Unknown formats raise ``ValueError`` naming the
    supported range.
    """
    manifest = json.loads((Path(bundle_dir) / "bundle.json").read_text())
    fmt = manifest.get("format")
    if fmt not in SUPPORTED_BUNDLE_FORMATS:
        raise ValueError(
            f"unsupported bundle format {fmt!r}; this build reads "
            + ", ".join(SUPPORTED_BUNDLE_FORMATS)
        )
    return manifest


def _json_safe(config: dict) -> dict:
    """Resolved CLI namespaces may hold Paths and such; stringify them."""
    safe = {}
    for key, value in config.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            safe[key] = value
        elif isinstance(value, (list, tuple)):
            safe[key] = [str(item) for item in value]
        else:
            safe[key] = str(value)
    return safe
