"""Structured logging: single-line JSON records with run and span context.

``get_logger(name)`` returns a tiny logger whose records are one JSON
object per line::

    {"ts": 1735689600.123456, "level": "warning", "logger":
     "core.supervisor", "run_id": "a3f29c81", "span": "retrain.day",
     "msg": "retrain attempt failed", "day": 4, "attempt": 2}

Design points:

* no stdlib ``logging`` machinery — records are built and written
  directly, so there is exactly one output shape and no handler
  configuration to drift;
* a process-wide ``run_id`` (set once per CLI invocation) stitches every
  record of a run together across components;
* if a :class:`~repro.obs.tracing.Tracer` is bound, the innermost open
  span's name is stamped onto each record, tying logs to traces;
* the default threshold is ``warning`` so library use stays quiet; CLIs
  and tests can lower it with :func:`set_level`.
"""

from __future__ import annotations

import json
import sys
import threading
import time
import uuid

from repro.obs.tracing import NULL_TRACER, Tracer

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

_lock = threading.Lock()
_state = {
    "run_id": None,          # str | None
    "level": "warning",
    "stream": None,          # file-like | None (None -> sys.stderr at emit)
    "tracer": NULL_TRACER,   # Tracer
}
_loggers: dict[str, "JsonLogger"] = {}


def new_run_id() -> str:
    """A fresh short run identifier (not deterministic, not reused)."""
    return uuid.uuid4().hex[:12]


def set_run_id(run_id: str | None) -> None:
    """Stamp every subsequent record with ``run_id`` (None clears it)."""
    _state["run_id"] = run_id


def get_run_id() -> str | None:
    return _state["run_id"]


def set_level(level: str) -> None:
    if level not in LEVELS:
        raise ValueError(f"level must be one of {sorted(LEVELS)}")
    _state["level"] = level


def set_stream(stream) -> None:
    """Redirect records (None restores the default, sys.stderr)."""
    _state["stream"] = stream


def bind_tracer(tracer: Tracer | None) -> None:
    """Stamp records with the bound tracer's innermost open span."""
    _state["tracer"] = tracer if tracer is not None else NULL_TRACER


class JsonLogger:
    """Named emitter of single-line JSON records."""

    def __init__(self, name: str):
        self.name = name

    def _emit(self, level: str, message: str, fields: dict) -> None:
        if LEVELS[level] < LEVELS[_state["level"]]:
            return
        record: dict = {
            "ts": round(time.time(), 6),
            "level": level,
            "logger": self.name,
            "msg": message,
        }
        run_id = _state["run_id"]
        if run_id is not None:
            record["run_id"] = run_id
        span = _state["tracer"].current()
        if span is not None:
            record["span"] = span.name
        for key, value in fields.items():
            if key not in record:
                record[key] = value
        line = json.dumps(record, default=str)
        stream = _state["stream"] or sys.stderr
        with _lock:
            stream.write(line + "\n")
            flush = getattr(stream, "flush", None)
            if flush is not None:
                flush()

    def debug(self, message: str, **fields) -> None:
        self._emit("debug", message, fields)

    def info(self, message: str, **fields) -> None:
        self._emit("info", message, fields)

    def warning(self, message: str, **fields) -> None:
        self._emit("warning", message, fields)

    def error(self, message: str, **fields) -> None:
        self._emit("error", message, fields)


def get_logger(name: str) -> JsonLogger:
    """Cached named logger (one instance per name)."""
    logger = _loggers.get(name)
    if logger is None:
        with _lock:
            logger = _loggers.setdefault(name, JsonLogger(name))
    return logger
