"""Metrics registry: labelled counters, gauges, and fixed-bucket histograms.

The paper's eavesdropper is a *continuously running* system — daily SGNS
retrains, 20-minute session windows, per-flow SNI extraction — and its
fidelity claims only hold if per-stage loss and latency are accounted for
(the constrained-view setting of arXiv:1710.00069 makes the same point:
what the observer fails to see is part of the result).  This module is the
one source of truth for those numbers.

Design:

* a :class:`MetricsRegistry` owns metric *families* (one per name); a
  family with ``labelnames`` fans out into children via ``labels()``,
  Prometheus-style; an unlabelled family proxies straight to its single
  child, so ``registry.counter("x").inc()`` just works;
* every mutation is lock-protected — counters incremented from many
  threads never lose updates;
* export is dual: Prometheus text exposition (``to_prometheus``) for
  scrapers and a JSON snapshot (``snapshot`` / ``to_json``) for files and
  tests, with :meth:`MetricsRegistry.diff` turning two snapshots into the
  flat delta dict assertions want;
* :class:`NullRegistry` is a drop-in no-op so hot paths pay (almost)
  nothing when telemetry is off — instrumented code can also check the
  ``null`` attribute before taking timestamps.

Naming conventions (documented in README "Observability"): metrics are
prefixed by stage (``netobs_``, ``quarantine_``, ``stream_``, ``train_``,
``profile_``, ``retrain_``, ``bench_``); counters end in ``_total``
(``_seconds_total`` when they accumulate time); histograms of durations
end in ``_seconds``.
"""

from __future__ import annotations

import bisect
import json
import re
import threading
import time
from contextlib import contextmanager

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

# Default histogram buckets, tuned for the latencies this pipeline sees:
# sub-millisecond packet parses up to multi-second training epochs.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

# Named presets so call sites stop hand-rolling bucket tuples: pick by
# the latency regime being measured, not by copy-pasting floats.
#: Hot-path operations: packet parses, per-session profiling, index
#: searches — 100 µs to 1 s with dense sub-10 ms resolution.
LATENCY_BUCKETS_FAST = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0,
)
#: Batch operations: training epochs, retrains, store publishes —
#: 10 ms to 10 minutes.
LATENCY_BUCKETS_SLOW = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    30.0, 60.0, 120.0, 300.0, 600.0,
)
#: Payload/object sizes in bytes, powers of four from 64 B to 16 MiB.
SIZE_BUCKETS = (
    64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0,
    262144.0, 1048576.0, 4194304.0, 16777216.0,
)


class MetricError(ValueError):
    """Invalid metric name, label set, bucket layout, or conflicting
    re-registration."""


def validate_buckets(buckets) -> tuple[float, ...]:
    """Normalize and validate histogram bucket bounds.

    Accepts any iterable of numbers; a trailing ``+Inf`` is tolerated and
    stripped (the overflow bucket is implicit).  Rejects — with a
    :class:`MetricError` naming the problem — empty layouts, non-finite
    bounds, duplicates, and out-of-order bounds, instead of silently
    reordering them (a silently sorted tuple hides a typo at the call
    site until a dashboard looks wrong).
    """
    try:
        bounds = tuple(float(b) for b in buckets)
    except (TypeError, ValueError) as error:
        raise MetricError(f"histogram buckets must be numbers: {error}")
    if bounds and bounds[-1] == float("inf"):
        bounds = bounds[:-1]  # +Inf is implicit
    if not bounds:
        raise MetricError(
            "histogram needs at least one finite bucket bound"
        )
    for bound in bounds:
        if bound != bound or bound in (float("inf"), float("-inf")):
            raise MetricError(
                f"histogram bucket bounds must be finite, got {bound!r}"
            )
    for lower, upper in zip(bounds, bounds[1:]):
        if lower == upper:
            raise MetricError(
                f"duplicate histogram bucket bound {lower!r}"
            )
        if lower > upper:
            raise MetricError(
                f"histogram bucket bounds must be ascending: "
                f"{lower!r} precedes {upper!r}"
            )
    return bounds


def _format_value(value: float) -> str:
    """Prometheus sample formatting: integers without the trailing .0.

    Non-finite values use the spec spellings (``+Inf``, ``-Inf``,
    ``NaN``) — ``repr(float("inf"))`` would emit ``inf``, which scrapers
    reject.
    """
    value = float(value)
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_bound(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    return f"{bound:g}"


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _label_suffix(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


# -- children ---------------------------------------------------------------


class Counter:
    """Monotonic counter (floats allowed, e.g. accumulated seconds)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError("counters can only increase")
        with self._lock:
            self._value += amount

    def reset(self, value: float = 0.0) -> None:
        """Set the absolute value — for checkpoint restore and tests only."""
        if value < 0:
            raise MetricError("counters cannot be negative")
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (queue depths, staleness, rates)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with an implicit +Inf overflow bucket.

    Bucket semantics are Prometheus's: a bucket with upper bound ``le``
    counts observations with ``value <= le`` — a value exactly on a
    boundary lands in that boundary's bucket, not the next one.

    Each bucket can retain one *exemplar*: the trace id of a recent
    observation that landed in it (plus the observed value and a
    timestamp).  A p99 outlier in the +Inf bucket then links straight to
    its trace tree via :meth:`Tracer.trace_spans`.
    """

    __slots__ = (
        "_bounds", "_counts", "_sum", "_count", "_lock", "_exemplars",
    )

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self._bounds = validate_buckets(buckets)  # ascending, +Inf excluded
        self._counts = [0] * (len(self._bounds) + 1)  # trailing slot is +Inf
        self._exemplars: list[tuple[str, float, float] | None] = (
            [None] * (len(self._bounds) + 1)
        )
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float, exemplar: str | None = None) -> None:
        index = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if exemplar is not None:
                self._exemplars[index] = (exemplar, value, time.time())

    @contextmanager
    def time(self):
        """Observe the wall time of a ``with`` block, in seconds."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start)

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """(upper bound, cumulative count) pairs, +Inf last."""
        out: list[tuple[float, int]] = []
        running = 0
        with self._lock:
            counts = list(self._counts)
        for bound, count in zip(self._bounds, counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return out

    def exemplars(self) -> dict[float, tuple[str, float, float]]:
        """{bucket upper bound: (trace_id, value, unix ts)} where retained."""
        with self._lock:
            retained = list(self._exemplars)
        bounds = list(self._bounds) + [float("inf")]
        return {
            bound: exemplar
            for bound, exemplar in zip(bounds, retained)
            if exemplar is not None
        }


# -- families ---------------------------------------------------------------


class _Family:
    """One named metric; children keyed by label values."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...]):
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._children: dict[tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def _make_child(self):
        raise NotImplementedError

    def labels(self, **labels: str):
        if tuple(sorted(labels)) != tuple(sorted(self.labelnames)):
            raise MetricError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    def _sole_child(self):
        """The single child of an unlabelled family (created on demand)."""
        if self.labelnames:
            raise MetricError(
                f"{self.name} is labelled by {self.labelnames}; "
                "use .labels(...)"
            )
        return self.labels()

    def samples(self) -> list[tuple[dict[str, str], object]]:
        """(labels dict, child) pairs, sorted by label values."""
        with self._lock:
            items = sorted(self._children.items())
        return [
            (dict(zip(self.labelnames, key)), child)
            for key, child in items
        ]


class CounterFamily(_Family):
    kind = "counter"

    def _make_child(self) -> Counter:
        return Counter()

    def inc(self, amount: float = 1.0) -> None:
        self._sole_child().inc(amount)

    def reset(self, value: float = 0.0) -> None:
        self._sole_child().reset(value)

    @property
    def value(self) -> float:
        return self._sole_child().value

    def total(self) -> float:
        """Sum over every labelled child."""
        return sum(child.value for _, child in self.samples())

    def value_of(self, **labels: str) -> float:
        return self.labels(**labels).value


class GaugeFamily(_Family):
    kind = "gauge"

    def _make_child(self) -> Gauge:
        return Gauge()

    def set(self, value: float) -> None:
        self._sole_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._sole_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._sole_child().dec(amount)

    @property
    def value(self) -> float:
        return self._sole_child().value


class HistogramFamily(_Family):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...],
    ):
        super().__init__(name, help, labelnames)
        self.buckets = buckets

    def _make_child(self) -> Histogram:
        return Histogram(self.buckets)

    def observe(self, value: float, exemplar: str | None = None) -> None:
        self._sole_child().observe(value, exemplar=exemplar)

    def time(self):
        return self._sole_child().time()

    def exemplars(self) -> dict[float, tuple[str, float, float]]:
        return self._sole_child().exemplars()

    @property
    def sum(self) -> float:
        return self._sole_child().sum

    @property
    def count(self) -> int:
        return self._sole_child().count


_FAMILY_TYPES = {
    "counter": CounterFamily,
    "gauge": GaugeFamily,
    "histogram": HistogramFamily,
}


# -- the registry -----------------------------------------------------------


class MetricsRegistry:
    """Thread-safe home of every metric family in one process/component.

    Registration is idempotent: asking for an existing name with the same
    type and label set returns the existing family, so independent
    components can share a registry without coordination; a conflicting
    re-registration raises :class:`MetricError`.
    """

    null = False

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    # -- registration -------------------------------------------------------

    def _register(self, cls, name: str, help: str,
                  labelnames: tuple[str, ...], **kwargs) -> _Family:
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        labelnames = tuple(labelnames)
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise MetricError(f"invalid label name {label!r}")
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if (
                    type(existing) is not cls
                    or existing.labelnames != labelnames
                ):
                    raise MetricError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}{existing.labelnames}"
                    )
                return existing
            family = cls(name, help, labelnames, **kwargs)
            if not labelnames:
                # Eagerly create the sole child so an unlabelled metric
                # exports a zero-valued series before its first use.
                family._sole_child()
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> CounterFamily:
        return self._register(CounterFamily, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> GaugeFamily:
        return self._register(GaugeFamily, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> HistogramFamily:
        buckets = validate_buckets(buckets)
        family = self._register(
            HistogramFamily, name, help, labelnames, buckets=buckets
        )
        if family.buckets != buckets:
            raise MetricError(
                f"histogram {name!r} already registered with different buckets"
            )
        return family

    def families(self) -> list[_Family]:
        with self._lock:
            return sorted(self._families.values(), key=lambda f: f.name)

    # -- export -------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe snapshot of every family and series."""
        metrics = []
        for family in self.families():
            series = []
            for labels, child in family.samples():
                if family.kind == "histogram":
                    entry = {
                        "labels": labels,
                        "count": child.count,
                        "sum": child.sum,
                        "buckets": {
                            _format_bound(bound): count
                            for bound, count in child.cumulative_buckets()
                        },
                    }
                    exemplars = child.exemplars()
                    if exemplars:
                        entry["exemplars"] = {
                            _format_bound(bound): {
                                "trace_id": trace_id,
                                "value": value,
                                "timestamp": timestamp,
                            }
                            for bound, (trace_id, value, timestamp)
                            in exemplars.items()
                        }
                    series.append(entry)
                else:
                    series.append({"labels": labels, "value": child.value})
            metrics.append({
                "name": family.name,
                "type": family.kind,
                "help": family.help,
                "labelnames": list(family.labelnames),
                "series": series,
            })
        return {"format": "repro-metrics-v1", "metrics": metrics}

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=False)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        return self._exposition(exemplars=False)

    def to_openmetrics(self) -> str:
        """OpenMetrics-style exposition with histogram bucket exemplars.

        Identical to :meth:`to_prometheus` except each bucket sample that
        retains an exemplar carries the ``# {trace_id="..."} value ts``
        suffix, and the output is terminated with ``# EOF``.  Scrapers
        that reject exemplar syntax should keep using ``/metrics`` in its
        default (0.0.4) shape.
        """
        return self._exposition(exemplars=True) + "# EOF\n"

    def _exposition(self, exemplars: bool) -> str:
        lines: list[str] = []
        for family in self.families():
            if family.help:
                lines.append(
                    f"# HELP {family.name} {_escape_help(family.help)}"
                )
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labels, child in family.samples():
                suffix = _label_suffix(labels)
                if family.kind == "histogram":
                    retained = child.exemplars() if exemplars else {}
                    for bound, count in child.cumulative_buckets():
                        bucket_labels = dict(labels)
                        bucket_labels["le"] = _format_bound(bound)
                        line = (
                            f"{family.name}_bucket"
                            f"{_label_suffix(bucket_labels)} {count}"
                        )
                        if bound in retained:
                            trace_id, value, timestamp = retained[bound]
                            line += (
                                f' # {{trace_id="{_escape_label(trace_id)}"}}'
                                f" {_format_value(value)} {timestamp:.6f}"
                            )
                        lines.append(line)
                    lines.append(
                        f"{family.name}_sum{suffix} "
                        f"{_format_value(child.sum)}"
                    )
                    lines.append(f"{family.name}_count{suffix} {child.count}")
                else:
                    lines.append(
                        f"{family.name}{suffix} {_format_value(child.value)}"
                    )
        return "\n".join(lines) + "\n"

    # -- snapshot algebra (for tests) ----------------------------------------

    @staticmethod
    def flatten(snapshot: dict) -> dict[str, float]:
        """Flatten a :meth:`snapshot` into {sample name: value}.

        Histograms contribute ``name_count``, ``name_sum`` and per-bucket
        ``name_bucket{...,le="..."}`` samples, mirroring the exposition.
        """
        flat: dict[str, float] = {}
        for family in snapshot.get("metrics", []):
            name = family["name"]
            for series in family["series"]:
                suffix = _label_suffix(series.get("labels", {}))
                if family["type"] == "histogram":
                    flat[f"{name}_count{suffix}"] = float(series["count"])
                    flat[f"{name}_sum{suffix}"] = float(series["sum"])
                    for bound, count in series["buckets"].items():
                        labels = dict(series.get("labels", {}))
                        labels["le"] = bound
                        flat[f"{name}_bucket{_label_suffix(labels)}"] = (
                            float(count)
                        )
                else:
                    flat[f"{name}{suffix}"] = float(series["value"])
        return flat

    @staticmethod
    def diff_snapshots(before: dict, after: dict) -> dict[str, float]:
        """Non-zero sample deltas between two snapshots (after - before)."""
        flat_before = MetricsRegistry.flatten(before)
        flat_after = MetricsRegistry.flatten(after)
        deltas = {}
        for key in sorted(set(flat_before) | set(flat_after)):
            delta = flat_after.get(key, 0.0) - flat_before.get(key, 0.0)
            if delta != 0.0:
                deltas[key] = delta
        return deltas

    def diff(self, before: dict) -> dict[str, float]:
        """Delta between an earlier :meth:`snapshot` and the registry now."""
        return self.diff_snapshots(before, self.snapshot())

    @staticmethod
    def merge_snapshots(snapshots: list[dict]) -> dict:
        """Merge per-process :meth:`snapshot` dicts into one fleet view.

        The sharded runtime's aggregation: each worker keeps a private
        registry (no cross-process locks on the hot path), the
        coordinator merges the snapshots.  Counters and gauges sum per
        (name, labels) series; histograms sum ``count``, ``sum`` and
        each cumulative bucket — which requires identical bucket
        layouts, and a mismatch raises :class:`MetricError` rather than
        producing a silently wrong distribution.  Exemplars keep the
        newest timestamp per bucket.  Series order is deterministic:
        family names sorted, series sorted by label items.
        """
        merged: dict[str, dict] = {}
        for snapshot in snapshots:
            if snapshot.get("format") != "repro-metrics-v1":
                raise MetricError(
                    f"cannot merge snapshot format "
                    f"{snapshot.get('format')!r}"
                )
            for family in snapshot.get("metrics", []):
                name = family["name"]
                home = merged.setdefault(name, {
                    "name": name,
                    "type": family["type"],
                    "help": family["help"],
                    "labelnames": list(family["labelnames"]),
                    "series": {},
                })
                if home["type"] != family["type"]:
                    raise MetricError(
                        f"metric {name!r} is {home['type']} in one "
                        f"snapshot and {family['type']} in another"
                    )
                for series in family["series"]:
                    labels = series.get("labels", {})
                    key = tuple(sorted(labels.items()))
                    slot = home["series"].get(key)
                    if family["type"] == "histogram":
                        if slot is None:
                            slot = {
                                "labels": dict(labels),
                                "count": 0,
                                "sum": 0.0,
                                "buckets": {
                                    b: 0 for b in series["buckets"]
                                },
                            }
                            home["series"][key] = slot
                        if set(slot["buckets"]) != set(series["buckets"]):
                            raise MetricError(
                                f"histogram {name!r} has mismatched "
                                f"bucket layouts across snapshots"
                            )
                        slot["count"] += series["count"]
                        slot["sum"] += series["sum"]
                        for bound, count in series["buckets"].items():
                            slot["buckets"][bound] += count
                        for bound, exemplar in series.get(
                            "exemplars", {}
                        ).items():
                            existing = slot.setdefault(
                                "exemplars", {}
                            ).get(bound)
                            if (
                                existing is None
                                or exemplar["timestamp"]
                                > existing["timestamp"]
                            ):
                                slot["exemplars"][bound] = dict(exemplar)
                    else:
                        if slot is None:
                            slot = {"labels": dict(labels), "value": 0.0}
                            home["series"][key] = slot
                        slot["value"] += series["value"]
        metrics = []
        for name in sorted(merged):
            family = merged[name]
            metrics.append({
                "name": family["name"],
                "type": family["type"],
                "help": family["help"],
                "labelnames": family["labelnames"],
                "series": [
                    family["series"][key]
                    for key in sorted(family["series"])
                ],
            })
        return {"format": "repro-metrics-v1", "metrics": metrics}


# -- the no-op registry -----------------------------------------------------


class _NullTimer:
    """Reusable, stateless no-op context manager."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


_NULL_TIMER = _NullTimer()


class _NullMetric:
    """Absorbs every metric operation; ``labels()`` returns itself."""

    def labels(self, **labels):
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float, exemplar: str | None = None) -> None:
        pass

    def exemplars(self) -> dict:
        return {}

    def reset(self, value: float = 0.0) -> None:
        pass

    def time(self):
        return _NULL_TIMER

    @property
    def value(self) -> float:
        return 0.0

    @property
    def sum(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0

    def total(self) -> float:
        return 0.0

    def value_of(self, **labels) -> float:
        return 0.0

    def samples(self) -> list:
        return []


_NULL_METRIC = _NullMetric()


class NullRegistry(MetricsRegistry):
    """No-op registry: instruments vanish, exports are empty.

    The default for hot-path components (training, per-session profiling)
    so uninstrumented runs pay essentially nothing; code that would take
    timestamps can skip them when ``registry.null`` is true.
    """

    null = True

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name, help="", labelnames=()):
        return _NULL_METRIC

    def gauge(self, name, help="", labelnames=()):
        return _NULL_METRIC

    def histogram(self, name, help="", labelnames=(), buckets=DEFAULT_BUCKETS):
        return _NULL_METRIC

    def families(self) -> list:
        return []


NULL_REGISTRY = NullRegistry()


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Module-level alias of :meth:`MetricsRegistry.merge_snapshots`."""
    return MetricsRegistry.merge_snapshots(snapshots)


# -- snapshot relabelling & exposition ---------------------------------------


def label_snapshot(snapshot: dict, **labels: str) -> dict:
    """A copy of ``snapshot`` with extra labels stamped on every series.

    The fleet-merge primitive: the coordinator stamps each worker's
    snapshot with ``shard="N"`` before merging, so per-shard series stay
    distinguishable in the fleet exposition instead of summing away.
    Stamping a label a series already carries is a :class:`MetricError`
    (it would silently overwrite a real dimension).
    """
    if snapshot.get("format") != "repro-metrics-v1":
        raise MetricError(
            f"cannot relabel snapshot format {snapshot.get('format')!r}"
        )
    for name in labels:
        if not _LABEL_RE.match(name):
            raise MetricError(f"invalid label name {name!r}")
    stamped = {str(k): str(v) for k, v in labels.items()}
    metrics = []
    for family in snapshot.get("metrics", []):
        collision = set(stamped) & set(family["labelnames"])
        if collision:
            raise MetricError(
                f"metric {family['name']!r} already carries label(s) "
                f"{sorted(collision)}"
            )
        series = []
        for entry in family["series"]:
            entry = dict(entry)
            entry["labels"] = {**entry.get("labels", {}), **stamped}
            series.append(entry)
        metrics.append({
            **family,
            "labelnames": list(family["labelnames"]) + sorted(stamped),
            "series": series,
        })
    return {"format": "repro-metrics-v1", "metrics": metrics}


def _parse_bound(spelling: str) -> float:
    return float("inf") if spelling == "+Inf" else float(spelling)


def snapshot_to_prometheus(snapshot: dict, exemplars: bool = False) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as text exposition.

    The live registries render themselves (:meth:`to_prometheus`); this
    renders *merged* snapshots — the fleet view assembled from per-worker
    snapshots that exist only as dicts on the coordinator.  Output
    matches the live exposition shape sample for sample.
    """
    if snapshot.get("format") != "repro-metrics-v1":
        raise MetricError(
            f"cannot render snapshot format {snapshot.get('format')!r}"
        )
    lines: list[str] = []
    for family in snapshot.get("metrics", []):
        name = family["name"]
        if family.get("help"):
            lines.append(f"# HELP {name} {_escape_help(family['help'])}")
        lines.append(f"# TYPE {name} {family['type']}")
        for series in family["series"]:
            labels = series.get("labels", {})
            suffix = _label_suffix(labels)
            if family["type"] == "histogram":
                retained = series.get("exemplars", {}) if exemplars else {}
                buckets = sorted(
                    series["buckets"].items(),
                    key=lambda item: _parse_bound(item[0]),
                )
                for bound, count in buckets:
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = bound
                    line = (
                        f"{name}_bucket"
                        f"{_label_suffix(bucket_labels)} {count}"
                    )
                    exemplar = retained.get(bound)
                    if exemplar is not None:
                        trace_id = _escape_label(exemplar["trace_id"])
                        line += (
                            f' # {{trace_id="{trace_id}"}}'
                            f" {_format_value(exemplar['value'])}"
                            f" {exemplar['timestamp']:.6f}"
                        )
                    lines.append(line)
                lines.append(
                    f"{name}_sum{suffix} {_format_value(series['sum'])}"
                )
                lines.append(f"{name}_count{suffix} {series['count']}")
            else:
                lines.append(
                    f"{name}{suffix} {_format_value(series['value'])}"
                )
    return "\n".join(lines) + "\n"
