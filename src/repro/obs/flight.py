"""Flight recorder: a bounded ring of recent events, dumped on death.

Metrics tell you *how much*, traces tell you *where the time went*; the
flight recorder answers the post-mortem question — *what was the process
doing right before it died*.  It keeps the last ``capacity`` structured
events in a lock-protected ring buffer:

============== ==============================================================
kind           recorded by
============== ==============================================================
``span``       tracer span completions (name, duration, trace ids)
``state``      lifecycle transitions (checkpoint restore, retrain, rollback)
``quarantine`` stream-hygiene decisions (what was rejected and why)
``drift``      drift-monitor verdicts and gate decisions
``slo``        SLO alert fire/clear transitions
``flow``       digests of the last N ingested flows (client, host, source)
``crash``      the terminal event appended by the dump hooks themselves
============== ==============================================================

Each event is ``{"seq", "wall", "kind", "name", **fields}`` — JSON-safe
by construction (fields are coerced with ``repr`` as a last resort).

Dumps are atomic (tempfile + ``os.replace``) and are triggered three
ways: on demand (``/flight`` admin route, ``repro doctor``), on unhandled
exception (a chained ``sys.excepthook``), and on SIGTERM (handler chains
to the previous one, so supervisors still observe the default death).
``install_crash_hooks`` is opt-in — library use never mutates process
globals; only the CLI entry points install.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import tempfile
import threading
import time
from collections import deque
from pathlib import Path

from repro.obs.logging import get_logger
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry

log = get_logger("obs.flight")

DEFAULT_CAPACITY = 2048
FORMAT = "repro-flight-v1"

EVENT_KINDS = (
    "span", "state", "quarantine", "drift", "slo", "flow", "crash",
    "worker",   # fleet lifecycle: shard spawn/crash/respawn/replay/done
)


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


class FlightRecorder:
    """Bounded in-memory ring of recent structured events; thread-safe."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        registry: MetricsRegistry = NULL_REGISTRY,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._ring: deque[dict] = deque(maxlen=self.capacity)
        self._seq = 0
        self._started_wall = time.time()
        self._events_total = registry.counter(
            "flight_events_total",
            "Events appended to the flight recorder, by kind.",
            labelnames=("kind",),
        )
        self._dumps_total = registry.counter(
            "flight_dumps_total",
            "Flight-recorder dumps written, by trigger.",
            labelnames=("trigger",),
        )

    # -- recording -----------------------------------------------------------

    def record(self, kind: str, name: str, **fields) -> None:
        """Append one event; never raises (the recorder must not be able
        to take down the pipeline it is observing)."""
        try:
            event = {
                "seq": 0,  # stamped under the lock
                "wall": time.time(),
                "kind": kind,
                "name": name,
            }
            if fields:
                event.update(
                    {k: _jsonable(v) for k, v in fields.items()}
                )
            with self._lock:
                self._seq += 1
                event["seq"] = self._seq
                self._ring.append(event)
            self._events_total.labels(kind=kind).inc()
        except Exception:
            pass

    def span_observer(self, span) -> None:
        """Record a completed (sampled) span — tracer hook signature."""
        self.record(
            "span",
            span.name,
            duration_ms=round(span.duration * 1e3, 3),
            trace_id=span.trace_id,
            span_id=span.span_id,
        )

    def slo_observer(self, slo_name: str, active: bool, state: dict) -> None:
        """SLO transition hook (``SLOEngine.on_transition`` signature)."""
        self.record(
            "slo",
            slo_name,
            direction="fire" if active else "clear",
            burn_fast=state.get("burn_fast"),
            burn_slow=state.get("burn_slow"),
        )

    # -- reading / dumping ---------------------------------------------------

    def events(self) -> list[dict]:
        with self._lock:
            return list(self._ring)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def report(self, reason: str = "on-demand") -> dict:
        events = self.events()
        kinds: dict[str, int] = {}
        for event in events:
            kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
        return {
            "format": FORMAT,
            "reason": reason,
            "dumped_at": time.time(),
            "started_at": self._started_wall,
            "capacity": self.capacity,
            "dropped": max(0, self._seq - len(events)),
            "kinds": kinds,
            "events": events,
        }

    def dump(self, path, reason: str = "on-demand") -> Path:
        """Atomically write the current ring to ``path`` as JSON."""
        path = Path(path)
        payload = json.dumps(self.report(reason=reason), indent=2)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._dumps_total.labels(trigger=reason).inc()
        return path

    # -- crash hooks ---------------------------------------------------------

    def install_crash_hooks(self, path) -> None:
        """Dump to ``path`` on unhandled exception and on SIGTERM.

        Both hooks chain to whatever was installed before them, so
        interpreter tracebacks still print and supervisors still see the
        default SIGTERM death.  Call once, from a process entry point.
        """
        path = Path(path)
        previous_excepthook = sys.excepthook

        def excepthook(exc_type, exc_value, exc_tb):
            self.record(
                "crash",
                "unhandled-exception",
                exc_type=exc_type.__name__,
                message=str(exc_value),
            )
            try:
                dumped = self.dump(path, reason="unhandled-exception")
                log.error("flight recorder dumped", path=str(dumped))
            except Exception:
                pass
            previous_excepthook(exc_type, exc_value, exc_tb)

        sys.excepthook = excepthook

        if threading.current_thread() is not threading.main_thread():
            return  # signal handlers can only be set on the main thread
        try:
            previous_handler = signal.getsignal(signal.SIGTERM)

            def on_sigterm(signum, frame):
                self.record("crash", "sigterm")
                try:
                    self.dump(path, reason="sigterm")
                except Exception:
                    pass
                if callable(previous_handler):
                    previous_handler(signum, frame)
                else:
                    signal.signal(signal.SIGTERM, signal.SIG_DFL)
                    os.kill(os.getpid(), signal.SIGTERM)

            signal.signal(signal.SIGTERM, on_sigterm)
        except (ValueError, OSError):
            pass
