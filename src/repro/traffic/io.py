"""Trace persistence: gzipped JSON-lines.

Synthetic traces take minutes to generate at study scale; persisting them
makes experiments resumable and lets external tools (or a real data
donor's export) feed the pipeline.  The format is deliberately trivial —
one JSON object per request — so anything can produce it:

    {"u": 3, "t": 86405.2, "h": "hotelmundo.com", "k": "site", "s": "hotelmundo.com"}

``k`` (host kind) and ``s`` (owning site) are ground-truth annotations;
external data without them can use ``"k": "site"`` and ``"s": <hostname>``,
which is all a real observer knows anyway.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path

from repro.traffic.events import HostKind, Request
from repro.traffic.generator import Trace
from repro.utils.timeutils import DAY_SECONDS


class TraceFormatError(ValueError):
    """Raised for records that do not parse as requests."""


def save_trace(trace: Trace, path: str | Path) -> int:
    """Write the trace as gzipped JSON-lines; returns the request count."""
    path = Path(path)
    count = 0
    with gzip.open(path, "wt", encoding="utf-8") as handle:
        header = {"format": "repro-trace-v1", "start_day": trace.start_day,
                  "num_days": len(trace)}
        handle.write(json.dumps(header) + "\n")
        for offset, day_requests in enumerate(trace.days):
            for request in day_requests:
                record = {
                    "d": trace.start_day + offset,
                    "u": request.user_id,
                    "t": round(request.timestamp, 3),
                    "h": request.hostname,
                    "k": request.kind.value,
                    "s": request.site_domain,
                }
                handle.write(json.dumps(record) + "\n")
                count += 1
    return count


def load_trace(path: str | Path) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    path = Path(path)
    with gzip.open(path, "rt", encoding="utf-8") as handle:
        header_line = handle.readline()
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"bad header: {exc}") from exc
        if header.get("format") != "repro-trace-v1":
            raise TraceFormatError(
                f"unknown format {header.get('format')!r}"
            )
        start_day = int(header["start_day"])
        num_days = int(header["num_days"])
        days: list[list[Request]] = [[] for _ in range(num_days)]
        for line_number, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                request = Request(
                    user_id=int(record["u"]),
                    timestamp=float(record["t"]),
                    hostname=str(record["h"]),
                    kind=HostKind(record["k"]),
                    site_domain=str(record["s"]),
                )
                if "d" in record:
                    day_index = int(record["d"]) - start_day
                else:
                    # external data without day annotations: bucket by
                    # timestamp, clamping midnight spill to the last day
                    day_index = (
                        int(request.timestamp // DAY_SECONDS) - start_day
                    )
                day_index = min(max(day_index, 0), num_days - 1)
            except (json.JSONDecodeError, KeyError, ValueError) as exc:
                raise TraceFormatError(
                    f"line {line_number}: {exc}"
                ) from exc
            days[day_index].append(request)
    for day in days:
        day.sort(key=lambda r: (r.timestamp, r.user_id))
    return Trace(days=days, start_day=start_day)
