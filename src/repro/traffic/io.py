"""Trace persistence: gzipped JSON-lines, single-file or sharded.

Synthetic traces take minutes to generate at study scale; persisting them
makes experiments resumable and lets external tools (or a real data
donor's export) feed the pipeline.  The format is deliberately trivial —
one JSON object per request — so anything can produce it:

    {"u": 3, "t": 86405.2, "h": "hotelmundo.com", "k": "site", "s": "hotelmundo.com"}

``k`` (host kind) and ``s`` (owning site) are ground-truth annotations;
external data without them can use ``"k": "site"`` and ``"s": <hostname>``,
which is all a real observer knows anyway.

Two writers cover both ends of the scale:

* :func:`save_trace` writes one ``.jsonl.gz`` file.  It accepts either a
  materialized :class:`Trace` or the streaming-generator batch iterator —
  the streamed path is constant-memory (the header's day range is fixed
  up by writing the body first and prepending the header as a separate
  gzip member, which any gzip reader transparently concatenates).
* :class:`ShardedTraceWriter` appends batches into a directory of bounded
  shards plus a manifest — the spill format for million-user worlds,
  readable back as a stream (:func:`iter_trace_shards`) without ever
  materializing the trace.
"""

from __future__ import annotations

import gzip
import json
import shutil
from pathlib import Path
from typing import Iterable, Iterator

from repro.traffic.events import HostKind, Request
from repro.traffic.generator import Trace, TraceBatch
from repro.utils.timeutils import DAY_SECONDS

TRACE_FORMAT = "repro-trace-v1"
SHARDS_FORMAT = "repro-trace-shards-v1"


class TraceFormatError(ValueError):
    """Raised for records that do not parse as requests."""


def _record(day: int, request: Request) -> str:
    return json.dumps(
        {
            "d": day,
            "u": request.user_id,
            "t": round(request.timestamp, 3),
            "h": request.hostname,
            "k": request.kind.value,
            "s": request.site_domain,
        }
    )


def _day_of(batch_or_request) -> int:
    if isinstance(batch_or_request, TraceBatch):
        return batch_or_request.day
    return int(batch_or_request.timestamp // DAY_SECONDS)


def _requests_of(batch_or_request) -> Iterable[Request]:
    if isinstance(batch_or_request, TraceBatch):
        return batch_or_request.requests
    return (batch_or_request,)


def _header(start_day: int, num_days: int) -> str:
    return json.dumps(
        {"format": TRACE_FORMAT, "start_day": start_day,
         "num_days": num_days}
    )


def save_trace(
    trace: Trace | Iterable,
    path: str | Path,
) -> int:
    """Write a trace as gzipped JSON-lines; returns the request count.

    ``trace`` is either a materialized :class:`Trace` or an iterable of
    :class:`TraceBatch` / :class:`Request` (e.g.
    ``StreamingTraceGenerator.batches(...)``).  The streamed path never
    holds more than one batch in memory: the body is written first to a
    sidecar file, then the final file is assembled as two concatenated
    gzip members (header, body) — a format every gzip reader, including
    :func:`load_trace`, already handles.
    """
    path = Path(path)
    if isinstance(trace, Trace):
        count = 0
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write(_header(trace.start_day, len(trace)) + "\n")
            for offset, day_requests in enumerate(trace.days):
                day = trace.start_day + offset
                for request in day_requests:
                    handle.write(_record(day, request) + "\n")
                    count += 1
        return count

    body = path.with_name(path.name + ".body")
    count = 0
    min_day: int | None = None
    max_day: int | None = None
    try:
        with gzip.open(body, "wt", encoding="utf-8") as handle:
            for item in trace:
                day = _day_of(item)
                min_day = day if min_day is None else min(min_day, day)
                max_day = day if max_day is None else max(max_day, day)
                for request in _requests_of(item):
                    handle.write(_record(day, request) + "\n")
                    count += 1
        if min_day is None:
            raise ValueError("cannot save an empty request stream")
        with open(path, "wb") as out:
            out.write(
                gzip.compress(
                    (_header(min_day, max_day - min_day + 1) + "\n").encode(
                        "utf-8"
                    )
                )
            )
            with open(body, "rb") as body_handle:
                shutil.copyfileobj(body_handle, out)
    finally:
        body.unlink(missing_ok=True)
    return count


def _parse_record(line: str, line_number: int) -> tuple[Request, int | None]:
    try:
        record = json.loads(line)
        request = Request(
            user_id=int(record["u"]),
            timestamp=float(record["t"]),
            hostname=str(record["h"]),
            kind=HostKind(record["k"]),
            site_domain=str(record["s"]),
        )
        day = int(record["d"]) if "d" in record else None
    except (json.JSONDecodeError, KeyError, ValueError) as exc:
        raise TraceFormatError(f"line {line_number}: {exc}") from exc
    return request, day


def _read_header(handle) -> tuple[int, int]:
    header_line = handle.readline()
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"bad header: {exc}") from exc
    if header.get("format") != TRACE_FORMAT:
        raise TraceFormatError(f"unknown format {header.get('format')!r}")
    return int(header["start_day"]), int(header["num_days"])


def load_trace(path: str | Path) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    path = Path(path)
    with gzip.open(path, "rt", encoding="utf-8") as handle:
        start_day, num_days = _read_header(handle)
        days: list[list[Request]] = [[] for _ in range(num_days)]
        for line_number, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            request, day = _parse_record(line, line_number)
            if day is not None:
                day_index = day - start_day
            else:
                # external data without day annotations: bucket by
                # timestamp, clamping midnight spill to the last day
                day_index = (
                    int(request.timestamp // DAY_SECONDS) - start_day
                )
            day_index = min(max(day_index, 0), num_days - 1)
            days[day_index].append(request)
    for day in days:
        day.sort(key=lambda r: (r.timestamp, r.user_id))
    return Trace(days=days, start_day=start_day)


def iter_trace(path: str | Path) -> Iterator[Request]:
    """Stream a saved trace's requests in file order, without a Trace.

    Files written from the streaming generator are already globally
    time-ordered per day, so large-scale consumers can pipeline this
    straight into the observer without ``load_trace``'s O(trace) memory.
    """
    path = Path(path)
    with gzip.open(path, "rt", encoding="utf-8") as handle:
        _read_header(handle)
        for line_number, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            request, _ = _parse_record(line, line_number)
            yield request


# -- sharded spill format ----------------------------------------------------


class ShardedTraceWriter:
    """Append-only sharded trace writer (the out-of-core spill format).

    Batches append into ``shard-NNNNN.jsonl.gz`` files of bounded size; a
    ``MANIFEST.json`` written on close records the shard list and day
    range.  Usable as a context manager; reading back is streamed via
    :func:`iter_trace_shards`.
    """

    def __init__(
        self, directory: str | Path, events_per_shard: int = 250_000
    ):
        if events_per_shard < 1:
            raise ValueError("events_per_shard must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.events_per_shard = int(events_per_shard)
        self.num_requests = 0
        self.min_day: int | None = None
        self.max_day: int | None = None
        self.shards: list[str] = []
        self._handle = None
        self._shard_events = 0

    def _roll(self) -> None:
        if self._handle is not None:
            self._handle.close()
        name = f"shard-{len(self.shards):05d}.jsonl.gz"
        self.shards.append(name)
        self._handle = gzip.open(
            self.directory / name, "wt", encoding="utf-8"
        )
        self._shard_events = 0

    def write(self, batch_or_request) -> int:
        """Append one TraceBatch (or single Request); returns events written."""
        day = _day_of(batch_or_request)
        self.min_day = day if self.min_day is None else min(self.min_day, day)
        self.max_day = day if self.max_day is None else max(self.max_day, day)
        written = 0
        for request in _requests_of(batch_or_request):
            if (
                self._handle is None
                or self._shard_events >= self.events_per_shard
            ):
                self._roll()
            self._handle.write(_record(day, request) + "\n")
            self._shard_events += 1
            written += 1
        self.num_requests += written
        return written

    def close(self) -> dict:
        """Finalize shards and write the manifest; returns the manifest."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        if self.min_day is None:
            raise ValueError("cannot finalize an empty sharded trace")
        manifest = {
            "format": SHARDS_FORMAT,
            "start_day": self.min_day,
            "num_days": self.max_day - self.min_day + 1,
            "num_requests": self.num_requests,
            "shards": self.shards,
        }
        (self.directory / "MANIFEST.json").write_text(
            json.dumps(manifest, indent=2) + "\n"
        )
        return manifest

    def __enter__(self) -> "ShardedTraceWriter":
        return self

    def __exit__(self, exc_type, exc_value, exc_tb) -> None:
        if exc_type is None:
            self.close()
        elif self._handle is not None:
            self._handle.close()
            self._handle = None


def read_shard_manifest(directory: str | Path) -> dict:
    path = Path(directory) / "MANIFEST.json"
    try:
        manifest = json.loads(path.read_text())
    except FileNotFoundError as exc:
        raise TraceFormatError(f"no MANIFEST.json in {directory}") from exc
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"bad manifest: {exc}") from exc
    if manifest.get("format") != SHARDS_FORMAT:
        raise TraceFormatError(
            f"unknown shard format {manifest.get('format')!r}"
        )
    return manifest


def _iter_shard_records(
    directory: Path,
) -> Iterator[tuple[Request, int | None]]:
    manifest = read_shard_manifest(directory)
    for name in manifest["shards"]:
        with gzip.open(
            directory / name, "rt", encoding="utf-8"
        ) as handle:
            for line_number, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                yield _parse_record(line, line_number)


def iter_trace_shards(directory: str | Path) -> Iterator[Request]:
    """Stream every request of a sharded trace in write order."""
    for request, _ in _iter_shard_records(Path(directory)):
        yield request


def load_trace_shards(directory: str | Path) -> Trace:
    """Materialize a sharded trace (small worlds / tests only)."""
    directory = Path(directory)
    manifest = read_shard_manifest(directory)
    start_day = int(manifest["start_day"])
    num_days = int(manifest["num_days"])
    days: list[list[Request]] = [[] for _ in range(num_days)]
    for request, day in _iter_shard_records(directory):
        if day is not None:
            day_index = day - start_day
        else:
            day_index = int(request.timestamp // DAY_SECONDS) - start_day
        day_index = min(max(day_index, 0), num_days - 1)
        days[day_index].append(request)
    for day_requests in days:
        day_requests.sort(key=lambda r: (r.timestamp, r.user_id))
    return Trace(days=days, start_day=start_day)
