"""Multi-day, multi-user trace generation — materialized and streamed.

``TraceGenerator`` assembles the browsing model into the artefact every
other subsystem consumes: a :class:`Trace`, i.e. per-day lists of requests
across the whole population.  Day/user randomness is derived independently
(``derive_rng(seed, "day{d}.user{u}")``) so any day can be regenerated in
isolation and in any order — which is how the daily-retraining pipeline and
the benchmarks slice the timeline.

:class:`StreamingTraceGenerator` is the out-of-core counterpart: the same
seeded model, emitted as bounded, time-ordered :class:`TraceBatch`es
instead of a whole-population ``Trace``.  Users are realized in chunks,
each chunk's day is sorted and (when more than one chunk exists) spilled
to disk, and the shards are heap-merged back into one globally
``(timestamp, user_id)``-ordered stream — a classic external sort whose
peak memory is O(chunk + batch), never O(population).  The correctness
spine is *seeded equivalence*: for any (seed, config) the concatenated
batches of a day are byte-identical to the legacy materialized
``Trace.day(d)`` (the parity property tests pin exactly this).

Generation is resumable: every batch carries a :class:`GenerationCursor`
``(day, batch_index)`` that can be serialized like a checkpoint and handed
back to :meth:`StreamingTraceGenerator.batches` to continue mid-day
without duplicating or dropping a single event.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import os
import tempfile
import time
import weakref
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.obs.metrics import (
    LATENCY_BUCKETS_SLOW,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.traffic.events import HostKind, Request
from repro.traffic.sessions import BrowsingModel, SessionConfig
from repro.traffic.users import UserPopulation, UserProfile
from repro.traffic.web import SyntheticWeb
from repro.utils.randomness import derive_rng
from repro.utils.timeutils import DAY_SECONDS, HOUR_SECONDS


@dataclass
class Trace:
    """Requests grouped by day, each day sorted by timestamp."""

    days: list[list[Request]]
    start_day: int = 0

    def __len__(self) -> int:
        return len(self.days)

    def day(self, day: int) -> list[Request]:
        """Requests of absolute day index ``day``."""
        index = day - self.start_day
        if not 0 <= index < len(self.days):
            last = self.start_day + len(self.days) - 1
            raise ValueError(
                f"day {day} outside trace range "
                f"[{self.start_day}, {last}]"
            )
        return self.days[index]

    def all_requests(self) -> Iterator[Request]:
        for day_requests in self.days:
            yield from day_requests

    @property
    def num_requests(self) -> int:
        return sum(len(day) for day in self.days)

    def distinct_hostnames(self) -> set[str]:
        return {r.hostname for r in self.all_requests()}

    def user_ids(self) -> set[int]:
        return {r.user_id for r in self.all_requests()}

    def user_sequences(self, day: int) -> dict[int, list[Request]]:
        """Per-user request lists for one day (each sorted by time)."""
        sequences: dict[int, list[Request]] = defaultdict(list)
        for request in self.day(day):
            sequences[request.user_id].append(request)
        return dict(sequences)

    def per_user_hostnames(self) -> dict[int, set[str]]:
        """Which hostnames each user touched over the whole trace."""
        seen: dict[int, set[str]] = defaultdict(set)
        for request in self.all_requests():
            seen[request.user_id].add(request.hostname)
        return dict(seen)

    def counts_by_kind(self) -> Counter:
        return Counter(r.kind for r in self.all_requests())

    def hostname_counts(self) -> Counter:
        return Counter(r.hostname for r in self.all_requests())

    def filter(self, keep) -> "Trace":
        """A new trace containing only requests for which ``keep(r)``."""
        return Trace(
            days=[[r for r in day if keep(r)] for day in self.days],
            start_day=self.start_day,
        )


@dataclass
class DiurnalModel:
    """When during the day sessions start.

    A two-peak mixture (lunchtime + evening) wrapped into [0, 24h); crude
    but sufficient to make "last 20 minutes" sessions realistic and to
    spread load across each simulated day.
    """

    peaks_hours: tuple[float, ...] = (13.0, 21.0)
    peak_weights: tuple[float, ...] = (0.4, 0.6)
    spread_hours: float = 3.0

    def sample_start(self, day: int, rng: np.random.Generator) -> float:
        peak = self.peaks_hours[
            int(rng.choice(len(self.peaks_hours), p=self.peak_weights))
        ]
        hour = float(rng.normal(peak, self.spread_hours)) % 24.0
        return day * DAY_SECONDS + hour * HOUR_SECONDS


def user_day_requests(
    model: BrowsingModel,
    diurnal: DiurnalModel,
    seed: int,
    user: UserProfile,
    day: int,
) -> list[Request]:
    """One user's requests for one day, from their own derived stream.

    This is the shared seeded kernel of both generators: because the rng is
    namespaced ``day{d}.user{u}``, any (day, user) cell is reconstructible
    in isolation — the property the streaming generator's resume cursor and
    the materialized/streamed parity guarantee both rest on.
    """
    rng = derive_rng(seed, f"day{day}.user{user.user_id}")
    n_sessions = int(rng.poisson(user.sessions_per_day))
    requests: list[Request] = []
    for _ in range(n_sessions):
        start = diurnal.sample_start(day, rng)
        requests.extend(model.session_requests(user, start, rng))
    return requests


class TraceGenerator:
    """Turns (web, population, seed) into reproducible daily traces."""

    def __init__(
        self,
        web: SyntheticWeb,
        population: UserPopulation,
        seed: int,
        session_config: SessionConfig | None = None,
        diurnal: DiurnalModel | None = None,
    ):
        self.web = web
        self.population = population
        self.seed = int(seed)
        self.model = BrowsingModel(web, session_config)
        self.diurnal = diurnal or DiurnalModel()

    def _user_day_requests(
        self, user: UserProfile, day: int
    ) -> list[Request]:
        return user_day_requests(
            self.model, self.diurnal, self.seed, user, day
        )

    def day_requests(self, day: int) -> list[Request]:
        """All requests of one absolute day, sorted by timestamp."""
        if day < 0:
            raise ValueError("day must be >= 0")
        requests: list[Request] = []
        for user in self.population:
            requests.extend(self._user_day_requests(user, day))
        requests.sort(key=lambda r: (r.timestamp, r.user_id))
        return requests

    def generate(self, num_days: int, start_day: int = 0) -> Trace:
        """Generate ``num_days`` consecutive days starting at ``start_day``."""
        if num_days < 1:
            raise ValueError("num_days must be >= 1")
        return Trace(
            days=[
                self.day_requests(day)
                for day in range(start_day, start_day + num_days)
            ],
            start_day=start_day,
        )


# -- streaming generation ----------------------------------------------------

CURSOR_FORMAT = "repro-worldgen-cursor-v1"


@dataclass(frozen=True)
class GenerationCursor:
    """Resume position of a streamed generation: the next batch to emit.

    ``(day, batch_index)`` identifies the first batch that has *not* been
    consumed yet; ``events_emitted`` is the cumulative event count up to the
    cursor (informational); ``config_digest`` fingerprints the generator
    configuration so a cursor cannot silently resume a different world.
    """

    day: int
    batch_index: int
    events_emitted: int = 0
    config_digest: str | None = None

    def save(self, path: str | Path) -> Path:
        """Serialize like a checkpoint: atomic replace, format-tagged."""
        path = Path(path)
        payload = {
            "format": CURSOR_FORMAT,
            "day": self.day,
            "batch_index": self.batch_index,
            "events_emitted": self.events_emitted,
            "config_digest": self.config_digest,
        }
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2) + "\n")
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: str | Path) -> "GenerationCursor":
        data = json.loads(Path(path).read_text())
        if data.get("format") != CURSOR_FORMAT:
            raise ValueError(
                f"unknown cursor format {data.get('format')!r}"
            )
        return cls(
            day=int(data["day"]),
            batch_index=int(data["batch_index"]),
            events_emitted=int(data.get("events_emitted", 0)),
            config_digest=data.get("config_digest"),
        )


@dataclass
class TraceBatch:
    """A bounded, time-ordered slice of one day's request stream.

    ``resume_cursor`` points at the batch *after* this one: persisting it
    after consuming the batch makes the generation exactly-once resumable.
    """

    day: int
    index: int
    requests: list[Request] = field(repr=False)
    resume_cursor: GenerationCursor | None = None

    def __len__(self) -> int:
        return len(self.requests)


def _read_spill(handle) -> Iterator[Request]:
    """Decode one spill shard (full-precision JSON rows) lazily."""
    for line in handle:
        t, user_id, hostname, kind, site = json.loads(line)
        yield Request(
            user_id=user_id,
            timestamp=t,
            hostname=hostname,
            kind=HostKind(kind),
            site_domain=site,
        )


class StreamingTraceGenerator:
    """Seeded, resumable, out-of-core trace generation.

    Produces exactly the request stream :class:`TraceGenerator` would
    materialize — byte-identical per day for the same ``(seed, config)`` —
    but as an iterator of bounded :class:`TraceBatch`es whose peak memory
    is O(users_per_chunk + batch_events), never O(population x day).

    ``population`` is any provider with ``__len__`` and
    ``profile(user_id) -> UserProfile``: the materialized
    :class:`~repro.traffic.users.UserPopulation` or the million-user
    :class:`~repro.traffic.users.LazyUserPopulation`.
    """

    def __init__(
        self,
        web: SyntheticWeb,
        population,
        seed: int,
        session_config: SessionConfig | None = None,
        diurnal: DiurnalModel | None = None,
        batch_events: int = 8192,
        users_per_chunk: int = 25_000,
        spill_dir: str | Path | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        flight=None,
        user_filter=None,
        shard_key: str | None = None,
    ):
        """``user_filter`` restricts generation to the user ids for which
        ``user_filter(user_id)`` is true — the sharded runtime's per-shard
        view of the same seeded world.  Because each (day, user) cell is
        independently seeded, the filtered stream is exactly the full
        stream restricted to those users, and users outside the filter
        cost nothing (their sessions are never realized).  A filter must
        come with a ``shard_key`` naming the partition; the key is folded
        into :attr:`config_digest` so a cursor written under one shard
        assignment can never silently resume a different one.
        """
        if batch_events < 1:
            raise ValueError("batch_events must be >= 1")
        if users_per_chunk < 1:
            raise ValueError("users_per_chunk must be >= 1")
        if (user_filter is None) != (shard_key is None):
            raise ValueError(
                "user_filter and shard_key must be provided together"
            )
        self.web = web
        self.population = population
        self.seed = int(seed)
        self.model = BrowsingModel(web, session_config)
        self.diurnal = diurnal or DiurnalModel()
        self.batch_events = int(batch_events)
        self.users_per_chunk = int(users_per_chunk)
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self.registry = registry if registry is not None else NullRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.flight = flight
        self.user_filter = user_filter
        self.shard_key = shard_key
        # Live day iterators, so close() can shut them (and their spill
        # directories) down deterministically.  Weak: an iterator that
        # was consumed to exhaustion or GC'd drops out on its own.
        self._active_iters: weakref.WeakSet = weakref.WeakSet()
        # Plain-int mirrors of the counters so stats survive NullRegistry.
        self.events_generated = 0
        self.batches_generated = 0
        self.days_generated = 0
        self.spill_shards = 0
        self.resume_skipped_batches = 0
        self._events_total = self.registry.counter(
            "worldgen_events_total",
            "Requests emitted by the streaming trace generator.",
        )
        self._batches_total = self.registry.counter(
            "worldgen_batches_total",
            "Trace batches emitted by the streaming generator.",
        )
        self._days_total = self.registry.counter(
            "worldgen_days_total",
            "Days fully generated by the streaming generator.",
        )
        self._spill_total = self.registry.counter(
            "worldgen_spill_shards_total",
            "Per-chunk day shards spilled to disk for external merge.",
        )
        self._skipped_total = self.registry.counter(
            "worldgen_resume_skipped_batches_total",
            "Batches regenerated but not re-emitted while resuming.",
        )
        self._day_seconds = self.registry.histogram(
            "worldgen_day_seconds",
            "Wall time to generate one full day of the population.",
            buckets=LATENCY_BUCKETS_SLOW,
        )

    # -- seeded identity -----------------------------------------------------

    @property
    def config_digest(self) -> str:
        """Fingerprint of everything that shapes the emitted stream.

        Deliberately excludes ``users_per_chunk`` and ``spill_dir``: those
        are execution details the stream is invariant to (the parity tests
        assert that), so a cursor taken under one chunking resumes under
        another.
        """
        parts = [
            str(self.seed),
            str(len(self.population)),
            str(self.batch_events),
            repr(self.model.config),
            repr(self.diurnal),
        ]
        # A shard-filtered generator emits a different stream, so its
        # cursors must not interchange with the full stream's (or with
        # another shard's).  Unsharded digests stay byte-identical to
        # pre-shard builds, keeping existing cursors valid.
        if self.shard_key is not None:
            parts.append(f"shard={self.shard_key}")
        material = ":".join(parts)
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]

    def _profile(self, user_id: int) -> UserProfile:
        return self.population.profile(user_id)

    # -- one day, merged across users ---------------------------------------

    def _chunk_requests(self, day: int, lo: int, hi: int) -> list[Request]:
        """Requests of users [lo, hi) for one day, sorted like a legacy day."""
        requests: list[Request] = []
        for user_id in range(lo, hi):
            if self.user_filter is not None and not self.user_filter(
                user_id
            ):
                continue
            requests.extend(
                user_day_requests(
                    self.model, self.diurnal, self.seed,
                    self._profile(user_id), day,
                )
            )
        requests.sort(key=lambda r: (r.timestamp, r.user_id))
        return requests

    def iter_day_requests(self, day: int) -> Iterator[Request]:
        """One absolute day in global ``(timestamp, user_id)`` order.

        Small populations (one chunk) stream straight from memory; larger
        ones spill each chunk's sorted day to a temp shard and heap-merge
        the shards, so memory stays bounded by the chunk size.

        The returned iterator owns its spill directory: ``.close()`` (or
        :meth:`close` on the generator itself, which closes every
        outstanding iterator) removes the shards immediately, and a GC
        finalizer backstops a consumer that abandons the iterator
        mid-merge without closing it — cleanup never waits for
        interpreter exit.
        """
        if day < 0:
            raise ValueError("day must be >= 0")
        num_users = len(self.population)
        if num_users <= self.users_per_chunk:
            iterator = self._iter_single_chunk(day, num_users)
            self._active_iters.add(iterator)
            return iterator
        tmp = tempfile.TemporaryDirectory(
            prefix=f"worldgen-day{day}-",
            dir=self.spill_dir,
        )
        iterator = self._iter_spill_merge(day, num_users, tmp)
        self._active_iters.add(iterator)
        # The bound method holds tmp, not the iterator, so this fires
        # exactly when the iterator dies; cleanup() is idempotent, so
        # racing the normal finally-path is harmless.
        weakref.finalize(iterator, tmp.cleanup)
        return iterator

    def _iter_single_chunk(
        self, day: int, num_users: int
    ) -> Iterator[Request]:
        yield from self._chunk_requests(day, 0, num_users)

    def _iter_spill_merge(
        self, day: int, num_users: int, tmp
    ) -> Iterator[Request]:
        try:
            starts = range(0, num_users, self.users_per_chunk)
            shard_paths: list[Path] = []
            with self.tracer.span(
                "worldgen.spill", day=day, chunks=len(starts)
            ):
                for chunk_index, lo in enumerate(starts):
                    hi = min(lo + self.users_per_chunk, num_users)
                    chunk = self._chunk_requests(day, lo, hi)
                    path = Path(tmp.name) / f"shard-{chunk_index:05d}.jsonl"
                    with open(path, "w", encoding="utf-8") as handle:
                        for r in chunk:
                            # Bare repr floats round-trip exactly, which the
                            # byte-identical parity guarantee depends on.
                            handle.write(
                                json.dumps(
                                    [r.timestamp, r.user_id, r.hostname,
                                     r.kind.value, r.site_domain]
                                ) + "\n"
                            )
                    shard_paths.append(path)
                    self.spill_shards += 1
                    self._spill_total.inc()
            handles = [
                open(path, encoding="utf-8") for path in shard_paths
            ]
            try:
                yield from heapq.merge(
                    *(_read_spill(handle) for handle in handles),
                    key=lambda r: (r.timestamp, r.user_id),
                )
            finally:
                for handle in handles:
                    handle.close()
        finally:
            tmp.cleanup()

    def close(self) -> None:
        """Shut down every outstanding day iterator.

        Raises ``GeneratorExit`` inside each live iterator, which runs
        its cleanup path and removes any spill shards on disk *now* —
        the hygiene a long-lived process (shard coordinator, admin-
        served observer) needs when a consumer walks away from a batch
        stream mid-merge.  Safe to call repeatedly; exhausted iterators
        are no-ops.
        """
        for iterator in list(self._active_iters):
            iterator.close()

    def day_requests(self, day: int) -> list[Request]:
        """Materialized single day (API parity with :class:`TraceGenerator`)."""
        return list(self.iter_day_requests(day))

    # -- the batch stream ----------------------------------------------------

    def batches(
        self,
        num_days: int,
        start_day: int = 0,
        cursor: GenerationCursor | None = None,
    ) -> Iterator[TraceBatch]:
        """Stream ``num_days`` days as bounded, cursor-carrying batches.

        With ``cursor``, generation fast-forwards deterministically to the
        cursor position — already-consumed batches are regenerated (the
        model is seeded, so this is pure CPU) but not re-emitted, which is
        what makes kill-and-resume exactly-once.
        """
        if num_days < 1:
            raise ValueError("num_days must be >= 1")
        digest = self.config_digest
        events_emitted = 0
        if cursor is not None:
            if (
                cursor.config_digest is not None
                and cursor.config_digest != digest
            ):
                raise ValueError(
                    "cursor was written by a different generator config "
                    f"(cursor {cursor.config_digest}, ours {digest})"
                )
            events_emitted = cursor.events_emitted
            if self.flight is not None:
                self.flight.record(
                    "worldgen", "resume",
                    day=cursor.day, batch_index=cursor.batch_index,
                )
        for day in range(start_day, start_day + num_days):
            if cursor is not None and day < cursor.day:
                continue
            skip = (
                cursor.batch_index
                if cursor is not None and day == cursor.day
                else 0
            )
            started = time.perf_counter()
            day_events = 0
            index = 0
            pending: list[Request] = []

            def flush(pending, index):
                nonlocal events_emitted
                if index < skip:
                    self._skipped_total.inc()
                    self.resume_skipped_batches += 1
                    return None
                events_emitted += len(pending)
                self.events_generated += len(pending)
                self.batches_generated += 1
                self._events_total.inc(len(pending))
                self._batches_total.inc()
                return TraceBatch(
                    day=day,
                    index=index,
                    requests=pending,
                    resume_cursor=GenerationCursor(
                        day=day,
                        batch_index=index + 1,
                        events_emitted=events_emitted,
                        config_digest=digest,
                    ),
                )

            day_iter = self.iter_day_requests(day)
            try:
                for request in day_iter:
                    pending.append(request)
                    day_events += 1
                    if len(pending) >= self.batch_events:
                        batch = flush(pending, index)
                        if batch is not None:
                            yield batch
                        pending = []
                        index += 1
            finally:
                # A consumer abandoning this batch stream mid-day must
                # not strand the day's spill shards until GC.
                day_iter.close()
            if pending:
                batch = flush(pending, index)
                if batch is not None:
                    yield batch
            self.days_generated += 1
            self._days_total.inc()
            elapsed = time.perf_counter() - started
            self._day_seconds.observe(elapsed)
            if self.flight is not None:
                self.flight.record(
                    "worldgen", "day",
                    day=day, events=day_events, seconds=round(elapsed, 3),
                )

    def materialize(self, num_days: int, start_day: int = 0) -> Trace:
        """Thin materializing wrapper: the stream, collected into a Trace."""
        if num_days < 1:
            raise ValueError("num_days must be >= 1")
        return Trace(
            days=[
                self.day_requests(day)
                for day in range(start_day, start_day + num_days)
            ],
            start_day=start_day,
        )

    # Drop-in for call sites that held a TraceGenerator.
    generate = materialize
