"""Multi-day, multi-user trace generation.

``TraceGenerator`` assembles the browsing model into the artefact every
other subsystem consumes: a :class:`Trace`, i.e. per-day lists of requests
across the whole population.  Day/user randomness is derived independently
(``derive_rng(seed, "day{d}.user{u}")``) so any day can be regenerated in
isolation and in any order — which is how the daily-retraining pipeline and
the benchmarks slice the timeline.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.traffic.events import Request
from repro.traffic.sessions import BrowsingModel, SessionConfig
from repro.traffic.users import UserPopulation, UserProfile
from repro.traffic.web import SyntheticWeb
from repro.utils.randomness import derive_rng
from repro.utils.timeutils import DAY_SECONDS, HOUR_SECONDS


@dataclass
class Trace:
    """Requests grouped by day, each day sorted by timestamp."""

    days: list[list[Request]]
    start_day: int = 0

    def __len__(self) -> int:
        return len(self.days)

    def day(self, day: int) -> list[Request]:
        """Requests of absolute day index ``day``."""
        return self.days[day - self.start_day]

    def all_requests(self) -> Iterator[Request]:
        for day_requests in self.days:
            yield from day_requests

    @property
    def num_requests(self) -> int:
        return sum(len(day) for day in self.days)

    def distinct_hostnames(self) -> set[str]:
        return {r.hostname for r in self.all_requests()}

    def user_ids(self) -> set[int]:
        return {r.user_id for r in self.all_requests()}

    def user_sequences(self, day: int) -> dict[int, list[Request]]:
        """Per-user request lists for one day (each sorted by time)."""
        sequences: dict[int, list[Request]] = defaultdict(list)
        for request in self.day(day):
            sequences[request.user_id].append(request)
        return dict(sequences)

    def per_user_hostnames(self) -> dict[int, set[str]]:
        """Which hostnames each user touched over the whole trace."""
        seen: dict[int, set[str]] = defaultdict(set)
        for request in self.all_requests():
            seen[request.user_id].add(request.hostname)
        return dict(seen)

    def counts_by_kind(self) -> Counter:
        return Counter(r.kind for r in self.all_requests())

    def hostname_counts(self) -> Counter:
        return Counter(r.hostname for r in self.all_requests())

    def filter(self, keep) -> "Trace":
        """A new trace containing only requests for which ``keep(r)``."""
        return Trace(
            days=[[r for r in day if keep(r)] for day in self.days],
            start_day=self.start_day,
        )


@dataclass
class DiurnalModel:
    """When during the day sessions start.

    A two-peak mixture (lunchtime + evening) wrapped into [0, 24h); crude
    but sufficient to make "last 20 minutes" sessions realistic and to
    spread load across each simulated day.
    """

    peaks_hours: tuple[float, ...] = (13.0, 21.0)
    peak_weights: tuple[float, ...] = (0.4, 0.6)
    spread_hours: float = 3.0

    def sample_start(self, day: int, rng: np.random.Generator) -> float:
        peak = self.peaks_hours[
            int(rng.choice(len(self.peaks_hours), p=self.peak_weights))
        ]
        hour = float(rng.normal(peak, self.spread_hours)) % 24.0
        return day * DAY_SECONDS + hour * HOUR_SECONDS


class TraceGenerator:
    """Turns (web, population, seed) into reproducible daily traces."""

    def __init__(
        self,
        web: SyntheticWeb,
        population: UserPopulation,
        seed: int,
        session_config: SessionConfig | None = None,
        diurnal: DiurnalModel | None = None,
    ):
        self.web = web
        self.population = population
        self.seed = int(seed)
        self.model = BrowsingModel(web, session_config)
        self.diurnal = diurnal or DiurnalModel()

    def _user_day_requests(
        self, user: UserProfile, day: int
    ) -> list[Request]:
        rng = derive_rng(self.seed, f"day{day}.user{user.user_id}")
        n_sessions = int(rng.poisson(user.sessions_per_day))
        requests: list[Request] = []
        for _ in range(n_sessions):
            start = self.diurnal.sample_start(day, rng)
            requests.extend(self.model.session_requests(user, start, rng))
        return requests

    def day_requests(self, day: int) -> list[Request]:
        """All requests of one absolute day, sorted by timestamp."""
        if day < 0:
            raise ValueError("day must be >= 0")
        requests: list[Request] = []
        for user in self.population:
            requests.extend(self._user_day_requests(user, day))
        requests.sort(key=lambda r: (r.timestamp, r.user_id))
        return requests

    def generate(self, num_days: int, start_day: int = 0) -> Trace:
        """Generate ``num_days`` consecutive days starting at ``start_day``."""
        if num_days < 1:
            raise ValueError("num_days must be >= 1")
        return Trace(
            days=[
                self.day_requests(day)
                for day in range(start_day, start_day + num_days)
            ],
            start_day=start_day,
        )
