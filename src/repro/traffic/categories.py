"""Vertical-flavoured vocabulary for synthetic hostname generation.

Hostnames in the synthetic web are built from topical stems so that the
generated corpus *looks* like the one in the paper's Figure 4 (Spanish /
Latin-American consumer web), and so that debugging sessions read naturally
("hotelmundo.com" is obviously Travel).  The profiling algorithms never look
inside hostnames — topical structure reaches them only through request
co-occurrence — so these stems are cosmetic, but good cosmetics make the
qualitative analyses (Figure 5 clusters) legible.
"""

from __future__ import annotations

# Stems per top-level vertical.  Keys must match VERTICALS in
# repro.ontology.catalog.
VERTICAL_STEMS: dict[str, list[str]] = {
    "Arts & Entertainment": [
        "cine", "series", "musica", "estrenos", "famosos", "teatro",
        "conciertos", "pelis", "anime", "foto",
    ],
    "Autos & Vehicles": [
        "autos", "coches", "motor", "motos", "ruedas", "garaje", "turbo",
        "carros",
    ],
    "Beauty & Fitness": [
        "belleza", "moda", "fitness", "gym", "estilo", "cosmetica", "pelo",
    ],
    "Books & Literature": [
        "libros", "lectura", "novelas", "poesia", "cuentos", "ebooks",
    ],
    "Business & Industrial": [
        "empresa", "negocios", "industria", "logistica", "oficina", "pymes",
        "fabrica",
    ],
    "Computers & Electronics": [
        "tech", "pc", "gadget", "android", "software", "hardware", "movil",
        "electro", "geek",
    ],
    "Finance": [
        "banco", "finanzas", "bolsa", "credito", "dinero", "inversion",
        "seguros", "divisas",
    ],
    "Food & Drink": [
        "recetas", "cocina", "comida", "sabor", "gourmet", "vinos", "cafe",
    ],
    "Games": [
        "juegos", "gamer", "arcade", "consola", "partida", "gaming", "play",
    ],
    "Health": [
        "salud", "medico", "clinica", "farmacia", "bienestar", "nutricion",
        "fisio",
    ],
    "Hobbies & Leisure": [
        "hobby", "manualidades", "pesca", "coleccion", "aventura", "ocio",
    ],
    "Home & Garden": [
        "hogar", "casa", "jardin", "decoracion", "muebles", "bricolaje",
    ],
    "Internet & Telecom": [
        "telecom", "fibra", "hosting", "correo", "red", "wifi",
    ],
    "Jobs & Education": [
        "empleo", "cursos", "trabajo", "academia", "universidad", "beca",
        "oposiciones",
    ],
    "Law & Government": [
        "gobierno", "tramites", "leyes", "justicia", "ministerio", "registro",
    ],
    "News": [
        "noticias", "diario", "prensa", "actualidad", "portada", "informe",
    ],
    "Online Communities": [
        "foro", "social", "chat", "comunidad", "amigos", "red",
    ],
    "People & Society": [
        "familia", "sociedad", "religion", "pareja", "cultura", "gente",
    ],
    "Pets & Animals": [
        "mascotas", "perros", "gatos", "animales", "veterinario",
    ],
    "Real Estate": [
        "pisos", "inmobiliaria", "alquiler", "viviendas", "casas",
    ],
    "Reference": [
        "wiki", "diccionario", "apuntes", "significados", "biografias",
    ],
    "Science": [
        "ciencia", "fisica", "quimica", "astro", "investigacion", "lab",
    ],
    "Shopping": [
        "tienda", "ofertas", "compras", "chollos", "outlet", "rebajas",
        "mercado",
    ],
    "Sports": [
        "futbol", "deporte", "liga", "baloncesto", "tenis", "marcador",
        "goles",
    ],
    "Travel": [
        "viajes", "vuelos", "hotel", "turismo", "playa", "destinos",
        "maletas",
    ],
    "Adult": [
        "adulto", "citasx", "webcamx", "pasion",
    ],
    "Reviews & Comparisons": [
        "opiniones", "comparador", "resenas", "analisis",
    ],
    "DIY & Expert Content": [
        "tutoriales", "comohacer", "expertos", "trucos",
    ],
    "Clubs & Nightlife": [
        "fiesta", "discoteca", "copas", "nocturno",
    ],
    "Awards & Prizes": [
        "premios", "sorteos", "concursos",
    ],
    "Scholarships & Financial Aid": [
        "becas", "ayudas", "matricula",
    ],
    "Sororities & Student Societies": [
        "estudiantes", "campus", "asociacion",
    ],
    "Crime & Mystery Films": [
        "misterio", "crimen", "thriller",
    ],
    "Telescopes & Optical Devices": [
        "telescopios", "optica", "prismaticos",
    ],
}

# Second-token vocabulary, combined with a stem to form a site name.
SITE_SUFFIX_WORDS: list[str] = [
    "online", "hoy", "web", "plus", "express", "total", "hub", "zone",
    "mania", "libre", "24", "digital", "now", "point", "box", "city",
    "top", "pro", "land", "life", "mundo", "ya", "net", "star", "casa",
    "max", "uno", "sur", "norte", "real", "gran", "mini", "mega", "ideal",
]

# TLD mix roughly matching the paper's Figure 4 population (Spain + LatAm).
SITE_TLDS: list[tuple[str, float]] = [
    ("com", 0.46), ("es", 0.16), ("net", 0.07), ("org", 0.06),
    ("com.ve", 0.05), ("com.co", 0.04), ("com.mx", 0.04), ("com.ar", 0.04),
    ("com.pe", 0.03), ("gob.ve", 0.01), ("cl", 0.01), ("io", 0.01),
    ("tv", 0.01), ("co", 0.01),
]

# Hostnames everyone visits regardless of interests (the paper's "core":
# google.com, facebook.com, youtube.com, ...).  Their categories carry no
# profiling value ("all users in our experiment are assigned the same 14
# categories").  Each entry: (hostname, [(vertical, level-2 sub), ...]).
CORE_SITES: list[tuple[str, list[tuple[str, str]]]] = [
    ("google.com", [("Internet & Telecom", "Web Services"),
                    ("Reference", "General Reference")]),
    ("youtube.com", [("Arts & Entertainment", "Online Video"),
                     ("Online Communities", "Photo & Video Sharing")]),
    ("facebook.com", [("Online Communities", "Social Networks")]),
    ("instagram.com", [("Online Communities", "Photo & Video Sharing"),
                       ("Online Communities", "Social Networks")]),
    ("twitter.com", [("Online Communities", "Microblogging"),
                     ("News", "Politics News")]),
    ("whatsapp.com", [("Online Communities", "Forum & Chat Providers"),
                      ("Internet & Telecom", "Web Services")]),
    ("wikipedia.org", [("Reference", "Dictionaries & Encyclopedias")]),
    ("live.com", [("Internet & Telecom", "Web Services")]),
    ("msn.com", [("News", "Local News"),
                 ("Internet & Telecom", "Web Services")]),
    ("amazon.com", [("Shopping", "Mass Merchants & Department Stores")]),
    ("netflix.com", [("Arts & Entertainment", "TV Shows & Programs"),
                     ("Arts & Entertainment", "Online Video")]),
    ("outlook.com", [("Internet & Telecom", "Web Services")]),
    ("yahoo.com", [("Internet & Telecom", "Web Services"),
                   ("News", "Local News")]),
    ("bing.com", [("Internet & Telecom", "Web Services")]),
    ("microsoft.com", [("Computers & Electronics", "Software")]),
    ("apple.com", [("Computers & Electronics", "Consumer Electronics")]),
    ("mercadolibre.com", [("Shopping", "Online Marketplaces")]),
    ("blogspot.com", [("Online Communities",
                       "Blogging Resources & Services")]),
    ("t.co", [("Online Communities", "Microblogging")]),
    ("pinterest.com", [("Online Communities", "Photo & Video Sharing")]),
]

# Shared infrastructure providers: many sites embed hostnames under these
# SLDs (the "ds-aksb-a.akamaihd.net" phenomenon).  Never labelled by the
# ontology.
SHARED_CDN_SLDS: list[str] = [
    "akamaihd.net", "cloudfront.net", "fbcdn.net", "gstatic.com",
    "googleusercontent.com", "googlevideo.com", "amazonaws.com",
    "akamaized.net", "cdninstagram.com", "edgekey.net", "fastly.net",
    "cloudflare.net", "azureedge.net", "llnwd.net", "cdn77.org",
]

# Cloud SLDs under which site-specific API endpoints live
# (api.bkng.azure.com in the paper's running example).
CLOUD_API_SLDS: list[str] = [
    "azure.com", "amazonaws.com", "googleapis.com", "cloudapp.net",
    "herokuapp.com", "appspot.com", "digitaloceanspaces.com",
]

# Tracker / ad-tech SLD stems ("roughly 50 of the top 100 hostnames belong
# to advertisers or tracking companies").
TRACKER_STEMS: list[str] = [
    "doubleclick", "adservice", "analytics", "pixel", "adnxs", "criteo",
    "taboola", "outbrain", "scorecard", "quantserve", "adsafeprotected",
    "moatads", "rubicon", "pubmatic", "openx", "smartad", "admeta",
    "tracksys", "beacon", "metrics", "telemetry", "audience", "retarget",
    "bidswitch", "adform", "exoclick", "popads", "propeller", "zedo",
    "chartbeat",
]
