"""Typed request events — the atoms of a browsing trace.

A network observer ultimately sees a stream of (client, time, hostname)
triples; :class:`Request` is that triple plus ground-truth annotations
(which *kind* of hostname it is and which site visit produced it) that the
profiling algorithms never see but the evaluation harness needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class HostKind(enum.Enum):
    """Ground-truth role of a hostname in the synthetic web."""

    SITE = "site"            # a content website (labelable by the ontology)
    CORE = "core"            # a universally popular site (google-like)
    SATELLITE = "satellite"  # CDN / API endpoint tied to one site
    TRACKER = "tracker"      # ad-tech / tracking host


@dataclass(frozen=True, slots=True)
class Request:
    """One observed hostname request.

    ``site_domain`` is the content site whose visit triggered this request
    (equal to ``hostname`` for SITE/CORE requests); it is ground truth used
    only for evaluation.
    """

    user_id: int
    timestamp: float
    hostname: str
    kind: HostKind
    site_domain: str

    def is_content(self) -> bool:
        """True for requests to content sites (SITE or CORE)."""
        return self.kind in (HostKind.SITE, HostKind.CORE)


def hostnames_of(requests: list[Request]) -> list[str]:
    """Project a request list onto its hostname sequence (order-preserving)."""
    return [request.hostname for request in requests]
