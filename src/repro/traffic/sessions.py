"""The browsing model: how a user's interests become hostname requests.

A browsing session is a topic-coherent Markov walk: the user picks one of
her interests, visits a few sites about it, maybe drifts to another
interest, occasionally detours to a core site (checking mail / social
feeds) or explores something random.  Every site visit fans out into the
requests a network observer would actually see: the site itself, its
satellite CDN/API hostnames, and tracker hostnames.

This co-occurrence structure — same-topic sites adjacent in time, satellites
glued to their parent site — is exactly the signal the paper's SKIPGRAM
model learns from, so the fidelity of this module is what makes the
reproduction meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traffic.events import HostKind, Request
from repro.traffic.users import UserProfile
from repro.traffic.web import Site, SyntheticWeb


@dataclass
class SessionConfig:
    """Knobs of the within-session behaviour."""

    # Number of site visits per session ~ 1 + Poisson(mean_visits - 1).
    # ~12 visits x ~50 s think time gives ~10-minute sessions, so the
    # extension's 10-minute report grid usually ticks mid-session.
    mean_visits: float = 12.0
    # Probability of staying on the current interest topic between visits.
    topic_stay_prob: float = 0.7
    # Probability that each satellite of a visited site is requested.
    satellite_prob: float = 0.8
    # Mean number of tracker requests fired per site visit.
    tracker_mean: float = 0.45
    # Zipf exponent over the tracker list.  Real ad-tech is broad as well
    # as deep: ~50 of the paper's top-100 hostnames were trackers, so the
    # distribution is only mildly peaked.
    tracker_zipf: float = 0.7
    # Mean think time between consecutive site visits, seconds.
    gap_mean_seconds: float = 50.0
    # Sub-requests (satellites/trackers) land within this many seconds.
    fanout_spread_seconds: float = 4.0

    def validate(self) -> None:
        if self.mean_visits < 1:
            raise ValueError("mean_visits must be >= 1")
        for name in ("topic_stay_prob", "satellite_prob"):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.tracker_mean < 0:
            raise ValueError("tracker_mean must be >= 0")
        if self.gap_mean_seconds <= 0 or self.fanout_spread_seconds <= 0:
            raise ValueError("timing parameters must be positive")


class BrowsingModel:
    """Samples sessions of :class:`Request` events for a user."""

    def __init__(self, web: SyntheticWeb, config: SessionConfig | None = None):
        self.web = web
        self.config = config or SessionConfig()
        self.config.validate()

        self._core_indices = [
            i for i, site in enumerate(web.sites) if site.kind is HostKind.CORE
        ]
        self._core_probs = self._popularity_probs(self._core_indices)
        self._all_indices = list(range(len(web.sites)))
        self._all_probs = self._popularity_probs(self._all_indices)
        self._category_probs: dict[int, tuple[list[int], np.ndarray]] = {}
        if web.trackers:
            ranks = np.arange(1, len(web.trackers) + 1, dtype=np.float64)
            weights = ranks ** (-self.config.tracker_zipf)
            self._tracker_probs = weights / weights.sum()
        else:
            self._tracker_probs = None

    def _popularity_probs(self, indices: list[int]) -> np.ndarray:
        weights = np.array(
            [self.web.sites[i].popularity for i in indices], dtype=np.float64
        )
        if weights.sum() == 0:
            return np.full(len(indices), 1.0 / max(len(indices), 1))
        return weights / weights.sum()

    def _sites_for_category(
        self, truncated_idx: int
    ) -> tuple[list[int], np.ndarray]:
        if truncated_idx not in self._category_probs:
            indices = self.web.sites_in_category(truncated_idx)
            self._category_probs[truncated_idx] = (
                indices,
                self._popularity_probs(indices),
            )
        return self._category_probs[truncated_idx]

    # -- site selection ----------------------------------------------------

    def _pick_site(
        self,
        user: UserProfile,
        current_topic: int,
        rng: np.random.Generator,
    ) -> Site:
        roll = rng.random()
        if roll < user.core_affinity and self._core_indices:
            indices, probs = self._core_indices, self._core_probs
        elif roll < user.core_affinity + user.explore_prob:
            indices, probs = self._all_indices, self._all_probs
        else:
            indices, probs = self._sites_for_category(current_topic)
            if not indices:  # interest category with no sites: explore
                indices, probs = self._all_indices, self._all_probs
        return self.web.sites[indices[int(rng.choice(len(indices), p=probs))]]

    # -- request fan-out ---------------------------------------------------

    def _visit_requests(
        self,
        user: UserProfile,
        site: Site,
        timestamp: float,
        rng: np.random.Generator,
    ) -> list[Request]:
        requests = [
            Request(
                user_id=user.user_id,
                timestamp=timestamp,
                hostname=site.domain,
                kind=site.kind,
                site_domain=site.domain,
            )
        ]
        spread = self.config.fanout_spread_seconds
        for satellite in site.satellites:
            if rng.random() < self.config.satellite_prob:
                requests.append(
                    Request(
                        user_id=user.user_id,
                        timestamp=timestamp + float(rng.uniform(0.1, spread)),
                        hostname=satellite,
                        kind=HostKind.SATELLITE,
                        site_domain=site.domain,
                    )
                )
        day = int(timestamp // 86400.0)
        for sld in site.shard_slds:
            if rng.random() < self.config.satellite_prob:
                requests.append(
                    Request(
                        user_id=user.user_id,
                        timestamp=timestamp + float(rng.uniform(0.1, spread)),
                        hostname=self.web.shard_hostname(
                            site, sld, user.user_id, day
                        ),
                        kind=HostKind.SATELLITE,
                        site_domain=site.domain,
                    )
                )
        if self._tracker_probs is not None:
            n_trackers = int(rng.poisson(self.config.tracker_mean))
            n_trackers = min(n_trackers, len(self.web.trackers))
            if n_trackers:
                picks = rng.choice(
                    len(self.web.trackers),
                    size=n_trackers,
                    replace=False,
                    p=self._tracker_probs,
                )
                for pick in np.atleast_1d(picks):
                    requests.append(
                        Request(
                            user_id=user.user_id,
                            timestamp=timestamp
                            + float(rng.uniform(0.1, spread)),
                            hostname=self.web.trackers[int(pick)],
                            kind=HostKind.TRACKER,
                            site_domain=site.domain,
                        )
                    )
        return requests

    # -- the public entry point ---------------------------------------------

    def session_requests(
        self,
        user: UserProfile,
        start_time: float,
        rng: np.random.Generator,
        num_visits: int | None = None,
    ) -> list[Request]:
        """Sample one browsing session starting at ``start_time``.

        Returns requests sorted by timestamp.  ``num_visits`` overrides the
        sampled session length (used by tests and ablations).
        """
        if num_visits is None:
            num_visits = 1 + int(rng.poisson(self.config.mean_visits - 1))
        topic = user.sample_interest(rng)
        clock = float(start_time)
        requests: list[Request] = []
        for _ in range(num_visits):
            site = self._pick_site(user, topic, rng)
            requests.extend(self._visit_requests(user, site, clock, rng))
            clock += float(rng.exponential(self.config.gap_mean_seconds))
            if rng.random() > self.config.topic_stay_prob:
                topic = user.sample_interest(rng)
        requests.sort(key=lambda r: r.timestamp)
        return requests
