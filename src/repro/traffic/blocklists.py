"""Tracker blocklists (the adaway / hpHosts / yoyo substrate).

The paper filters hostnames "known to belong to advertisers or tracking
companies" before profiling, using three public blocklists; ~3K hostnames
matched and more than 8 % of observed connections went to them.  We mirror
the setup: three overlapping synthetic lists, each covering a different
random subset of the true tracker universe (no list is complete, just like
the real ones), combined by a :class:`TrackerFilter`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traffic.events import Request
from repro.traffic.generator import Trace
from repro.traffic.web import SyntheticWeb


@dataclass(frozen=True)
class Blocklist:
    """A named set of blocked hostnames (one 'hosts file')."""

    name: str
    hostnames: frozenset[str]

    def __contains__(self, hostname: str) -> bool:
        return hostname in self.hostnames

    def __len__(self) -> int:
        return len(self.hostnames)


# (list name, fraction of the tracker universe the list covers)
DEFAULT_LIST_SPECS: tuple[tuple[str, float], ...] = (
    ("adaway", 0.80),
    ("hphosts", 0.70),
    ("yoyo", 0.60),
)


def build_blocklists(
    web: SyntheticWeb,
    rng: np.random.Generator,
    specs: tuple[tuple[str, float], ...] = DEFAULT_LIST_SPECS,
) -> list[Blocklist]:
    """Sample overlapping blocklists from the web's true tracker universe.

    Each list independently covers a fraction of the trackers; the union is
    usually (but not necessarily) the full universe, matching reality where
    no single hosts file is complete.
    """
    trackers = sorted(web.trackers)
    lists: list[Blocklist] = []
    for name, coverage in specs:
        if not 0 <= coverage <= 1:
            raise ValueError(f"coverage for {name!r} must be in [0, 1]")
        size = round(coverage * len(trackers))
        chosen = rng.choice(len(trackers), size=size, replace=False)
        lists.append(
            Blocklist(
                name=name,
                hostnames=frozenset(trackers[int(i)] for i in chosen),
            )
        )
    return lists


@dataclass(frozen=True)
class FilterStats:
    """What the filter removed from a trace."""

    total_requests: int
    removed_requests: int
    distinct_blocked_hosts: int

    @property
    def removed_fraction(self) -> float:
        if self.total_requests == 0:
            return 0.0
        return self.removed_requests / self.total_requests


class TrackerFilter:
    """Union of blocklists, applied to hostnames, requests and traces."""

    def __init__(self, blocklists: list[Blocklist]):
        self.blocklists = blocklists
        self._blocked: frozenset[str] = frozenset().union(
            *(bl.hostnames for bl in blocklists)
        ) if blocklists else frozenset()

    @property
    def blocked_hostnames(self) -> frozenset[str]:
        return self._blocked

    def blocks(self, hostname: str) -> bool:
        return hostname in self._blocked

    def filter_hostnames(self, hostnames: list[str]) -> list[str]:
        return [h for h in hostnames if h not in self._blocked]

    def filter_requests(self, requests: list[Request]) -> list[Request]:
        return [r for r in requests if r.hostname not in self._blocked]

    def filter_trace(self, trace: Trace) -> tuple[Trace, FilterStats]:
        """Remove blocked requests; report how much traffic they were."""
        total = trace.num_requests
        filtered = trace.filter(lambda r: r.hostname not in self._blocked)
        blocked_seen = {
            r.hostname
            for r in trace.all_requests()
            if r.hostname in self._blocked
        }
        stats = FilterStats(
            total_requests=total,
            removed_requests=total - filtered.num_requests,
            distinct_blocked_hosts=len(blocked_seen),
        )
        return filtered, stats

    def recall_against(self, web: SyntheticWeb) -> float:
        """Fraction of the true tracker universe the union list catches."""
        if not web.trackers:
            return 1.0
        caught = sum(1 for t in web.trackers if t in self._blocked)
        return caught / len(web.trackers)
