"""Synthetic user population with latent interest profiles.

Each user carries a *latent* interest distribution over the truncated
category space.  That distribution drives which sites the browsing model
visits and — crucially — it is the ground truth against which profiling
accuracy and ad clicks are evaluated: the paper's CTR experiment works
precisely because real users click more on ads matching their real
interests, and our click model does the same against these latent vectors.

Two population implementations share the same sampling logic:

* :class:`UserPopulation` materializes every profile up front from one
  sequential generator (the historical behaviour — profile ``k`` depends
  on the draws of profiles ``0..k-1``);
* :class:`LazyUserPopulation` derives each profile independently from
  ``derive_rng(seed, "population.user{u}")`` the moment it is asked for,
  holding only a bounded LRU of realized profiles — the representation
  that lets the streaming trace generator run at millions of users
  without ever holding the population in RAM.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.ontology.taxonomy import Taxonomy
from repro.traffic.web import VERTICAL_POPULARITY, SyntheticWeb
from repro.utils.randomness import derive_rng


@dataclass
class PopulationConfig:
    """Shape of the synthetic user population."""

    num_users: int = 200
    min_interests: int = 3
    max_interests: int = 8
    # Dirichlet concentration across a user's interests: < 1 gives users a
    # dominant passion plus minor interests.
    interest_concentration: float = 0.7
    # Probability range that any given visit targets a core site
    # (google/facebook-style background noise shared by everyone).
    core_affinity_range: tuple[float, float] = (0.25, 0.5)
    # Probability that a visit "explores" outside the user's interests.
    explore_prob_range: tuple[float, float] = (0.05, 0.2)
    # Lognormal parameters for sessions per day.
    sessions_per_day_mu: float = 1.0   # exp(1.0) ~ 2.7 sessions/day median
    # High variance: the paper's population mixes heavy and light users
    # (25% of users visited >= 1015 hostnames, 75% only >= 217).
    sessions_per_day_sigma: float = 0.8

    def validate(self) -> None:
        if self.num_users < 1:
            raise ValueError("num_users must be >= 1")
        if not 1 <= self.min_interests <= self.max_interests:
            raise ValueError("need 1 <= min_interests <= max_interests")
        lo, hi = self.core_affinity_range
        if not 0 <= lo <= hi <= 1:
            raise ValueError("core_affinity_range must be ordered in [0, 1]")
        lo, hi = self.explore_prob_range
        if not 0 <= lo <= hi <= 1:
            raise ValueError("explore_prob_range must be ordered in [0, 1]")


@dataclass(frozen=True)
class UserProfile:
    """One synthetic user.

    ``interests`` maps truncated category indices to weights summing to 1.
    """

    user_id: int
    interests: dict[int, float]
    core_affinity: float
    explore_prob: float
    sessions_per_day: float

    def interest_vector(self, num_categories: int) -> np.ndarray:
        """Dense latent interest vector over the truncated category space."""
        vec = np.zeros(num_categories, dtype=np.float64)
        for idx, weight in self.interests.items():
            vec[idx] = weight
        return vec

    def sample_interest(self, rng: np.random.Generator) -> int:
        """Draw one interest category index ~ the interest distribution."""
        indices = list(self.interests)
        probs = np.array([self.interests[i] for i in indices])
        return indices[int(rng.choice(len(indices), p=probs))]


def _interest_space(web: SyntheticWeb) -> tuple[list[int], np.ndarray]:
    """Categories a profile may land on, with vertical-popularity weights.

    Interests may only land on categories that actually contain sites,
    otherwise the browsing model would have nothing to visit.
    """
    taxonomy = web.taxonomy
    populated = sorted(
        idx
        for idx in range(taxonomy.num_truncated)
        if web.sites_in_category(idx)
    )
    if not populated:
        raise ValueError("synthetic web has no categorized sites")
    vertical_of = {
        idx: taxonomy.path(taxonomy.truncated_categories()[idx])[0].name
        for idx in populated
    }
    weights = np.array(
        [VERTICAL_POPULARITY.get(vertical_of[idx], 0.5) for idx in populated]
    )
    return populated, weights / weights.sum()


def _sample_profile(
    user_id: int,
    rng: np.random.Generator,
    config: PopulationConfig,
    populated: list[int],
    category_probs: np.ndarray,
) -> UserProfile:
    """Draw one profile; the draw sequence is part of the seed contract."""
    k = int(rng.integers(config.min_interests, config.max_interests + 1))
    k = min(k, len(populated))
    chosen = rng.choice(
        len(populated), size=k, replace=False, p=category_probs
    )
    shares = rng.dirichlet(np.full(k, config.interest_concentration))
    interests = {
        populated[int(c)]: float(s)
        for c, s in zip(chosen, shares)
        if s > 0
    }
    # Degenerate Dirichlet draws can zero out everything but one
    # component; re-normalize whatever survived.
    total = sum(interests.values())
    interests = {i: w / total for i, w in interests.items()}
    return UserProfile(
        user_id=user_id,
        interests=interests,
        core_affinity=float(rng.uniform(*config.core_affinity_range)),
        explore_prob=float(rng.uniform(*config.explore_prob_range)),
        sessions_per_day=float(
            rng.lognormal(
                config.sessions_per_day_mu,
                config.sessions_per_day_sigma,
            )
        ),
    )


class UserPopulation:
    """Generates and holds the synthetic user base."""

    def __init__(self, users: list[UserProfile], taxonomy: Taxonomy):
        self.users = users
        self.taxonomy = taxonomy

    def __len__(self) -> int:
        return len(self.users)

    def __iter__(self):
        return iter(self.users)

    def by_id(self, user_id: int) -> UserProfile:
        return self.users[user_id]

    def profile(self, user_id: int) -> UserProfile:
        """Provider-protocol alias for :meth:`by_id`."""
        return self.by_id(user_id)

    @classmethod
    def generate(
        cls,
        web: SyntheticWeb,
        rng: np.random.Generator,
        config: PopulationConfig | None = None,
    ) -> "UserPopulation":
        config = config or PopulationConfig()
        config.validate()
        populated, category_probs = _interest_space(web)
        users = [
            _sample_profile(user_id, rng, config, populated, category_probs)
            for user_id in range(config.num_users)
        ]
        return cls(users, web.taxonomy)

    def interest_matrix(self) -> np.ndarray:
        """|users| x C matrix of latent interests (evaluation ground truth)."""
        return np.concatenate(
            [block for _, block in self.iter_interest_matrix(len(self) or 1)]
        )

    def iter_interest_matrix(
        self, chunk_users: int = 10_000
    ) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(first_user_id, block)`` chunks of the interest matrix.

        The chunked form is the one large-population consumers should use:
        a 10M x C float64 matrix does not fit in RAM, its 10k x C blocks do.
        """
        if chunk_users < 1:
            raise ValueError("chunk_users must be >= 1")
        C = self.taxonomy.num_truncated
        for start in range(0, len(self), chunk_users):
            stop = min(start + chunk_users, len(self))
            block = np.zeros((stop - start, C), dtype=np.float64)
            for row, user_id in enumerate(range(start, stop)):
                block[row] = self.profile(user_id).interest_vector(C)
            yield start, block


class LazyUserPopulation:
    """A population that exists only as ``seed + user_id``.

    Profiles are derived on demand from
    ``derive_rng(seed, "population.user{u}")`` and kept in a bounded LRU,
    so iterating a 10M-user population costs O(cache) memory.  Note the
    derivation differs from :meth:`UserPopulation.generate` (independent
    per-user streams vs one sequential stream), so the two classes produce
    *different* profiles for the same seed — by design: lazy derivation is
    what makes any single user reconstructible without the other millions.
    """

    def __init__(
        self,
        web: SyntheticWeb,
        seed: int,
        config: PopulationConfig | None = None,
        cache_profiles: int = 4096,
    ):
        self.config = config or PopulationConfig()
        self.config.validate()
        if cache_profiles < 1:
            raise ValueError("cache_profiles must be >= 1")
        self.web = web
        self.taxonomy = web.taxonomy
        self.seed = int(seed)
        self.cache_profiles = int(cache_profiles)
        self._populated, self._category_probs = _interest_space(web)
        self._cache: OrderedDict[int, UserProfile] = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0

    def __len__(self) -> int:
        return self.config.num_users

    def __iter__(self) -> Iterator[UserProfile]:
        for user_id in range(len(self)):
            yield self.profile(user_id)

    def profile(self, user_id: int) -> UserProfile:
        """Realize (or recall) the profile of one user."""
        if not 0 <= user_id < len(self):
            raise ValueError(
                f"user_id {user_id} outside population [0, {len(self) - 1}]"
            )
        cached = self._cache.get(user_id)
        if cached is not None:
            self._cache.move_to_end(user_id)
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        profile = _sample_profile(
            user_id,
            derive_rng(self.seed, f"population.user{user_id}"),
            self.config,
            self._populated,
            self._category_probs,
        )
        self._cache[user_id] = profile
        if len(self._cache) > self.cache_profiles:
            self._cache.popitem(last=False)
        return profile

    def by_id(self, user_id: int) -> UserProfile:
        return self.profile(user_id)

    def interest_matrix(self) -> np.ndarray:
        """Whole-population matrix; only for populations that fit in RAM."""
        if len(self) > 100_000:
            raise ValueError(
                f"refusing to materialize a {len(self)}-user interest "
                "matrix; use iter_interest_matrix()"
            )
        return np.concatenate(
            [block for _, block in self.iter_interest_matrix(len(self) or 1)]
        )

    def iter_interest_matrix(
        self, chunk_users: int = 10_000
    ) -> Iterator[tuple[int, np.ndarray]]:
        """Chunked interest matrix; realizes one chunk of profiles at a time."""
        yield from UserPopulation.iter_interest_matrix(self, chunk_users)
