"""Synthetic user population with latent interest profiles.

Each user carries a *latent* interest distribution over the truncated
category space.  That distribution drives which sites the browsing model
visits and — crucially — it is the ground truth against which profiling
accuracy and ad clicks are evaluated: the paper's CTR experiment works
precisely because real users click more on ads matching their real
interests, and our click model does the same against these latent vectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ontology.taxonomy import Taxonomy
from repro.traffic.web import VERTICAL_POPULARITY, SyntheticWeb


@dataclass
class PopulationConfig:
    """Shape of the synthetic user population."""

    num_users: int = 200
    min_interests: int = 3
    max_interests: int = 8
    # Dirichlet concentration across a user's interests: < 1 gives users a
    # dominant passion plus minor interests.
    interest_concentration: float = 0.7
    # Probability range that any given visit targets a core site
    # (google/facebook-style background noise shared by everyone).
    core_affinity_range: tuple[float, float] = (0.25, 0.5)
    # Probability that a visit "explores" outside the user's interests.
    explore_prob_range: tuple[float, float] = (0.05, 0.2)
    # Lognormal parameters for sessions per day.
    sessions_per_day_mu: float = 1.0   # exp(1.0) ~ 2.7 sessions/day median
    # High variance: the paper's population mixes heavy and light users
    # (25% of users visited >= 1015 hostnames, 75% only >= 217).
    sessions_per_day_sigma: float = 0.8

    def validate(self) -> None:
        if self.num_users < 1:
            raise ValueError("num_users must be >= 1")
        if not 1 <= self.min_interests <= self.max_interests:
            raise ValueError("need 1 <= min_interests <= max_interests")
        lo, hi = self.core_affinity_range
        if not 0 <= lo <= hi <= 1:
            raise ValueError("core_affinity_range must be ordered in [0, 1]")
        lo, hi = self.explore_prob_range
        if not 0 <= lo <= hi <= 1:
            raise ValueError("explore_prob_range must be ordered in [0, 1]")


@dataclass(frozen=True)
class UserProfile:
    """One synthetic user.

    ``interests`` maps truncated category indices to weights summing to 1.
    """

    user_id: int
    interests: dict[int, float]
    core_affinity: float
    explore_prob: float
    sessions_per_day: float

    def interest_vector(self, num_categories: int) -> np.ndarray:
        """Dense latent interest vector over the truncated category space."""
        vec = np.zeros(num_categories, dtype=np.float64)
        for idx, weight in self.interests.items():
            vec[idx] = weight
        return vec

    def sample_interest(self, rng: np.random.Generator) -> int:
        """Draw one interest category index ~ the interest distribution."""
        indices = list(self.interests)
        probs = np.array([self.interests[i] for i in indices])
        return indices[int(rng.choice(len(indices), p=probs))]


class UserPopulation:
    """Generates and holds the synthetic user base."""

    def __init__(self, users: list[UserProfile], taxonomy: Taxonomy):
        self.users = users
        self.taxonomy = taxonomy

    def __len__(self) -> int:
        return len(self.users)

    def __iter__(self):
        return iter(self.users)

    def by_id(self, user_id: int) -> UserProfile:
        return self.users[user_id]

    @classmethod
    def generate(
        cls,
        web: SyntheticWeb,
        rng: np.random.Generator,
        config: PopulationConfig | None = None,
    ) -> "UserPopulation":
        config = config or PopulationConfig()
        config.validate()
        taxonomy = web.taxonomy

        # Interests may only land on categories that actually contain sites,
        # otherwise the browsing model would have nothing to visit.
        populated = sorted(
            idx
            for idx in range(taxonomy.num_truncated)
            if web.sites_in_category(idx)
        )
        if not populated:
            raise ValueError("synthetic web has no categorized sites")
        vertical_of = {
            idx: taxonomy.path(taxonomy.truncated_categories()[idx])[0].name
            for idx in populated
        }
        weights = np.array(
            [VERTICAL_POPULARITY.get(vertical_of[idx], 0.5) for idx in populated]
        )
        category_probs = weights / weights.sum()

        users: list[UserProfile] = []
        for user_id in range(config.num_users):
            k = int(
                rng.integers(config.min_interests, config.max_interests + 1)
            )
            k = min(k, len(populated))
            chosen = rng.choice(
                len(populated), size=k, replace=False, p=category_probs
            )
            shares = rng.dirichlet(
                np.full(k, config.interest_concentration)
            )
            interests = {
                populated[int(c)]: float(s)
                for c, s in zip(chosen, shares)
                if s > 0
            }
            # Degenerate Dirichlet draws can zero out everything but one
            # component; re-normalize whatever survived.
            total = sum(interests.values())
            interests = {i: w / total for i, w in interests.items()}
            users.append(
                UserProfile(
                    user_id=user_id,
                    interests=interests,
                    core_affinity=float(
                        rng.uniform(*config.core_affinity_range)
                    ),
                    explore_prob=float(
                        rng.uniform(*config.explore_prob_range)
                    ),
                    sessions_per_day=float(
                        rng.lognormal(
                            config.sessions_per_day_mu,
                            config.sessions_per_day_sigma,
                        )
                    ),
                )
            )
        return cls(users, taxonomy)

    def interest_matrix(self) -> np.ndarray:
        """|users| x C matrix of latent interests (evaluation ground truth)."""
        C = self.taxonomy.num_truncated
        matrix = np.zeros((len(self.users), C), dtype=np.float64)
        for row, user in enumerate(self.users):
            matrix[row] = user.interest_vector(C)
        return matrix
