"""Synthetic browsing-traffic substrate.

Substitute for the paper's 1329-user / 600M-connection ISP-vantage dataset:
a generative model of the consumer web (topical sites with Zipf popularity,
CDN/API satellite hostnames, tracker hosts) and of users (latent interest
profiles, topic-coherent Markov sessions, diurnal activity).  The profiling
algorithm only ever consumes hostname request sequences, so reproducing the
co-occurrence statistics of those sequences is what makes the rest of the
reproduction faithful.
"""

from repro.traffic.blocklists import (
    Blocklist,
    FilterStats,
    TrackerFilter,
    build_blocklists,
)
from repro.traffic.events import HostKind, Request, hostnames_of
from repro.traffic.generator import (
    DiurnalModel,
    GenerationCursor,
    StreamingTraceGenerator,
    Trace,
    TraceBatch,
    TraceGenerator,
)
from repro.traffic.io import (
    ShardedTraceWriter,
    TraceFormatError,
    iter_trace,
    iter_trace_shards,
    load_trace,
    load_trace_shards,
    save_trace,
)
from repro.traffic.sessions import BrowsingModel, SessionConfig
from repro.traffic.users import (
    LazyUserPopulation,
    PopulationConfig,
    UserPopulation,
    UserProfile,
)
from repro.traffic.web import (
    Site,
    SyntheticWeb,
    VERTICAL_POPULARITY,
    WebConfig,
)

__all__ = [
    "Blocklist",
    "BrowsingModel",
    "DiurnalModel",
    "FilterStats",
    "GenerationCursor",
    "HostKind",
    "LazyUserPopulation",
    "PopulationConfig",
    "Request",
    "SessionConfig",
    "ShardedTraceWriter",
    "Site",
    "StreamingTraceGenerator",
    "SyntheticWeb",
    "Trace",
    "TraceBatch",
    "TraceFormatError",
    "TraceGenerator",
    "TrackerFilter",
    "UserPopulation",
    "UserProfile",
    "VERTICAL_POPULARITY",
    "WebConfig",
    "build_blocklists",
    "hostnames_of",
    "iter_trace",
    "iter_trace_shards",
    "load_trace",
    "load_trace_shards",
    "save_trace",
]
