"""The synthetic web: sites, satellites, trackers and their ground truth.

This is the substitute for the paper's real-world hostname universe (470K
hostnames across 17 countries).  It preserves the statistics the profiling
algorithm exploits:

* **Topical sites** with heavy-tailed (Zipf) popularity, each carrying one
  primary and possibly secondary ground-truth categories;
* **Core sites** (google.com, facebook.com, ...) visited by essentially all
  users — the paper's "background noise" whose categories carry no
  profiling value;
* **Satellite hostnames** (shared-CDN subdomains, cloud API endpoints)
  deterministically tied to a single parent site but bearing opaque names —
  the ``api.bkng.azure.com`` phenomenon the embeddings must resolve;
* **Tracker hostnames** requested alongside visits to many unrelated sites
  — pure co-occurrence noise that the blocklist filter removes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ontology.taxonomy import Category, Taxonomy
from repro.traffic.categories import (
    CLOUD_API_SLDS,
    CORE_SITES,
    SHARED_CDN_SLDS,
    SITE_SUFFIX_WORDS,
    SITE_TLDS,
    TRACKER_STEMS,
    VERTICAL_STEMS,
)
from repro.traffic.events import HostKind

# Relative attractiveness of each vertical when assigning site categories
# and user interests.  Mirrors Figure 6a: Online Communities, Arts &
# Entertainment, People & Society and Jobs & Education dominate.
VERTICAL_POPULARITY: dict[str, float] = {
    "Online Communities": 5.5,
    "Arts & Entertainment": 5.0,
    "People & Society": 3.6,
    "Jobs & Education": 3.2,
    "Games": 3.0,
    "Internet & Telecom": 2.8,
    "Computers & Electronics": 2.7,
    "Shopping": 2.5,
    "News": 2.4,
    "Business & Industrial": 2.0,
    "Reference": 1.9,
    "Books & Literature": 1.6,
    "Sports": 1.6,
    "Travel": 1.5,
    "Finance": 1.4,
    "Health": 1.3,
    "Real Estate": 1.0,
    "Beauty & Fitness": 1.0,
    "Autos & Vehicles": 0.9,
    "Science": 0.9,
    "Hobbies & Leisure": 0.8,
    "Food & Drink": 0.8,
    "Law & Government": 0.7,
    "Pets & Animals": 0.6,
    "Home & Garden": 0.6,
    "Adult": 0.6,
    "Sororities & Student Societies": 0.2,
    "Crime & Mystery Films": 0.2,
    "Awards & Prizes": 0.2,
    "Reviews & Comparisons": 0.2,
    "DIY & Expert Content": 0.2,
    "Clubs & Nightlife": 0.15,
    "Scholarships & Financial Aid": 0.15,
    "Telescopes & Optical Devices": 0.1,
}


@dataclass(frozen=True)
class Site:
    """A content website with ground-truth categories and infrastructure.

    ``satellites`` are *stable* infrastructure hostnames (cloud API
    endpoints like ``api.bkng.azure.com``).  ``shard_slds`` are shared-CDN
    second-level domains the site serves assets from; the actual hostname
    a client contacts is a per-user *shard* (``ds-aksb-a.akamaihd.net``)
    minted by :meth:`SyntheticWeb.shard_hostname` and rotated every few
    days — which is why the paper saw 470K distinct hostnames, most of
    them transient CDN names nobody can label.
    """

    domain: str
    kind: HostKind  # SITE or CORE
    vertical: str
    categories: tuple[tuple[Category, float], ...]
    popularity: float
    satellites: tuple[str, ...]
    shard_slds: tuple[str, ...] = ()

    @property
    def hostnames(self) -> tuple[str, ...]:
        """Every *stable* hostname of this site (shards are dynamic)."""
        return (self.domain, *self.satellites)


@dataclass
class WebConfig:
    """Scale and shape knobs for the synthetic web."""

    num_sites: int = 1500
    zipf_exponent: float = 1.05
    num_trackers: int = 120
    # Mean number of satellite hostnames per site; popular sites get more.
    mean_satellites: float = 1.6
    max_satellites: int = 6
    secondary_category_prob: float = 0.45
    # Multiple of the median site weight given to each core site, so core
    # sites sit far above the Zipf head.
    core_boost: float = 400.0
    # Per-user CDN shard hostnames rotate every this many days.
    shard_rotation_days: int = 7

    def validate(self) -> None:
        if self.num_sites < 1:
            raise ValueError("num_sites must be >= 1")
        if self.zipf_exponent <= 0:
            raise ValueError("zipf_exponent must be > 0")
        if not 0 <= self.secondary_category_prob <= 1:
            raise ValueError("secondary_category_prob must be in [0, 1]")
        if self.max_satellites < 0 or self.mean_satellites < 0:
            raise ValueError("satellite counts must be non-negative")
        if self.shard_rotation_days < 1:
            raise ValueError("shard_rotation_days must be >= 1")


class HostnameForge:
    """Generates unique, plausible hostnames from topical stems."""

    def __init__(self, rng: np.random.Generator):
        self._rng = rng
        self._taken: set[str] = set()
        tlds, weights = zip(*SITE_TLDS)
        self._tlds = list(tlds)
        self._tld_probs = np.array(weights) / sum(weights)

    def claim(self, hostname: str) -> str:
        """Register an externally chosen hostname (e.g. a core site)."""
        if hostname in self._taken:
            raise ValueError(f"hostname already taken: {hostname}")
        self._taken.add(hostname)
        return hostname

    def site_domain(self, vertical: str) -> str:
        """Mint a fresh registrable domain flavoured by ``vertical``."""
        stems = VERTICAL_STEMS[vertical]
        for attempt in range(64):
            stem = stems[int(self._rng.integers(len(stems)))]
            word = SITE_SUFFIX_WORDS[
                int(self._rng.integers(len(SITE_SUFFIX_WORDS)))
            ]
            tld = self._rng.choice(self._tlds, p=self._tld_probs)
            disambiguator = (
                "" if attempt < 8 else str(int(self._rng.integers(10, 99)))
            )
            domain = f"{stem}{word}{disambiguator}.{tld}"
            if domain not in self._taken:
                self._taken.add(domain)
                return domain
        raise RuntimeError("hostname space exhausted; increase vocabulary")

    def _token(self, length: int) -> str:
        alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
        return "".join(
            alphabet[int(i)]
            for i in self._rng.integers(len(alphabet), size=length)
        )

    def cdn_hostname(self) -> str:
        """Mint a shared-CDN subdomain, e.g. ``ds-aksb-a.akamaihd.net``."""
        while True:
            sld = SHARED_CDN_SLDS[int(self._rng.integers(len(SHARED_CDN_SLDS)))]
            host = f"{self._token(2)}-{self._token(4)}.{sld}"
            if host not in self._taken:
                self._taken.add(host)
                return host

    def api_hostname(self, site_domain: str) -> str:
        """Mint a cloud API endpoint, e.g. ``api.bkng.azure.com``."""
        stem = site_domain.split(".")[0]
        abbrev = (
            "".join(ch for ch in stem if ch not in "aeiou")[:4] or stem[:4]
        )
        while True:
            sld = CLOUD_API_SLDS[int(self._rng.integers(len(CLOUD_API_SLDS)))]
            prefix = ["api", "svc", "static", "img", "cdn"][
                int(self._rng.integers(5))
            ]
            host = f"{prefix}.{abbrev}{self._token(2)}.{sld}"
            if host not in self._taken:
                self._taken.add(host)
                return host

    def tracker_hostname(self, index: int) -> str:
        stem = TRACKER_STEMS[index % len(TRACKER_STEMS)]
        generation = index // len(TRACKER_STEMS)
        suffix = "" if generation == 0 else str(generation + 1)
        tld = ["com", "net", "io", "biz"][index % 4]
        host = f"{stem}{suffix}.{tld}"
        if host in self._taken:
            host = f"{stem}{suffix}-{self._token(3)}.{tld}"
        self._taken.add(host)
        return host


class SyntheticWeb:
    """The full hostname universe plus ground truth.

    Build with :meth:`generate`; afterwards the object is immutable in
    practice and shared by the traffic generator, the labeler and the
    evaluation harness.
    """

    def __init__(
        self,
        taxonomy: Taxonomy,
        sites: list[Site],
        trackers: list[str],
        config: WebConfig,
    ):
        self.taxonomy = taxonomy
        self.sites = sites
        self.trackers = trackers
        self.config = config
        self._tracker_set = set(trackers)
        self._site_by_domain = {site.domain: site for site in sites}
        self._site_index = {site.domain: i for i, site in enumerate(sites)}
        self._shard_slds = set(SHARED_CDN_SLDS)
        self._site_of_hostname: dict[str, Site] = {}
        for site in sites:
            for hostname in site.hostnames:
                self._site_of_hostname[hostname] = site
        self._sites_by_truncated: dict[int, list[int]] = {}
        for index, site in enumerate(sites):
            primary = site.categories[0][0]
            t_idx = taxonomy.truncated_index(primary)
            self._sites_by_truncated.setdefault(t_idx, []).append(index)

    # -- construction ------------------------------------------------------

    @classmethod
    def generate(
        cls,
        taxonomy: Taxonomy,
        rng: np.random.Generator,
        config: WebConfig | None = None,
    ) -> "SyntheticWeb":
        config = config or WebConfig()
        config.validate()
        forge = HostnameForge(rng)

        vertical_names = [name for name, _, _, _ in _catalog_verticals()]
        vertical_weights = np.array(
            [VERTICAL_POPULARITY.get(name, 0.5) for name in vertical_names]
        )
        vertical_probs = vertical_weights / vertical_weights.sum()

        # Zipf weights over site ranks; the head of the distribution is
        # taken by ordinary popular sites, core sites are added on top.
        ranks = np.arange(1, config.num_sites + 1, dtype=np.float64)
        zipf_weights = ranks ** (-config.zipf_exponent)
        median_weight = float(np.median(zipf_weights))

        sites: list[Site] = []
        for hostname, raw_categories in CORE_SITES:
            categories = tuple(
                (taxonomy.by_name(f"{vertical} / {sub}"), 1.0 if i == 0 else 0.6)
                for i, (vertical, sub) in enumerate(raw_categories)
            )
            forge.claim(hostname)
            # Core sites serve everything through sharded CDNs: each user
            # sees her own transient hostnames under these SLDs.
            n_slds = int(rng.integers(2, 6))
            shard_slds = tuple(
                str(sld)
                for sld in rng.choice(
                    SHARED_CDN_SLDS, size=n_slds, replace=False
                )
            )
            sites.append(
                Site(
                    domain=hostname,
                    kind=HostKind.CORE,
                    vertical=raw_categories[0][0],
                    categories=categories,
                    popularity=median_weight * config.core_boost,
                    satellites=(),
                    shard_slds=shard_slds,
                )
            )

        for rank in range(config.num_sites):
            vertical = vertical_names[
                int(rng.choice(len(vertical_names), p=vertical_probs))
            ]
            domain = forge.site_domain(vertical)
            categories = _sample_categories(
                taxonomy, vertical, vertical_names, vertical_probs, rng,
                config.secondary_category_prob,
            )
            n_satellites = min(
                config.max_satellites,
                int(rng.poisson(config.mean_satellites)),
            )
            satellites: list[str] = []
            shard_slds: list[str] = []
            for _ in range(n_satellites):
                if rng.random() < 0.5:
                    sld = SHARED_CDN_SLDS[
                        int(rng.integers(len(SHARED_CDN_SLDS)))
                    ]
                    if sld not in shard_slds:
                        shard_slds.append(sld)
                else:
                    satellites.append(forge.api_hostname(domain))
            sites.append(
                Site(
                    domain=domain,
                    kind=HostKind.SITE,
                    vertical=vertical,
                    categories=categories,
                    popularity=float(zipf_weights[rank]),
                    satellites=tuple(satellites),
                    shard_slds=tuple(shard_slds),
                )
            )

        trackers = [
            forge.tracker_hostname(i) for i in range(config.num_trackers)
        ]
        return cls(taxonomy, sites, trackers, config)

    # -- lookup ------------------------------------------------------------

    @property
    def core_sites(self) -> list[Site]:
        return [site for site in self.sites if site.kind is HostKind.CORE]

    @property
    def content_sites(self) -> list[Site]:
        return [site for site in self.sites if site.kind is HostKind.SITE]

    def site(self, domain: str) -> Site:
        return self._site_by_domain[domain]

    # -- CDN shard hostnames -------------------------------------------------

    def shard_hostname(self, site: Site, sld: str, user_id: int, day: int) -> str:
        """The CDN shard hostname ``user_id`` contacts for ``site`` today.

        Stable within a rotation period, different across users — which is
        what makes these hostnames useless to an ontology yet learnable by
        co-occurrence.  The site index is encoded in the final label token
        purely as *ground truth* for the evaluation oracle (a real observer
        sees an opaque name).
        """
        import hashlib

        epoch = day // self.config.shard_rotation_days
        site_index = self._site_index[site.domain]
        digest = hashlib.sha1(
            f"{site_index}:{sld}:{user_id}:{epoch}".encode()
        ).hexdigest()
        return f"{digest[:2]}-{digest[2:6]}-{site_index:x}.{sld}"

    def _parse_shard(self, hostname: str) -> Site | None:
        label, _, rest = hostname.partition(".")
        if rest not in self._shard_slds:
            return None
        tokens = label.rsplit("-", 1)
        if len(tokens) != 2:
            return None
        try:
            site_index = int(tokens[1], 16)
        except ValueError:
            return None
        if not 0 <= site_index < len(self.sites):
            return None
        return self.sites[site_index]

    def site_of(self, hostname: str) -> Site | None:
        """Ground truth: which site does this (satellite) hostname serve?"""
        site = self._site_of_hostname.get(hostname)
        if site is not None:
            return site
        return self._parse_shard(hostname)

    def sites_in_category(self, truncated_idx: int) -> list[int]:
        """Indices of sites whose primary category truncates to this index."""
        return list(self._sites_by_truncated.get(truncated_idx, []))

    def all_hostnames(self) -> set[str]:
        hostnames = set(self.trackers)
        for site in self.sites:
            hostnames.update(site.hostnames)
        return hostnames

    def kind_of(self, hostname: str) -> HostKind:
        if hostname in self._site_by_domain:
            return self._site_by_domain[hostname].kind
        if hostname in self._tracker_set:
            return HostKind.TRACKER
        if self.site_of(hostname) is not None:
            return HostKind.SATELLITE
        raise KeyError(f"unknown hostname: {hostname}")

    def ground_truth(self) -> dict[str, list[tuple[Category, float]]]:
        """Labelable hosts -> true categories (sites only, never satellites)."""
        return {
            site.domain: list(site.categories) for site in self.sites
        }

    def true_category_vector(self, hostname: str) -> np.ndarray | None:
        """Evaluation oracle: category vector of the site behind a hostname.

        Satellites (fixed or CDN shards) resolve to their parent site's
        vector; trackers and unknown hostnames resolve to None.
        """
        site = self.site_of(hostname)
        if site is None:
            return None
        return self.taxonomy.vector(site.categories)

    def popularity(self) -> dict[str, float]:
        """Per-hostname popularity weights (satellites inherit the site's)."""
        weights: dict[str, float] = {}
        for site in self.sites:
            for hostname in site.hostnames:
                weights[hostname] = site.popularity
        total = sum(site.popularity for site in self.sites)
        for tracker in self.trackers:
            weights[tracker] = total / max(len(self.trackers), 1) * 0.05
        return weights


def _catalog_verticals():
    # Imported lazily to avoid a hard module-load-order dependency.
    from repro.ontology.catalog import VERTICALS

    return VERTICALS


def _sample_categories(
    taxonomy: Taxonomy,
    vertical: str,
    vertical_names: list[str],
    vertical_probs: np.ndarray,
    rng: np.random.Generator,
    secondary_prob: float,
) -> tuple[tuple[Category, float], ...]:
    """Pick a primary (and maybe secondary) level-2 category for a site."""
    def pick_level2(vertical_name: str) -> Category:
        root = taxonomy.by_name(vertical_name)
        kids = taxonomy.children(root)
        return kids[int(rng.integers(len(kids)))]

    primary = pick_level2(vertical)
    categories: list[tuple[Category, float]] = [(primary, 1.0)]
    if rng.random() < secondary_prob:
        if rng.random() < 0.6:
            secondary_vertical = vertical
        else:
            secondary_vertical = vertical_names[
                int(rng.choice(len(vertical_names), p=vertical_probs))
            ]
        secondary = pick_level2(secondary_vertical)
        if secondary.cat_id != primary.cat_id:
            categories.append((secondary, float(rng.uniform(0.3, 0.7))))
    return tuple(categories)
