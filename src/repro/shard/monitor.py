"""Fleet monitor: straggler and skew detection over the heartbeat stream.

Every telemetry frame a worker ships doubles as a heartbeat.  This
module turns that stream into the operator-facing answer to "is any
shard falling behind": per-shard throughput (events/s over a trailing
window of frames), replay-buffer lag (batches sent but not durably
acked), and heartbeat age — plus the fleet-wide aggregates the SLO
engine alerts on:

==================================  =======================================
gauge                               meaning
==================================  =======================================
``fleet_shard_events_per_second``   per-shard ingest rate (label ``shard``)
``fleet_shard_lag_batches``         per-shard sent-but-unacked batches
``fleet_shard_heartbeat_age_seconds``  seconds since the shard's last frame
``fleet_max_heartbeat_age_seconds``    worst heartbeat age over live shards
``fleet_max_lag_batches``              worst replay lag over live shards
``fleet_lag_skew_batches``             max − min lag (a stuck worker grows it)
``fleet_throughput_skew``              1 − min/max rate (0 balanced, → 1 skewed)
==================================  =======================================

Workers heartbeat on their dedicated telemetry queue at every interval
*even when idle*, so a quiet shard stays visibly healthy; a SIGSTOPped
or wedged worker stops heartbeating and stops acking, so its heartbeat
age (and, under load, lag) climb; :func:`repro.obs.slo.fleet_slos`
turns either signal into a firing ``/alerts`` entry, which clears the
moment the worker resumes (or a respawned replacement starts acking).
Shards whose final result has arrived are excluded — a finished worker
is silent by design, not stuck.

The monitor runs on its own daemon thread (started by the coordinator)
so the gauges stay fresh while the dispatch loop is blocked feeding a
stalled shard — exactly the moment the alert matters.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry

log = get_logger("shard.monitor")

#: Trailing window over which per-shard throughput is computed.
THROUGHPUT_WINDOW_SECONDS = 30.0


class FleetMonitor:
    """Computes per-shard and fleet-wide health gauges for a coordinator.

    The coordinator calls :meth:`observe_frame` as telemetry frames
    arrive and :meth:`mark_done` when a shard's final result lands; the
    background thread (or any caller via :meth:`update`) recomputes the
    ``fleet_*`` gauges from whatever has been observed so far.
    """

    def __init__(
        self,
        coordinator,
        registry: MetricsRegistry,
        interval_seconds: float = 1.0,
        clock=time.monotonic,
    ):
        self._coordinator = coordinator
        self._clock = clock
        self.interval_seconds = float(interval_seconds)
        self._lock = threading.Lock()
        # shard -> deque[(monotonic instant, cumulative events_seen)]
        self._samples: dict[int, deque] = {}
        self._last_frame: dict[int, float] = {}   # shard -> monotonic
        self._spawned: dict[int, float] = {}      # shard -> monotonic
        self._done: set[int] = set()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        m = registry
        self._frames_total = m.counter(
            "fleet_telemetry_frames_total",
            "Telemetry frames received from shard workers.",
            labelnames=("shard",),
        )
        self._rate_gauge = m.gauge(
            "fleet_shard_events_per_second",
            "Per-shard ingest rate over the trailing telemetry window.",
            labelnames=("shard",),
        )
        self._lag_gauge = m.gauge(
            "fleet_shard_lag_batches",
            "Batches sent to the shard but not yet durably acked.",
            labelnames=("shard",),
        )
        self._heartbeat_gauge = m.gauge(
            "fleet_shard_heartbeat_age_seconds",
            "Seconds since the shard's last telemetry frame.",
            labelnames=("shard",),
        )
        self._max_heartbeat_gauge = m.gauge(
            "fleet_max_heartbeat_age_seconds",
            "Worst heartbeat age across live (not-done) shards.",
        )
        self._max_lag_gauge = m.gauge(
            "fleet_max_lag_batches",
            "Worst sent-minus-acked replay lag across live shards.",
        )
        self._lag_skew_gauge = m.gauge(
            "fleet_lag_skew_batches",
            "Max minus min replay lag across live shards.",
        )
        self._throughput_skew_gauge = m.gauge(
            "fleet_throughput_skew",
            "1 - min/max per-shard ingest rate (0 balanced, 1 skewed).",
        )

    # -- observations ----------------------------------------------------------

    def mark_spawned(self, shard: int) -> None:
        """A worker came up; its silence clock starts now."""
        with self._lock:
            self._spawned[shard] = self._clock()
            self._done.discard(shard)

    def mark_done(self, shard: int) -> None:
        """The shard's final result arrived; it may go silent in peace."""
        with self._lock:
            self._done.add(shard)

    def observe_frame(self, shard: int, frame: dict) -> None:
        """Fold one telemetry frame into the heartbeat/throughput state."""
        now = self._clock()
        with self._lock:
            self._last_frame[shard] = now
            samples = self._samples.setdefault(shard, deque())
            samples.append((now, float(frame.get("events_seen", 0))))
            horizon = now - THROUGHPUT_WINDOW_SECONDS
            while len(samples) > 2 and samples[1][0] <= horizon:
                samples.popleft()
        self._frames_total.labels(shard=str(shard)).inc()

    # -- derived views -----------------------------------------------------------

    def events_per_second(self, shard: int) -> float | None:
        """Trailing-window ingest rate; None before two frames arrived."""
        with self._lock:
            samples = self._samples.get(shard)
            if samples is None or len(samples) < 2:
                return None
            (t0, e0), (t1, e1) = samples[0], samples[-1]
        if t1 <= t0:
            return None
        return max(0.0, (e1 - e0) / (t1 - t0))

    def heartbeat_age_seconds(self, shard: int) -> float | None:
        """Seconds of silence; falls back to time-since-spawn, None if
        the shard never spawned or already delivered its result."""
        with self._lock:
            if shard in self._done:
                return None
            reference = self._last_frame.get(
                shard, self._spawned.get(shard)
            )
        if reference is None:
            return None
        return max(0.0, self._clock() - reference)

    # -- the update pass ---------------------------------------------------------

    def update(self) -> dict:
        """Recompute every ``fleet_*`` gauge; returns the fleet summary.

        Pulls pending frames off the telemetry queues first — the
        heartbeat thread is the consumer of record, so ages reflect
        what workers *sent*, not what a busy dispatch loop got around
        to reading.
        """
        self._coordinator.drain_telemetry()
        shards = self._coordinator._shards
        ages: list[float] = []
        lags: list[int] = []
        rates: list[float] = []
        for shard, state in enumerate(shards):
            lag = max(0, state.sent_seq - state.acked_seq)
            self._lag_gauge.labels(shard=str(shard)).set(lag)
            rate = self.events_per_second(shard)
            if rate is not None:
                self._rate_gauge.labels(shard=str(shard)).set(rate)
            age = self.heartbeat_age_seconds(shard)
            if age is not None:
                self._heartbeat_gauge.labels(shard=str(shard)).set(age)
                ages.append(age)
                lags.append(lag)
                if rate is not None:
                    rates.append(rate)
        max_age = max(ages) if ages else 0.0
        max_lag = max(lags) if lags else 0
        lag_skew = (max(lags) - min(lags)) if lags else 0
        throughput_skew = 0.0
        if len(rates) >= 2 and max(rates) > 0:
            throughput_skew = 1.0 - min(rates) / max(rates)
        self._max_heartbeat_gauge.set(max_age)
        self._max_lag_gauge.set(max_lag)
        self._lag_skew_gauge.set(lag_skew)
        self._throughput_skew_gauge.set(throughput_skew)
        return {
            "max_heartbeat_age_seconds": round(max_age, 3),
            "max_lag_batches": max_lag,
            "lag_skew_batches": lag_skew,
            "throughput_skew": round(throughput_skew, 4),
        }

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> "FleetMonitor":
        """Run :meth:`update` on a daemon thread every ``interval_seconds``.

        The thread — not the dispatch loop — is what keeps straggler
        gauges honest: when the coordinator blocks feeding a wedged
        shard, dispatch-driven updates would freeze exactly when the
        heartbeat age should be climbing.
        """
        if self.interval_seconds <= 0 or self._thread is not None:
            return self

        def run():
            while not self._stop.wait(self.interval_seconds):
                try:
                    self.update()
                except Exception as error:  # monitoring must not kill feeding
                    log.error(
                        "fleet monitor update failed",
                        error=f"{type(error).__name__}: {error}",
                    )

        self._thread = threading.Thread(
            target=run, name="fleet-monitor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
