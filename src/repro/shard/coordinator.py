"""The fleet: spawn shard workers, feed them, survive their deaths.

The coordinator owns the only global view: it partitions each incoming
event batch with the :class:`~repro.shard.router.ShardRouter`, stamps
each shard's slice with a per-shard sequence number, and retains every
sent batch until the owning worker *durably* acknowledges it (an ack is
sent only after the worker's checkpoint hit disk).  That replay buffer
is the whole fault story: when a worker dies — crash or ``kill -9`` —
the coordinator respawns it with fresh queues (stale queued items would
create sequence gaps), waits for the restored worker to report its
checkpoint's ``next_seq``, and replays exactly the retained batches from
there.  Delivery is at-least-once; the worker's sequence check makes
application exactly-once, so the day completes with no duplicate and no
dropped sessions.

Results merge in one place: per-shard emissions concatenate and sort
into the canonical ``(timestamp, client)`` order, and per-worker metric
registries merge through :func:`repro.obs.merge_snapshots` into a single
fleet snapshot the admin server can serve.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_module
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.shard.router import ShardRouter
from repro.shard.worker import WorkerSpec, _worker_main

#: Generous: a spawned worker imports numpy + repro and maps the model
#: before it reports ready; CI runners under load need headroom.
READY_TIMEOUT_SECONDS = 120.0


class ShardWorkerError(RuntimeError):
    """A worker reported an application error (not a kill)."""


@dataclass
class FleetResult:
    """Merged output of a completed fleet run."""

    emissions: list[dict]
    per_shard: list[dict]
    metrics: dict
    restarts: int = 0

    @property
    def events_seen(self) -> int:
        return sum(s["events_seen"] for s in self.per_shard)

    @property
    def profiles_emitted(self) -> int:
        return sum(s["profiles_emitted"] for s in self.per_shard)


@dataclass
class _ShardState:
    """Coordinator-side bookkeeping for one worker."""

    process: object | None = None
    inbox: object | None = None
    outbox: object | None = None
    sent_seq: int = 0          # next sequence number to assign
    acked_seq: int = 0         # everything below is durable on disk
    retained: dict = field(default_factory=dict)   # seq -> events
    result: dict | None = None
    restarts: int = 0


def event_wire(event) -> tuple:
    """A HostnameEvent as the 4-tuple that crosses worker queues."""
    return (
        event.client_ip, event.timestamp, event.hostname, event.source,
    )


class ShardCoordinator:
    """Feed N shard workers from one event stream; merge their output."""

    def __init__(
        self,
        num_shards: int,
        checkpoint_dir: str | Path,
        model_dir: str | Path | None = None,
        labelled: dict | None = None,
        stream_config: dict | None = None,
        tracker_filter=None,
        salt: str = "",
        nat_groups: dict[str, str] | None = None,
        checkpoint_every_batches: int = 1,
        start_method: str = "spawn",
        registry: MetricsRegistry | None = None,
    ):
        self.router = ShardRouter(
            num_shards, salt=salt, nat_groups=nat_groups
        )
        self.num_shards = int(num_shards)
        self.checkpoint_dir = Path(checkpoint_dir)
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self.model_dir = str(model_dir) if model_dir is not None else None
        self.labelled = labelled or {}
        self.stream_config = dict(stream_config or {})
        self.tracker_filter = tracker_filter
        self.checkpoint_every_batches = int(checkpoint_every_batches)
        self._ctx = mp.get_context(start_method)
        self._shards = [_ShardState() for _ in range(self.num_shards)]
        self._started = False
        self._finished = False
        registry = registry if registry is not None else MetricsRegistry()
        self.registry = registry
        self._dispatched_total = registry.counter(
            "shard_batches_dispatched_total",
            "Sequenced batches sent to shard workers.",
            labelnames=("shard",),
        )
        self._restarts_total = registry.counter(
            "shard_worker_restarts_total",
            "Workers respawned from their per-shard checkpoint.",
            labelnames=("shard",),
        )

    # -- specs and paths -------------------------------------------------------

    def shard_checkpoint_path(self, shard: int) -> Path:
        return self.checkpoint_dir / f"shard-{shard:03d}.json"

    def _spec(self, shard: int) -> WorkerSpec:
        return WorkerSpec(
            shard_id=shard,
            num_shards=self.num_shards,
            checkpoint_path=str(self.shard_checkpoint_path(shard)),
            router=self.router.spec(),
            model_dir=self.model_dir,
            labelled=self.labelled,
            stream_config=self.stream_config,
            tracker_filter=self.tracker_filter,
            checkpoint_every_batches=self.checkpoint_every_batches,
        )

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        """Spawn every worker and wait for the ready handshake."""
        if self._started:
            raise RuntimeError("coordinator already started")
        self._started = True
        for shard in range(self.num_shards):
            self._spawn(shard)

    def _spawn(self, shard: int) -> int:
        """(Re)spawn one worker; returns its reported ``next_seq``.

        Queues are always created fresh: a dead worker's inbox may hold
        items it never applied, and re-delivering them to the restored
        worker out of order would trip its sequence check.  The retained
        buffer, not the old queue, is the source of truth for replay.
        """
        state = self._shards[shard]
        self._discard_queues(state)
        state.inbox = self._ctx.Queue()
        state.outbox = self._ctx.Queue()
        state.process = self._ctx.Process(
            target=_worker_main,
            args=(self._spec(shard), state.inbox, state.outbox),
            daemon=True,
            name=f"repro-shard-{shard}",
        )
        state.process.start()
        message = self._get(shard, timeout=READY_TIMEOUT_SECONDS)
        if message[0] == "error":
            raise ShardWorkerError(
                f"shard {shard} failed to start:\n{message[2]}"
            )
        if message[0] != "ready":
            raise RuntimeError(
                f"shard {shard}: expected ready, got {message[0]!r}"
            )
        next_seq = int(message[2])
        # Everything below the checkpoint's cursor is durable — trim it;
        # everything at or above it that we already sent is replayed.
        state.acked_seq = max(state.acked_seq, next_seq)
        for seq in sorted(state.retained):
            if seq < next_seq:
                del state.retained[seq]
            else:
                state.inbox.put(("batch", seq, state.retained[seq]))
        return next_seq

    @staticmethod
    def _discard_queues(state: _ShardState) -> None:
        """Release a dead worker's queues without joining their feeders.

        A killed worker leaves unread pickles in its inbox pipe; the
        queue's feeder thread blocks on that write forever, and the
        default exit finalizer would join it — hanging the coordinator
        process at shutdown.  ``cancel_join_thread`` severs that tie.
        """
        for old in (state.inbox, state.outbox):
            if old is not None:
                old.cancel_join_thread()
                old.close()
        state.inbox = None
        state.outbox = None

    def _get(self, shard: int, timeout: float):
        """One message from a worker's outbox, watching for death."""
        state = self._shards[shard]
        deadline = time.monotonic() + timeout
        while True:
            try:
                return state.outbox.get(timeout=0.2)
            except queue_module.Empty:
                if not state.process.is_alive():
                    # Drain any last message the dying worker flushed.
                    try:
                        return state.outbox.get(timeout=0.2)
                    except queue_module.Empty:
                        raise _WorkerDied(shard) from None
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"shard {shard}: no message within {timeout}s"
                    ) from None

    def _restart(self, shard: int) -> None:
        """Respawn a dead worker from its checkpoint and replay."""
        state = self._shards[shard]
        if state.process is not None:
            state.process.join(timeout=5)
        state.restarts += 1
        self._restarts_total.labels(shard=str(shard)).inc()
        self._spawn(shard)

    def _drain_acks(self, shard: int) -> None:
        """Trim the replay buffer on any durable acks that arrived."""
        state = self._shards[shard]
        while True:
            try:
                message = state.outbox.get_nowait()
            except queue_module.Empty:
                return
            self._apply_message(shard, message)

    def _apply_message(self, shard: int, message) -> None:
        state = self._shards[shard]
        kind = message[0]
        if kind == "ack":
            acked = int(message[2])
            state.acked_seq = max(state.acked_seq, acked)
            for seq in [s for s in state.retained if s < acked]:
                del state.retained[seq]
        elif kind == "done":
            state.result = message[2]
        elif kind == "error":
            raise ShardWorkerError(
                f"shard {shard} failed:\n{message[2]}"
            )
        else:
            raise RuntimeError(
                f"shard {shard}: unexpected message {kind!r}"
            )

    # -- feeding ----------------------------------------------------------------

    def dispatch(self, events) -> None:
        """Partition one global batch and send each shard its slice.

        ``events`` are :class:`~repro.netobs.flows.HostnameEvent`s or
        wire 4-tuples; each shard's slice preserves the global order of
        its own clients' events, which is all per-client profiling state
        depends on.
        """
        if not self._started:
            raise RuntimeError("coordinator not started")
        slices: dict[int, list[tuple]] = {}
        for event in events:
            wire = (
                event if isinstance(event, tuple) else event_wire(event)
            )
            slices.setdefault(
                self.router.shard_of(wire[0]), []
            ).append(wire)
        for shard, shard_events in slices.items():
            self._send(shard, shard_events)

    def _send(self, shard: int, events: list[tuple]) -> None:
        state = self._shards[shard]
        seq = state.sent_seq
        state.retained[seq] = events
        state.sent_seq += 1
        self._dispatched_total.labels(shard=str(shard)).inc()
        while True:
            if not state.process.is_alive():
                # Respawn replays everything retained (including this
                # batch — it entered the buffer before the put).
                self._restart(shard)
                return
            try:
                state.inbox.put(("batch", seq, events), timeout=0.5)
                break
            except queue_module.Full:
                continue
        self._drain_acks(shard)

    # -- completion ---------------------------------------------------------------

    def finish(self) -> FleetResult:
        """Flush the fleet: final checkpoints, results, merged metrics."""
        if not self._started:
            raise RuntimeError("coordinator not started")
        if self._finished:
            raise RuntimeError("coordinator already finished")
        for shard in range(self.num_shards):
            self._send_finish(shard)
        for shard in range(self.num_shards):
            self._await_done(shard)
        for state in self._shards:
            state.process.join(timeout=30)
        self._finished = True
        per_shard = [
            {
                "shard_id": state.result["shard_id"],
                "events_seen": state.result["events_seen"],
                "profiles_emitted": state.result["profiles_emitted"],
                "active_clients": state.result["active_clients"],
                "restarts": state.restarts,
            }
            for state in self._shards
        ]
        emissions = [
            emission
            for state in self._shards
            for emission in state.result["emissions"]
        ]
        emissions.sort(key=lambda e: (e["timestamp"], e["client"]))
        metrics = MetricsRegistry.merge_snapshots(
            [state.result["metrics"] for state in self._shards]
        )
        return FleetResult(
            emissions=emissions,
            per_shard=per_shard,
            metrics=metrics,
            restarts=sum(state.restarts for state in self._shards),
        )

    def _send_finish(self, shard: int) -> None:
        state = self._shards[shard]
        while True:
            if not state.process.is_alive():
                self._restart(shard)
            try:
                state.inbox.put(("finish",), timeout=0.5)
                return
            except queue_module.Full:
                continue

    def _await_done(self, shard: int) -> None:
        state = self._shards[shard]
        while state.result is None:
            try:
                message = self._get(shard, timeout=READY_TIMEOUT_SECONDS)
            except _WorkerDied:
                # Died between our finish and its done: restore, replay,
                # re-issue finish.
                self._restart(shard)
                self._send_finish(shard)
                continue
            self._apply_message(shard, message)

    # -- liveness & introspection ---------------------------------------------

    def poll(self) -> list[int]:
        """Detect and restart dead workers; returns restarted shard ids.

        Call between dispatches (the CLI does, once per trace batch) so
        a kill during a lull is healed before more load arrives.
        """
        restarted = []
        for shard, state in enumerate(self._shards):
            if (
                state.process is not None
                and not state.process.is_alive()
                and state.result is None
                and not self._finished
            ):
                self._restart(shard)
                restarted.append(shard)
        return restarted

    def status(self) -> dict:
        """Fleet state for the admin server's ``/shards`` route."""
        return {
            "num_shards": self.num_shards,
            "started": self._started,
            "finished": self._finished,
            "salt": self.router.salt,
            "nat_groups": len(self.router.nat_groups),
            "model_dir": self.model_dir,
            "restarts": sum(s.restarts for s in self._shards),
            "shards": [
                {
                    "shard_id": shard,
                    "pid": (
                        state.process.pid
                        if state.process is not None else None
                    ),
                    "alive": (
                        state.process is not None
                        and state.process.is_alive()
                    ),
                    "sent_seq": state.sent_seq,
                    "acked_seq": state.acked_seq,
                    "retained_batches": len(state.retained),
                    "restarts": state.restarts,
                    "done": state.result is not None,
                    "checkpoint": str(self.shard_checkpoint_path(shard)),
                }
                for shard, state in enumerate(self._shards)
            ],
        }

    # -- hard shutdown -----------------------------------------------------------

    def terminate(self) -> None:
        """Kill every worker (tests and error paths; not a clean finish)."""
        for state in self._shards:
            if state.process is not None and state.process.is_alive():
                state.process.terminate()
                state.process.join(timeout=5)
            self._discard_queues(state)


class _WorkerDied(Exception):
    """Internal: the worker exited without an error message (kill -9)."""

    def __init__(self, shard: int):
        self.shard = shard
        super().__init__(f"shard {shard} worker died")
