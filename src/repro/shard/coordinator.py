"""The fleet: spawn shard workers, feed them, survive their deaths.

The coordinator owns the only global view: it partitions each incoming
event batch with the :class:`~repro.shard.router.ShardRouter`, stamps
each shard's slice with a per-shard sequence number, and retains every
sent batch until the owning worker *durably* acknowledges it (an ack is
sent only after the worker's checkpoint hit disk).  That replay buffer
is the whole fault story: when a worker dies — crash or ``kill -9`` —
the coordinator respawns it with fresh queues (stale queued items would
create sequence gaps), waits for the restored worker to report its
checkpoint's ``next_seq``, and replays exactly the retained batches from
there.  Delivery is at-least-once; the worker's sequence check makes
application exactly-once, so the day completes with no duplicate and no
dropped sessions.

Results merge in one place: per-shard emissions concatenate and sort
into the canonical ``(timestamp, client)`` order, and per-worker metric
registries merge through :func:`repro.obs.merge_snapshots` into a single
fleet snapshot the admin server can serve.

The coordinator is also the fleet's telemetry sink.  Workers ship
``repro-shard-telemetry-v1`` frames on a dedicated per-shard telemetry
queue (see :meth:`repro.shard.worker.ShardWorker.telemetry_frame`) —
separate from the ack/control channel precisely so the fleet monitor's
heartbeat thread and admin scrapes can drain frames while the dispatch
loop is blocked or idle.  The coordinator caches the latest frame per
shard, grafts any exported worker spans into
its own tracer (cross-process trace reassembly), feeds the
:class:`~repro.shard.monitor.FleetMonitor` heartbeat stream, and exposes
the lot through :meth:`fleet_metrics_snapshot` and :meth:`status` —
which back the admin server's ``/metrics?scope=fleet`` and ``/shards``
routes.  When a head sampler is attached, :meth:`dispatch` stamps each
sampled client's events with a ``(trace_id, span_id)`` wire context so
the trace survives the coordinator→worker hop.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_module
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.metrics import MetricsRegistry, label_snapshot
from repro.obs.tracing import NULL_TRACER, span_from_wire, use_trace
from repro.shard.monitor import FleetMonitor
from repro.shard.router import ShardRouter
from repro.shard.worker import WorkerSpec, _worker_main

#: Generous: a spawned worker imports numpy + repro and maps the model
#: before it reports ready; CI runners under load need headroom.
READY_TIMEOUT_SECONDS = 120.0


class ShardWorkerError(RuntimeError):
    """A worker reported an application error (not a kill)."""


@dataclass
class FleetResult:
    """Merged output of a completed fleet run."""

    emissions: list[dict]
    per_shard: list[dict]
    metrics: dict
    restarts: int = 0

    @property
    def events_seen(self) -> int:
        return sum(s["events_seen"] for s in self.per_shard)

    @property
    def profiles_emitted(self) -> int:
        return sum(s["profiles_emitted"] for s in self.per_shard)


@dataclass
class _ShardState:
    """Coordinator-side bookkeeping for one worker."""

    process: object | None = None
    inbox: object | None = None
    outbox: object | None = None
    telemetry_q: object | None = None   # dedicated heartbeat/frame channel
    sent_seq: int = 0          # next sequence number to assign
    acked_seq: int = 0         # everything below is durable on disk
    retained: dict = field(default_factory=dict)   # seq -> events
    result: dict | None = None
    restarts: int = 0
    telemetry: dict | None = None      # latest repro-shard-telemetry-v1 frame
    telemetry_mono: float | None = None   # monotonic instant it arrived


def event_wire(event) -> tuple:
    """A HostnameEvent as the 4-tuple that crosses worker queues."""
    return (
        event.client_ip, event.timestamp, event.hostname, event.source,
    )


class ShardCoordinator:
    """Feed N shard workers from one event stream; merge their output."""

    def __init__(
        self,
        num_shards: int,
        checkpoint_dir: str | Path,
        model_dir: str | Path | None = None,
        labelled: dict | None = None,
        stream_config: dict | None = None,
        tracker_filter=None,
        salt: str = "",
        nat_groups: dict[str, str] | None = None,
        checkpoint_every_batches: int = 1,
        start_method: str = "spawn",
        registry: MetricsRegistry | None = None,
        tracer=None,
        trace_sampler=None,
        flight=None,
        telemetry_interval_seconds: float = 1.0,
        monitor_interval_seconds: float = 1.0,
        worker_flight: bool = False,
    ):
        self.router = ShardRouter(
            num_shards, salt=salt, nat_groups=nat_groups
        )
        self.num_shards = int(num_shards)
        self.checkpoint_dir = Path(checkpoint_dir)
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self.model_dir = str(model_dir) if model_dir is not None else None
        self.labelled = labelled or {}
        self.stream_config = dict(stream_config or {})
        self.tracker_filter = tracker_filter
        self.checkpoint_every_batches = int(checkpoint_every_batches)
        self._ctx = mp.get_context(start_method)
        self._shards = [_ShardState() for _ in range(self.num_shards)]
        self._started = False
        self._finished = False
        registry = registry if registry is not None else MetricsRegistry()
        self.registry = registry
        self._dispatched_total = registry.counter(
            "shard_batches_dispatched_total",
            "Sequenced batches sent to shard workers.",
            labelnames=("shard",),
        )
        self._restarts_total = registry.counter(
            "shard_worker_restarts_total",
            "Workers respawned from their per-shard checkpoint.",
            labelnames=("shard",),
        )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.trace_sampler = trace_sampler
        self.flight = flight
        self.telemetry_interval_seconds = float(telemetry_interval_seconds)
        self.worker_flight = bool(worker_flight)
        # One stable wire context per sampled client for the whole run:
        # HeadSampler mints a fresh trace id per start() call, so caching
        # here is what makes a client's events share a single trace.
        self._client_traces: dict[str, tuple | None] = {}
        # Serializes telemetry drains: the monitor thread, admin scrapes
        # and the dispatch loop may all pull frames; the lock keeps each
        # shard's frames applied in arrival order.
        self._telemetry_lock = threading.Lock()
        self.monitor = FleetMonitor(
            self, registry, interval_seconds=monitor_interval_seconds
        )

    # -- specs and paths -------------------------------------------------------

    def shard_checkpoint_path(self, shard: int) -> Path:
        return self.checkpoint_dir / f"shard-{shard:03d}.json"

    def shard_flight_path(self, shard: int) -> Path:
        return self.checkpoint_dir / f"shard-{shard:03d}-flight.json"

    def _spec(self, shard: int) -> WorkerSpec:
        return WorkerSpec(
            shard_id=shard,
            num_shards=self.num_shards,
            checkpoint_path=str(self.shard_checkpoint_path(shard)),
            router=self.router.spec(),
            model_dir=self.model_dir,
            labelled=self.labelled,
            stream_config=self.stream_config,
            tracker_filter=self.tracker_filter,
            checkpoint_every_batches=self.checkpoint_every_batches,
            telemetry_interval_seconds=self.telemetry_interval_seconds,
            tracing=self.trace_sampler is not None,
            flight_path=(
                str(self.shard_flight_path(shard))
                if self.worker_flight else None
            ),
        )

    def _record_worker_event(self, name: str, shard: int, **fields) -> None:
        if self.flight is not None:
            self.flight.record("worker", name, shard=shard, **fields)

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        """Spawn every worker and wait for the ready handshake."""
        if self._started:
            raise RuntimeError("coordinator already started")
        self._started = True
        for shard in range(self.num_shards):
            self._spawn(shard)
        self.monitor.start()

    def _spawn(self, shard: int) -> int:
        """(Re)spawn one worker; returns its reported ``next_seq``.

        Queues are always created fresh: a dead worker's inbox may hold
        items it never applied, and re-delivering them to the restored
        worker out of order would trip its sequence check.  The retained
        buffer, not the old queue, is the source of truth for replay.
        """
        state = self._shards[shard]
        self._discard_queues(state)
        state.inbox = self._ctx.Queue()
        state.outbox = self._ctx.Queue()
        state.telemetry_q = self._ctx.Queue()
        state.process = self._ctx.Process(
            target=_worker_main,
            args=(
                self._spec(shard), state.inbox, state.outbox,
                state.telemetry_q,
            ),
            daemon=True,
            name=f"repro-shard-{shard}",
        )
        state.process.start()
        message = self._get(shard, timeout=READY_TIMEOUT_SECONDS)
        if message[0] == "error":
            raise ShardWorkerError(
                f"shard {shard} failed to start:\n{message[2]}"
            )
        if message[0] != "ready":
            raise RuntimeError(
                f"shard {shard}: expected ready, got {message[0]!r}"
            )
        next_seq = int(message[2])
        # Everything below the checkpoint's cursor is durable — trim it;
        # everything at or above it that we already sent is replayed.
        state.acked_seq = max(state.acked_seq, next_seq)
        replayed = 0
        for seq in sorted(state.retained):
            if seq < next_seq:
                del state.retained[seq]
            else:
                state.inbox.put(("batch", seq, state.retained[seq]))
                replayed += 1
        self.monitor.mark_spawned(shard)
        self._record_worker_event(
            "shard.spawn" if state.restarts == 0 else "shard.respawn",
            shard,
            pid=state.process.pid,
            next_seq=next_seq,
            restarts=state.restarts,
        )
        if replayed:
            self._record_worker_event(
                "shard.replay", shard,
                batches=replayed, from_seq=next_seq,
            )
        return next_seq

    @staticmethod
    def _discard_queues(state: _ShardState) -> None:
        """Release a dead worker's queues without joining their feeders.

        A killed worker leaves unread pickles in its inbox pipe; the
        queue's feeder thread blocks on that write forever, and the
        default exit finalizer would join it — hanging the coordinator
        process at shutdown.  ``cancel_join_thread`` severs that tie.
        """
        for old in (state.inbox, state.outbox, state.telemetry_q):
            if old is not None:
                old.cancel_join_thread()
                old.close()
        state.inbox = None
        state.outbox = None
        state.telemetry_q = None

    def _get(self, shard: int, timeout: float):
        """One message from a worker's outbox, watching for death."""
        state = self._shards[shard]
        deadline = time.monotonic() + timeout
        while True:
            try:
                return state.outbox.get(timeout=0.2)
            except queue_module.Empty:
                if not state.process.is_alive():
                    # Drain any last message the dying worker flushed.
                    try:
                        return state.outbox.get(timeout=0.2)
                    except queue_module.Empty:
                        raise _WorkerDied(shard) from None
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        f"shard {shard}: no message within {timeout}s"
                    ) from None

    def _restart(self, shard: int) -> None:
        """Respawn a dead worker from its checkpoint and replay."""
        state = self._shards[shard]
        if state.process is not None:
            state.process.join(timeout=5)
        self._record_worker_event(
            "shard.crash", shard,
            pid=state.process.pid if state.process is not None else None,
            sent_seq=state.sent_seq,
            acked_seq=state.acked_seq,
        )
        state.restarts += 1
        self._restarts_total.labels(shard=str(shard)).inc()
        self._spawn(shard)

    def _drain_acks(self, shard: int) -> None:
        """Trim the replay buffer on any durable acks that arrived."""
        state = self._shards[shard]
        while True:
            try:
                message = state.outbox.get_nowait()
            except queue_module.Empty:
                return
            self._apply_message(shard, message)

    def _apply_message(self, shard: int, message) -> None:
        state = self._shards[shard]
        kind = message[0]
        if kind == "ack":
            acked = int(message[2])
            state.acked_seq = max(state.acked_seq, acked)
            for seq in [s for s in state.retained if s < acked]:
                del state.retained[seq]
        elif kind == "telemetry":
            self._ingest_telemetry(shard, message[2])
        elif kind == "done":
            state.result = message[2]
            self.monitor.mark_done(shard)
            self._record_worker_event(
                "shard.done", shard,
                events_seen=message[2].get("events_seen"),
                restarts=state.restarts,
            )
        elif kind == "error":
            raise ShardWorkerError(
                f"shard {shard} failed:\n{message[2]}"
            )
        else:
            raise RuntimeError(
                f"shard {shard}: unexpected message {kind!r}"
            )

    def _ingest_telemetry(self, shard: int, frame: dict) -> None:
        """Fold one worker telemetry frame into the fleet view.

        The latest frame wins (each carries a cumulative registry
        snapshot, not a delta); exported worker spans are grafted into
        the coordinator's tracer so ``trace_spans`` — and the admin
        server's ``/trace/<id>`` — see both sides of the hop.
        """
        state = self._shards[shard]
        state.telemetry = frame
        state.telemetry_mono = time.monotonic()
        self.monitor.observe_frame(shard, frame)
        if self.tracer.null:
            return
        for wire in frame.get("spans") or ():
            try:
                root = span_from_wire(wire)
            except Exception:
                continue   # one malformed span must not poison the run
            root.tags.setdefault("shard", str(shard))
            self.tracer.adopt(root)

    def drain_telemetry(self) -> None:
        """Consume every pending frame from the telemetry queues.

        Safe from any thread — frames travel on their own queue, so
        draining here can never steal a ``ready``/``done``/``error``
        message from the control channel the dispatch loop reads.  The
        fleet monitor calls this on its heartbeat thread (which is what
        lets a straggler alert *clear* while the dispatch loop is idle);
        admin scrapes call it for freshness.
        """
        with self._telemetry_lock:
            for shard, state in enumerate(self._shards):
                channel = state.telemetry_q
                if channel is None:
                    continue
                while True:
                    try:
                        message = channel.get_nowait()
                    except queue_module.Empty:
                        break
                    except (OSError, ValueError):
                        break   # queue torn down mid-respawn
                    self._ingest_telemetry(shard, message[2])

    # -- feeding ----------------------------------------------------------------

    def dispatch(self, events) -> None:
        """Partition one global batch and send each shard its slice.

        ``events`` are :class:`~repro.netobs.flows.HostnameEvent`s or
        wire 4-tuples; each shard's slice preserves the global order of
        its own clients' events, which is all per-client profiling state
        depends on.

        With a head sampler attached, a sampled client's events gain a
        fifth wire element — ``(trace_id, span_id)`` — parenting the
        worker's ingest spans under this coordinator's ``shard.route``
        span for that client.  Unsampled clients keep the 4-tuple form.
        """
        if not self._started:
            raise RuntimeError("coordinator not started")
        stamping = self.trace_sampler is not None
        slices: dict[int, list[tuple]] = {}
        for event in events:
            wire = (
                event if isinstance(event, tuple) else event_wire(event)
            )
            shard = self.router.shard_of(wire[0])
            if stamping:
                ctx_wire = self._trace_wire(wire[0], shard)
                if ctx_wire is not None:
                    wire = wire[:4] + (ctx_wire,)
            slices.setdefault(shard, []).append(wire)
        for shard, shard_events in slices.items():
            self._send(shard, shard_events)

    def _trace_wire(self, client: str, shard: int) -> tuple | None:
        """The client's cached ``(trace_id, span_id)``, minted on first
        sighting by asking the head sampler and opening a one-shot
        coordinator-side ``shard.route`` span the worker's spans will
        parent to."""
        try:
            return self._client_traces[client]
        except KeyError:
            pass
        if len(self._client_traces) > 65536:   # bound the run's cache
            self._client_traces.clear()
        ctx = self.trace_sampler.start(client)
        if ctx is None:
            self._client_traces[client] = None
            return None
        with use_trace(ctx):
            with self.tracer.span(
                "shard.route", client=client, shard=str(shard)
            ) as record:
                span_id = getattr(record, "span_id", "") or ""
        wire = (ctx.trace_id, span_id)
        self._client_traces[client] = wire
        return wire

    def _send(self, shard: int, events: list[tuple]) -> None:
        state = self._shards[shard]
        seq = state.sent_seq
        state.retained[seq] = events
        state.sent_seq += 1
        self._dispatched_total.labels(shard=str(shard)).inc()
        while True:
            if not state.process.is_alive():
                # Respawn replays everything retained (including this
                # batch — it entered the buffer before the put).
                self._restart(shard)
                return
            try:
                state.inbox.put(("batch", seq, events), timeout=0.5)
                break
            except queue_module.Full:
                # Blocked on a slow shard: keep consuming every other
                # shard's acks and telemetry so the rest of the fleet's
                # view stays live while this one wedges.
                for other in range(self.num_shards):
                    if other != shard:
                        self._drain_acks(other)
                continue
        self._drain_acks(shard)

    # -- completion ---------------------------------------------------------------

    def finish(self) -> FleetResult:
        """Flush the fleet: final checkpoints, results, merged metrics."""
        if not self._started:
            raise RuntimeError("coordinator not started")
        if self._finished:
            raise RuntimeError("coordinator already finished")
        for shard in range(self.num_shards):
            self._send_finish(shard)
        for shard in range(self.num_shards):
            self._await_done(shard)
        for state in self._shards:
            state.process.join(timeout=30)
        self._finished = True
        # Final telemetry flush first (the frame each worker sent just
        # before ``done`` carries its last sampled spans), then freeze
        # fleet gauges at their healthy end-of-run values: every shard
        # is done, so one last update (all-silent shards excluded) then
        # stop — a lingering admin server must not see stale alarms.
        self.drain_telemetry()
        self.monitor.update()
        self.monitor.stop()
        per_shard = [
            {
                "shard_id": state.result["shard_id"],
                "events_seen": state.result["events_seen"],
                "profiles_emitted": state.result["profiles_emitted"],
                "active_clients": state.result["active_clients"],
                "restarts": state.restarts,
            }
            for state in self._shards
        ]
        emissions = [
            emission
            for state in self._shards
            for emission in state.result["emissions"]
        ]
        emissions.sort(key=lambda e: (e["timestamp"], e["client"]))
        metrics = MetricsRegistry.merge_snapshots(
            [state.result["metrics"] for state in self._shards]
        )
        return FleetResult(
            emissions=emissions,
            per_shard=per_shard,
            metrics=metrics,
            restarts=sum(state.restarts for state in self._shards),
        )

    def _send_finish(self, shard: int) -> None:
        state = self._shards[shard]
        while True:
            if not state.process.is_alive():
                self._restart(shard)
            try:
                state.inbox.put(("finish",), timeout=0.5)
                return
            except queue_module.Full:
                continue

    def _await_done(self, shard: int) -> None:
        state = self._shards[shard]
        while state.result is None:
            try:
                message = self._get(shard, timeout=READY_TIMEOUT_SECONDS)
            except _WorkerDied:
                # Died between our finish and its done: restore, replay,
                # re-issue finish.
                self._restart(shard)
                self._send_finish(shard)
                continue
            self._apply_message(shard, message)

    # -- liveness & introspection ---------------------------------------------

    def poll(self) -> list[int]:
        """Detect and restart dead workers; returns restarted shard ids.

        Call between dispatches (the CLI does, once per trace batch) so
        a kill during a lull is healed before more load arrives.
        """
        restarted = []
        for shard, state in enumerate(self._shards):
            if (
                state.process is not None
                and not state.process.is_alive()
                and state.result is None
                and not self._finished
            ):
                self._restart(shard)
                restarted.append(shard)
        return restarted

    def fleet_metrics_snapshot(self) -> dict:
        """One merged ``repro-metrics-v1`` snapshot for the whole fleet.

        The coordinator's own registry merges with each shard's latest
        telemetry frame (or its final ``done`` registry once finished),
        every per-shard series stamped with a ``shard`` label so merged
        families stay distinguishable.  Backs ``/metrics?scope=fleet``.
        """
        self.drain_telemetry()
        snapshots = [self.registry.snapshot()]
        for shard, state in enumerate(self._shards):
            if state.result is not None:
                shard_metrics = state.result["metrics"]
            elif state.telemetry is not None:
                shard_metrics = state.telemetry["metrics"]
            else:
                continue
            snapshots.append(
                label_snapshot(shard_metrics, shard=str(shard))
            )
        return MetricsRegistry.merge_snapshots(snapshots)

    def _shard_status(self, shard: int, state: _ShardState) -> dict:
        frame = state.telemetry
        age = None
        if state.telemetry_mono is not None:
            age = round(time.monotonic() - state.telemetry_mono, 3)
        checkpoint_age = None
        if frame is not None and frame.get("checkpoint_age_seconds") is not None:
            # The frame reports age at send time; add its time in flight.
            checkpoint_age = round(
                frame["checkpoint_age_seconds"] + (age or 0.0), 3
            )
        rate = self.monitor.events_per_second(shard)
        return {
            "shard_id": shard,
            "pid": (
                state.process.pid
                if state.process is not None else None
            ),
            "alive": (
                state.process is not None
                and state.process.is_alive()
            ),
            "sent_seq": state.sent_seq,
            "acked_seq": state.acked_seq,
            "lag_batches": max(0, state.sent_seq - state.acked_seq),
            "retained_batches": len(state.retained),
            "restarts": state.restarts,
            "done": state.result is not None,
            "checkpoint": str(self.shard_checkpoint_path(shard)),
            "events_seen": frame["events_seen"] if frame else None,
            "profiles_emitted": (
                frame["profiles_emitted"] if frame else None
            ),
            "active_clients": frame["active_clients"] if frame else None,
            "events_per_second": (
                round(rate, 2) if rate is not None else None
            ),
            "heartbeat_age_seconds": age,
            "checkpoint_age_seconds": checkpoint_age,
            "last_heartbeat_wall": frame["wall"] if frame else None,
        }

    def status(self) -> dict:
        """Fleet state for the admin server's ``/shards`` route."""
        return {
            "num_shards": self.num_shards,
            "workers": self.num_shards,
            "started": self._started,
            "finished": self._finished,
            "salt": self.router.salt,
            "nat_groups": len(self.router.nat_groups),
            "model_dir": self.model_dir,
            "restarts": sum(s.restarts for s in self._shards),
            "telemetry_interval_seconds": self.telemetry_interval_seconds,
            "fleet": self.monitor.update(),
            "shards": [
                self._shard_status(shard, state)
                for shard, state in enumerate(self._shards)
            ],
        }

    # -- hard shutdown -----------------------------------------------------------

    def terminate(self) -> None:
        """Kill every worker (tests and error paths; not a clean finish)."""
        self.monitor.stop()
        for state in self._shards:
            if state.process is not None and state.process.is_alive():
                state.process.terminate()
                state.process.join(timeout=5)
            self._discard_queues(state)


class _WorkerDied(Exception):
    """Internal: the worker exited without an error message (kill -9)."""

    def __init__(self, shard: int):
        self.shard = shard
        super().__init__(f"shard {shard} worker died")
