"""Stable, NAT-aware client → shard assignment.

The partition function must be (a) deterministic across processes and
interpreter restarts — a worker restoring its checkpoint must agree with
the coordinator about which clients it owns; (b) uniform enough that N
workers get ~1/N of the clients; and (c) NAT-aware — clients the
:class:`~repro.netobs.nat.NatBox` merges behind one egress address must
land on the same shard, because the observer sees them as one client
whose session window lives in exactly one worker.

``blake2b`` (keyed by an optional salt) satisfies (a) and (b); Python's
builtin ``hash`` does neither (``PYTHONHASHSEED`` randomizes it per
process).  (c) is handled by hashing the client's *NAT group* — the
egress identity — instead of the raw client id whenever a mapping is
provided.
"""

from __future__ import annotations

import hashlib


class ShardRouter:
    """Hash-partition client ids across ``num_shards`` workers."""

    def __init__(
        self,
        num_shards: int,
        salt: str = "",
        nat_groups: dict[str, str] | None = None,
    ):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = int(num_shards)
        self.salt = str(salt)
        self.nat_groups = dict(nat_groups) if nat_groups else {}

    def group_of(self, client_id: str) -> str:
        """The partition key: the NAT group if mapped, else the client."""
        return self.nat_groups.get(client_id, client_id)

    def shard_of(self, client_id: str) -> int:
        """Which shard owns ``client_id``.  Stable across processes."""
        digest = hashlib.blake2b(
            f"{self.salt}:{self.group_of(client_id)}".encode("utf-8"),
            digest_size=8,
        ).digest()
        return int.from_bytes(digest, "big") % self.num_shards

    def assignments(self, client_ids) -> dict[str, int]:
        return {client: self.shard_of(client) for client in client_ids}

    # -- spawn-safe round-trip ------------------------------------------------
    # Workers rebuild the router from primitives rather than receiving
    # the object, so the spec stays picklable under the spawn start
    # method regardless of how the router was constructed.

    def spec(self) -> dict:
        return {
            "num_shards": self.num_shards,
            "salt": self.salt,
            "nat_groups": dict(self.nat_groups),
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "ShardRouter":
        return cls(
            num_shards=int(spec["num_shards"]),
            salt=spec.get("salt", ""),
            nat_groups=spec.get("nat_groups") or {},
        )

    def __repr__(self) -> str:
        return (
            f"ShardRouter(num_shards={self.num_shards}, "
            f"salt={self.salt!r}, nat_groups={len(self.nat_groups)})"
        )
