"""One shard of the fleet: a StreamingProfiler plus its checkpoint.

A :class:`ShardWorker` owns every client the :class:`~repro.shard.router.
ShardRouter` assigns to its shard id, and nothing else.  It is driven by
sequenced event batches — the sequence number, not wall clock, is the
unit of progress — and persists an atomic per-shard checkpoint
(``repro-shard-checkpoint-v1``) carrying:

* ``next_seq`` — the first batch sequence it has *not* durably applied,
  the exact analogue of the worldgen ``GenerationCursor``;
* the embedded :meth:`StreamingProfiler.snapshot_state` (windows, report
  grids, counters);
* every profile emitted so far, as JSON payloads (``repr`` floats
  round-trip exactly, so a profile that crossed a checkpoint compares
  equal to one computed in-process).

``kill -9`` therefore loses only this shard's progress since its last
acknowledged checkpoint; the coordinator respawns the worker, which
restores here and reports ``next_seq`` so exactly the unacknowledged
batches are replayed — at-least-once delivery, exactly-once application.

The class is process-agnostic: :func:`_worker_main` is the spawn target,
but tests drive the same object in-process.
"""

from __future__ import annotations

import json
import os
import traceback
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.pipeline import NetworkObserverProfiler, PipelineConfig
from repro.core.streaming import StreamingConfig, StreamingProfiler
from repro.netobs.flows import HostnameEvent
from repro.obs.metrics import MetricsRegistry
from repro.shard.router import ShardRouter

SHARD_CHECKPOINT_FORMAT = "repro-shard-checkpoint-v1"


@dataclass
class WorkerSpec:
    """Everything a spawned worker needs, in picklable primitives.

    No lambdas, no live objects with locks: the router travels as its
    primitive spec, the model as a directory path (each worker maps the
    same files read-only — that is the zero-copy share), the stream
    config as a plain kwargs dict.
    """

    shard_id: int
    num_shards: int
    checkpoint_path: str
    router: dict = field(default_factory=dict)
    model_dir: str | None = None
    labelled: dict = field(default_factory=dict)
    stream_config: dict = field(default_factory=dict)
    tracker_filter: object | None = None
    # Batches applied between durable checkpoints; 0 checkpoints only at
    # finish (cheapest, but a kill replays the whole shard stream).
    checkpoint_every_batches: int = 1
    mmap_mode: str | None = "r"

    def build_router(self) -> ShardRouter:
        spec = dict(self.router) if self.router else {
            "num_shards": self.num_shards
        }
        spec.setdefault("num_shards", self.num_shards)
        return ShardRouter.from_spec(spec)


class ShardWorker:
    """Applies sequenced batches to one shard's streaming profiler."""

    def __init__(self, spec: WorkerSpec):
        if not 0 <= spec.shard_id < spec.num_shards:
            raise ValueError(
                f"shard_id {spec.shard_id} outside [0, {spec.num_shards})"
            )
        self.spec = spec
        self.shard_id = spec.shard_id
        self.router = spec.build_router()
        self.registry = MetricsRegistry()
        self.checkpoint_path = Path(spec.checkpoint_path)
        self.next_seq = 0
        self.emissions: list[dict] = []
        self.restored = False
        snapshot = self._load_checkpoint()
        if snapshot is not None:
            self.stream = StreamingProfiler.from_snapshot(
                snapshot["stream"],
                tracker_filter=spec.tracker_filter,
                registry=self.registry,
            )
            self.next_seq = int(snapshot["next_seq"])
            self.emissions = list(snapshot["emissions"])
            self.restored = True
        else:
            self.stream = StreamingProfiler(
                config=StreamingConfig(**spec.stream_config),
                tracker_filter=spec.tracker_filter,
                registry=self.registry,
            )
        self._attach_model()

    # -- model ----------------------------------------------------------------

    def _attach_model(self) -> None:
        if self.spec.model_dir is None:
            return
        pipeline = NetworkObserverProfiler(
            self.spec.labelled,
            config=PipelineConfig(),
            tracker_filter=self.spec.tracker_filter,
            registry=self.registry,
        )
        pipeline.load_model_dir(
            self.spec.model_dir, mmap_mode=self.spec.mmap_mode
        )
        if self.restored:
            # Warm restart: the same model resumes serving, so the swap
            # counter restored from the snapshot must not advance.
            self.stream._profiler = pipeline.profiler
        else:
            self.stream.swap_model(pipeline.profiler)

    # -- checkpoint -----------------------------------------------------------

    def _load_checkpoint(self) -> dict | None:
        if not self.checkpoint_path.exists():
            return None
        snapshot = json.loads(self.checkpoint_path.read_text())
        if snapshot.get("format") != SHARD_CHECKPOINT_FORMAT:
            raise ValueError(
                f"unknown shard checkpoint format "
                f"{snapshot.get('format')!r}"
            )
        if (
            int(snapshot["shard_id"]) != self.spec.shard_id
            or int(snapshot["num_shards"]) != self.spec.num_shards
        ):
            raise ValueError(
                f"checkpoint belongs to shard "
                f"{snapshot['shard_id']}/{snapshot['num_shards']}, "
                f"this worker is "
                f"{self.spec.shard_id}/{self.spec.num_shards}"
            )
        return snapshot

    def checkpoint(self) -> None:
        """Durably persist shard progress (atomic ``.tmp`` + replace)."""
        payload = {
            "format": SHARD_CHECKPOINT_FORMAT,
            "shard_id": self.spec.shard_id,
            "num_shards": self.spec.num_shards,
            "next_seq": self.next_seq,
            "emissions": self.emissions,
            "stream": self.stream.snapshot_state(),
        }
        scratch = self.checkpoint_path.with_name(
            self.checkpoint_path.name + ".tmp"
        )
        scratch.write_text(json.dumps(payload))
        os.replace(scratch, self.checkpoint_path)

    # -- ingestion ------------------------------------------------------------

    def ingest_batch(self, seq: int, events: list[tuple]) -> int:
        """Apply one sequenced batch; returns profiles emitted by it.

        Replayed batches (``seq < next_seq``) are skipped whole — they
        were durably applied before a crash, and re-applying would
        double-count — making at-least-once delivery exactly-once
        application.  A gap (``seq > next_seq``) means the feed protocol
        broke; failing loudly beats silently dropping a window.
        """
        if seq < self.next_seq:
            return 0
        if seq > self.next_seq:
            raise RuntimeError(
                f"shard {self.shard_id}: batch gap — expected seq "
                f"{self.next_seq}, got {seq}"
            )
        emitted = 0
        for client_ip, timestamp, hostname, source in events:
            if self.router.shard_of(client_ip) != self.shard_id:
                raise RuntimeError(
                    f"client {client_ip} routed to shard "
                    f"{self.router.shard_of(client_ip)}, delivered to "
                    f"shard {self.shard_id}"
                )
            emission = self.stream.ingest(
                HostnameEvent(
                    client_ip=client_ip,
                    timestamp=timestamp,
                    hostname=hostname,
                    source=source,
                )
            )
            if emission is not None:
                emitted += 1
                self.emissions.append({
                    "client": emission.client,
                    "timestamp": emission.timestamp,
                    "profile": emission.profile.to_payload(),
                    "window_hosts": list(emission.window_hosts),
                })
        self.next_seq = seq + 1
        return emitted

    # -- results --------------------------------------------------------------

    def result(self) -> dict:
        """The shard's contribution to the fleet merge (JSON-safe)."""
        return {
            "shard_id": self.shard_id,
            "next_seq": self.next_seq,
            "emissions": self.emissions,
            "events_seen": self.stream.events_seen,
            "profiles_emitted": self.stream.profiles_emitted,
            "active_clients": self.stream.active_clients,
            "metrics": self.registry.snapshot(),
        }


def _worker_main(spec: WorkerSpec, inbox, outbox) -> None:
    """Spawn target: restore, announce readiness, then apply batches.

    Protocol (all tuples, picklable):

    * out ``("ready", shard_id, next_seq)`` — restored (possibly from
      checkpoint); the coordinator replays retained batches from
      ``next_seq``.
    * in  ``("batch", seq, events)`` — apply; every
      ``checkpoint_every_batches`` applied batches, checkpoint and send
      ``("ack", shard_id, next_seq)`` (an ack promises durability — the
      coordinator trims its replay buffer below ``next_seq``).
    * in  ``("finish",)`` — final checkpoint, send
      ``("done", shard_id, result)``, exit.
    * out ``("error", shard_id, traceback)`` on any failure, then exit
      nonzero so the coordinator can distinguish crash from kill.
    """
    try:
        worker = ShardWorker(spec)
        outbox.put(("ready", worker.shard_id, worker.next_seq))
        since_checkpoint = 0
        while True:
            message = inbox.get()
            kind = message[0]
            if kind == "batch":
                _, seq, events = message
                applied_before = worker.next_seq
                worker.ingest_batch(seq, events)
                if worker.next_seq > applied_before:
                    since_checkpoint += 1
                every = spec.checkpoint_every_batches
                if every > 0 and since_checkpoint >= every:
                    worker.checkpoint()
                    since_checkpoint = 0
                    outbox.put(("ack", worker.shard_id, worker.next_seq))
            elif kind == "finish":
                worker.checkpoint()
                outbox.put(("done", worker.shard_id, worker.result()))
                return
            else:
                raise RuntimeError(f"unknown message kind {kind!r}")
    except BaseException:
        try:
            outbox.put(("error", spec.shard_id, traceback.format_exc()))
        finally:
            os._exit(1)
