"""One shard of the fleet: a StreamingProfiler plus its checkpoint.

A :class:`ShardWorker` owns every client the :class:`~repro.shard.router.
ShardRouter` assigns to its shard id, and nothing else.  It is driven by
sequenced event batches — the sequence number, not wall clock, is the
unit of progress — and persists an atomic per-shard checkpoint
(``repro-shard-checkpoint-v1``) carrying:

* ``next_seq`` — the first batch sequence it has *not* durably applied,
  the exact analogue of the worldgen ``GenerationCursor``;
* the embedded :meth:`StreamingProfiler.snapshot_state` (windows, report
  grids, counters);
* every profile emitted so far, as JSON payloads (``repr`` floats
  round-trip exactly, so a profile that crossed a checkpoint compares
  equal to one computed in-process).

``kill -9`` therefore loses only this shard's progress since its last
acknowledged checkpoint; the coordinator respawns the worker, which
restores here and reports ``next_seq`` so exactly the unacknowledged
batches are replayed — at-least-once delivery, exactly-once application.

The class is process-agnostic: :func:`_worker_main` is the spawn target,
but tests drive the same object in-process.
"""

from __future__ import annotations

import json
import os
import queue as queue_module
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.pipeline import NetworkObserverProfiler, PipelineConfig
from repro.core.streaming import StreamingConfig, StreamingProfiler
from repro.netobs.flows import HostnameEvent
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import (
    NULL_TRACER,
    TraceContext,
    Tracer,
    span_to_wire,
)
from repro.shard.router import ShardRouter

SHARD_CHECKPOINT_FORMAT = "repro-shard-checkpoint-v1"
SHARD_TELEMETRY_FORMAT = "repro-shard-telemetry-v1"


@dataclass
class WorkerSpec:
    """Everything a spawned worker needs, in picklable primitives.

    No lambdas, no live objects with locks: the router travels as its
    primitive spec, the model as a directory path (each worker maps the
    same files read-only — that is the zero-copy share), the stream
    config as a plain kwargs dict.
    """

    shard_id: int
    num_shards: int
    checkpoint_path: str
    router: dict = field(default_factory=dict)
    model_dir: str | None = None
    labelled: dict = field(default_factory=dict)
    stream_config: dict = field(default_factory=dict)
    tracker_filter: object | None = None
    # Batches applied between durable checkpoints; 0 checkpoints only at
    # finish (cheapest, but a kill replays the whole shard stream).
    checkpoint_every_batches: int = 1
    mmap_mode: str | None = "r"
    # Live telemetry: the worker ships a frame (metrics snapshot, newly
    # completed sampled spans, heartbeat facts) at most this often — the
    # same cadence doubles as the idle heartbeat when no batches arrive;
    # 0 disables streaming telemetry (the final ``done`` result still
    # carries metrics).
    telemetry_interval_seconds: float = 1.0
    # Build a real tracer so wire events carrying a TraceContext record
    # worker-side spans; off by default — tracing costs nothing unless
    # the coordinator is sampling.
    tracing: bool = False
    # Per-shard flight recorder dumped here on finish and on crash.
    flight_path: str | None = None

    def build_router(self) -> ShardRouter:
        spec = dict(self.router) if self.router else {
            "num_shards": self.num_shards
        }
        spec.setdefault("num_shards", self.num_shards)
        return ShardRouter.from_spec(spec)


class ShardWorker:
    """Applies sequenced batches to one shard's streaming profiler."""

    def __init__(self, spec: WorkerSpec):
        if not 0 <= spec.shard_id < spec.num_shards:
            raise ValueError(
                f"shard_id {spec.shard_id} outside [0, {spec.num_shards})"
            )
        self.spec = spec
        self.shard_id = spec.shard_id
        self.router = spec.build_router()
        self.registry = MetricsRegistry()
        self.tracer: Tracer = Tracer() if spec.tracing else NULL_TRACER
        self.flight = None
        if spec.flight_path:
            from repro.obs.flight import FlightRecorder

            self.flight = FlightRecorder(registry=self.registry)
        self.checkpoint_path = Path(spec.checkpoint_path)
        self.next_seq = 0
        self.emissions: list[dict] = []
        self.restored = False
        self.last_checkpoint_wall: float | None = None
        snapshot = self._load_checkpoint()
        if snapshot is not None:
            self.stream = StreamingProfiler.from_snapshot(
                snapshot["stream"],
                tracker_filter=spec.tracker_filter,
                registry=self.registry,
                tracer=self.tracer,
            )
            self.next_seq = int(snapshot["next_seq"])
            self.emissions = list(snapshot["emissions"])
            self.restored = True
        else:
            self.stream = StreamingProfiler(
                config=StreamingConfig(**spec.stream_config),
                tracker_filter=spec.tracker_filter,
                registry=self.registry,
                tracer=self.tracer,
            )
        if self.flight is not None:
            self.stream.flight = self.flight
            self.flight.record(
                "state",
                "shard.restore" if self.restored else "shard.fresh",
                shard=self.shard_id,
                next_seq=self.next_seq,
            )
        self._attach_model()

    # -- model ----------------------------------------------------------------

    def _attach_model(self) -> None:
        if self.spec.model_dir is None:
            return
        pipeline = NetworkObserverProfiler(
            self.spec.labelled,
            config=PipelineConfig(),
            tracker_filter=self.spec.tracker_filter,
            registry=self.registry,
            tracer=self.tracer,
        )
        pipeline.load_model_dir(
            self.spec.model_dir, mmap_mode=self.spec.mmap_mode
        )
        if self.restored:
            # Warm restart: the same model resumes serving, so the swap
            # counter restored from the snapshot must not advance.
            self.stream._profiler = pipeline.profiler
        else:
            self.stream.swap_model(pipeline.profiler)

    # -- checkpoint -----------------------------------------------------------

    def _load_checkpoint(self) -> dict | None:
        if not self.checkpoint_path.exists():
            return None
        snapshot = json.loads(self.checkpoint_path.read_text())
        if snapshot.get("format") != SHARD_CHECKPOINT_FORMAT:
            raise ValueError(
                f"unknown shard checkpoint format "
                f"{snapshot.get('format')!r}"
            )
        if (
            int(snapshot["shard_id"]) != self.spec.shard_id
            or int(snapshot["num_shards"]) != self.spec.num_shards
        ):
            raise ValueError(
                f"checkpoint belongs to shard "
                f"{snapshot['shard_id']}/{snapshot['num_shards']}, "
                f"this worker is "
                f"{self.spec.shard_id}/{self.spec.num_shards}"
            )
        return snapshot

    def checkpoint(self) -> None:
        """Durably persist shard progress (atomic ``.tmp`` + replace)."""
        payload = {
            "format": SHARD_CHECKPOINT_FORMAT,
            "shard_id": self.spec.shard_id,
            "num_shards": self.spec.num_shards,
            "next_seq": self.next_seq,
            "emissions": self.emissions,
            "stream": self.stream.snapshot_state(),
        }
        scratch = self.checkpoint_path.with_name(
            self.checkpoint_path.name + ".tmp"
        )
        scratch.write_text(json.dumps(payload))
        os.replace(scratch, self.checkpoint_path)
        self.last_checkpoint_wall = time.time()

    # -- ingestion ------------------------------------------------------------

    def ingest_batch(self, seq: int, events: list[tuple]) -> int:
        """Apply one sequenced batch; returns profiles emitted by it.

        Replayed batches (``seq < next_seq``) are skipped whole — they
        were durably applied before a crash, and re-applying would
        double-count — making at-least-once delivery exactly-once
        application.  A gap (``seq > next_seq``) means the feed protocol
        broke; failing loudly beats silently dropping a window.

        Wire events are 4-tuples ``(client_ip, timestamp, hostname,
        source)``; a 5th element, when present, is a serialized
        :class:`TraceContext` (``(trace_id, span_id)``) stamped by a
        sampling coordinator — the event joins that trace here, so its
        ``stream.ingest`` → ``profile.session`` → ``index.search`` spans
        parent back to the coordinator's dispatch span across the
        process boundary.
        """
        if seq < self.next_seq:
            return 0
        if seq > self.next_seq:
            raise RuntimeError(
                f"shard {self.shard_id}: batch gap — expected seq "
                f"{self.next_seq}, got {seq}"
            )
        emitted = 0
        for wire in events:
            client_ip, timestamp, hostname, source = wire[:4]
            trace = (
                TraceContext.from_wire(wire[4]) if len(wire) > 4 else None
            )
            if self.router.shard_of(client_ip) != self.shard_id:
                raise RuntimeError(
                    f"client {client_ip} routed to shard "
                    f"{self.router.shard_of(client_ip)}, delivered to "
                    f"shard {self.shard_id}"
                )
            emission = self.stream.ingest(
                HostnameEvent(
                    client_ip=client_ip,
                    timestamp=timestamp,
                    hostname=hostname,
                    source=source,
                    trace=trace,
                )
            )
            if emission is not None:
                emitted += 1
                self.emissions.append({
                    "client": emission.client,
                    "timestamp": emission.timestamp,
                    "profile": emission.profile.to_payload(),
                    "window_hosts": list(emission.window_hosts),
                })
        self.next_seq = seq + 1
        return emitted

    # -- telemetry -------------------------------------------------------------

    def telemetry_frame(self) -> dict:
        """One live telemetry frame (``repro-shard-telemetry-v1``).

        Everything the coordinator's fleet view needs between acks: the
        full metrics snapshot (cheap relative to a 4k-event batch), the
        heartbeat facts the straggler monitor consumes, and every
        completed sampled span tree — drained, so each span ships
        exactly once and the worker's memory stays bounded.
        """
        now = time.time()
        return {
            "format": SHARD_TELEMETRY_FORMAT,
            "shard_id": self.shard_id,
            "wall": now,
            "next_seq": self.next_seq,
            "events_seen": self.stream.events_seen,
            "profiles_emitted": self.stream.profiles_emitted,
            "active_clients": self.stream.active_clients,
            "checkpoint_age_seconds": (
                None if self.last_checkpoint_wall is None
                else max(0.0, now - self.last_checkpoint_wall)
            ),
            "metrics": self.registry.snapshot(),
            "spans": [
                span_to_wire(root)
                for root in self.tracer.drain_sampled()
            ],
        }

    # -- results --------------------------------------------------------------

    def result(self) -> dict:
        """The shard's contribution to the fleet merge (JSON-safe)."""
        return {
            "shard_id": self.shard_id,
            "next_seq": self.next_seq,
            "emissions": self.emissions,
            "events_seen": self.stream.events_seen,
            "profiles_emitted": self.stream.profiles_emitted,
            "active_clients": self.stream.active_clients,
            "metrics": self.registry.snapshot(),
        }


def _worker_main(spec: WorkerSpec, inbox, outbox, telemetry=None) -> None:
    """Spawn target: restore, announce readiness, then apply batches.

    Protocol (all tuples, picklable):

    * out ``("ready", shard_id, next_seq)`` — restored (possibly from
      checkpoint); the coordinator replays retained batches from
      ``next_seq``.
    * in  ``("batch", seq, events)`` — apply; every
      ``checkpoint_every_batches`` applied batches, checkpoint and send
      ``("ack", shard_id, next_seq)`` (an ack promises durability — the
      coordinator trims its replay buffer below ``next_seq``).
    * out ``("telemetry", shard_id, frame)`` — a live
      ``repro-shard-telemetry-v1`` frame (metrics snapshot, completed
      sampled spans, heartbeat facts), shipped on the dedicated
      ``telemetry`` queue when one is given (the coordinator always
      gives one — any of its threads can then drain frames without
      touching the control channel the dispatch loop owns), else
      piggybacked on the outbox.  A frame goes out right after
      ``ready``, after an applied batch at most every
      ``telemetry_interval_seconds``, after every *idle* interval with
      no batch (the heartbeat — silence must mean *stuck*, never merely
      unloaded), and right before ``done``.  Telemetry is advisory: the
      coordinator caches the latest frame per shard and never acks it.
    * in  ``("finish",)`` — final checkpoint, send
      ``("done", shard_id, result)``, exit.
    * out ``("error", shard_id, traceback)`` on any failure, then exit
      nonzero so the coordinator can distinguish crash from kill.
    """
    try:
        worker = ShardWorker(spec)
        if worker.flight is not None and spec.flight_path:
            # The ring survives what the worker process does not.
            worker.flight.install_crash_hooks(spec.flight_path)
        outbox.put(("ready", worker.shard_id, worker.next_seq))
        interval = spec.telemetry_interval_seconds
        sink = telemetry if telemetry is not None else outbox

        def emit_frame() -> None:
            sink.put(("telemetry", worker.shard_id,
                      worker.telemetry_frame()))

        if interval > 0:
            emit_frame()
        last_telemetry = time.monotonic()
        since_checkpoint = 0
        while True:
            try:
                message = inbox.get(
                    timeout=interval if interval > 0 else None
                )
            except queue_module.Empty:
                # Idle heartbeat: no batch arrived within a telemetry
                # interval.  A SIGSTOPped worker cannot reach this line,
                # so heartbeat age cleanly separates stuck from idle.
                emit_frame()
                last_telemetry = time.monotonic()
                continue
            kind = message[0]
            if kind == "batch":
                _, seq, events = message
                applied_before = worker.next_seq
                worker.ingest_batch(seq, events)
                if worker.next_seq > applied_before:
                    since_checkpoint += 1
                every = spec.checkpoint_every_batches
                if every > 0 and since_checkpoint >= every:
                    worker.checkpoint()
                    since_checkpoint = 0
                    outbox.put(("ack", worker.shard_id, worker.next_seq))
                if interval > 0 and (
                    time.monotonic() - last_telemetry >= interval
                ):
                    emit_frame()
                    last_telemetry = time.monotonic()
            elif kind == "finish":
                worker.checkpoint()
                if worker.flight is not None and spec.flight_path:
                    worker.flight.record(
                        "state", "shard.finish",
                        shard=worker.shard_id, next_seq=worker.next_seq,
                    )
                    try:
                        worker.flight.dump(spec.flight_path, reason="finish")
                    except Exception:
                        pass  # telemetry must not block the done message
                if interval > 0:
                    # Flush the final frame so spans completed since the
                    # last one reach the coordinator before done.
                    emit_frame()
                outbox.put(("done", worker.shard_id, worker.result()))
                return
            else:
                raise RuntimeError(f"unknown message kind {kind!r}")
    except BaseException:
        try:
            outbox.put(("error", spec.shard_id, traceback.format_exc()))
        finally:
            os._exit(1)
