"""Process-parallel profiling runtime: shard by client, share the model.

The paper notes its observer pipeline is "fully parallelizable" because
sessions are independent: every per-client structure (sliding window,
report grid, emitted profiles) keys on the client id and never reads
another client's state.  This package turns that observation into a
runtime:

* :class:`ShardRouter` — a stable hash partition of client ids across N
  shards, NAT-aware so clients merged behind one egress stay co-located
  (their windows must live in one worker);
* :class:`ShardWorker` — one shard's :class:`~repro.core.streaming.
  StreamingProfiler` plus its per-shard checkpoint (atomic JSON, cursor
  semantics borrowed from the worldgen `GenerationCursor`);
* :class:`ShardCoordinator` — spawns the workers, feeds them sequenced
  event batches, trims its replay buffer on durable acks, restarts a
  killed worker from its own checkpoint (replaying only that shard's
  unacknowledged batches), and merges results and per-worker metrics
  (:func:`repro.obs.merge_snapshots`) into one fleet view.

The model is shared zero-copy: the coordinator exports embeddings +
index once (``compress=False``, mappable members) and every worker
binds ``mmap_mode="r"`` views, so N processes read one physical copy of
the model pages through the OS page cache.

Parity is exact, not approximate: partitioning preserves each client's
event subsequence, per-client profiling state never crosses clients,
and all workers map byte-identical model files — so the merged fleet
emissions equal the single-process run's, which the parity tests pin
over N ∈ {1, 2, 4} and multiple shardings.

The fleet is observable while it runs, not only at finish: workers ship
``repro-shard-telemetry-v1`` frames (metrics snapshot, heartbeat facts,
exported trace spans) over their outbox, the coordinator caches and
merges them (``/metrics?scope=fleet``, enriched ``/shards``), and
:class:`FleetMonitor` turns the heartbeat stream into straggler/skew
gauges the SLO engine can alert on.
"""

from repro.shard.coordinator import FleetResult, ShardCoordinator
from repro.shard.monitor import FleetMonitor
from repro.shard.router import ShardRouter
from repro.shard.worker import (
    SHARD_CHECKPOINT_FORMAT,
    SHARD_TELEMETRY_FORMAT,
    ShardWorker,
    WorkerSpec,
)

__all__ = [
    "FleetMonitor",
    "FleetResult",
    "SHARD_CHECKPOINT_FORMAT",
    "SHARD_TELEMETRY_FORMAT",
    "ShardCoordinator",
    "ShardRouter",
    "ShardWorker",
    "WorkerSpec",
]
