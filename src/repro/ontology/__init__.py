"""Category ontology substrate (synthetic Adwords-like taxonomy + labeler).

The paper maps hostnames to interest categories via the Google Adwords
Display Planner: 1397 raw categories truncated at hierarchy level 2 into the
C = 328 categories used for profiling, with only ~10.6 % hostname coverage.
This package rebuilds that machinery: :class:`Taxonomy` (the hierarchy and
its truncation), :func:`build_default_taxonomy` (a reference instance with
the paper's exact counts) and :class:`OntologyLabeler` (the coverage-limited
hostname -> category-vector oracle).
"""

from repro.ontology.catalog import (
    EXPECTED_RAW_CATEGORIES,
    EXPECTED_TOP_LEVEL,
    EXPECTED_TRUNCATED_CATEGORIES,
    VERTICALS,
    build_default_taxonomy,
)
from repro.ontology.labeler import GroundTruth, LabelerStats, OntologyLabeler
from repro.ontology.taxonomy import Category, Taxonomy

__all__ = [
    "Category",
    "EXPECTED_RAW_CATEGORIES",
    "EXPECTED_TOP_LEVEL",
    "EXPECTED_TRUNCATED_CATEGORIES",
    "GroundTruth",
    "LabelerStats",
    "OntologyLabeler",
    "Taxonomy",
    "VERTICALS",
    "build_default_taxonomy",
]
