"""Coverage-limited hostname labelling (the "Display Planner" substrate).

The paper bootstraps profiling from a small labelled set ``H_L``: hostnames
for which the Google Adwords Display Planner returned categories.  Two facts
about that oracle drive the whole design of the profiling algorithm:

* **Coverage is poor.**  Adwords classified only 10.6 % of the 470K
  hostnames in the paper's dataset.
* **Infrastructure hostnames are never covered.**  CDN and API hostnames
  (67 % of hostnames "returned an error/empty page") have no content to
  classify, so an ontology cannot label them.

``OntologyLabeler`` reproduces both properties: it reveals categories only
for a configurable fraction of the *labelable* hosts (content sites), biased
towards popular ones (a real ontology knows booking.com but not a long-tail
blog), and by construction never labels hosts marked as infrastructure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ontology.taxonomy import Category, Taxonomy

GroundTruth = dict[str, list[tuple[Category, float]]]


@dataclass(frozen=True)
class LabelerStats:
    """Bookkeeping reported by :meth:`OntologyLabeler.build_labelled_set`."""

    universe_size: int
    labelable_hosts: int
    labelled_hosts: int

    @property
    def coverage(self) -> float:
        """Fraction of the whole hostname universe that ended up labelled."""
        if self.universe_size == 0:
            return 0.0
        return self.labelled_hosts / self.universe_size


class OntologyLabeler:
    """Reveals category vectors for a coverage-limited subset of hostnames.

    Parameters
    ----------
    taxonomy:
        The category taxonomy; label vectors live in its truncated space.
    coverage:
        Target fraction of the *hostname universe* to label (paper: 0.106).
    popularity_bias:
        Exponent applied to host popularity when sampling which hosts the
        ontology knows.  0 = uniform; 1 = proportional to popularity.
        Real ontologies skew heavily towards popular sites.
    """

    def __init__(
        self,
        taxonomy: Taxonomy,
        coverage: float = 0.106,
        popularity_bias: float = 0.75,
    ):
        if not 0.0 <= coverage <= 1.0:
            raise ValueError(f"coverage must be in [0, 1], got {coverage!r}")
        if popularity_bias < 0:
            raise ValueError("popularity_bias must be >= 0")
        self.taxonomy = taxonomy
        self.coverage = float(coverage)
        self.popularity_bias = float(popularity_bias)
        self._labels: dict[str, np.ndarray] = {}
        self._stats: LabelerStats | None = None

    # -- construction ------------------------------------------------------

    def build_labelled_set(
        self,
        ground_truth: GroundTruth,
        universe_size: int,
        rng: np.random.Generator,
        popularity: dict[str, float] | None = None,
    ) -> dict[str, np.ndarray]:
        """Choose which hosts the ontology covers and compute their vectors.

        ``ground_truth`` maps each *labelable* hostname to its true weighted
        categories; ``universe_size`` is the total number of distinct
        hostnames the observer will ever see (sites + satellites + trackers),
        against which the coverage target is measured.
        """
        if universe_size < len(ground_truth):
            raise ValueError(
                "universe_size cannot be smaller than the labelable set"
            )
        hostnames = sorted(ground_truth)
        target = min(len(hostnames), round(self.coverage * universe_size))
        if target and hostnames:
            if popularity and self.popularity_bias > 0:
                weights = np.array(
                    [max(popularity.get(h, 0.0), 1e-12) for h in hostnames]
                ) ** self.popularity_bias
                probs = weights / weights.sum()
            else:
                probs = None
            chosen = rng.choice(
                len(hostnames), size=target, replace=False, p=probs
            )
            chosen_hosts = [hostnames[i] for i in chosen]
        else:
            chosen_hosts = []
        self._labels = {
            host: self.taxonomy.vector(ground_truth[host])
            for host in chosen_hosts
        }
        self._stats = LabelerStats(
            universe_size=universe_size,
            labelable_hosts=len(ground_truth),
            labelled_hosts=len(self._labels),
        )
        return dict(self._labels)

    # -- the Display Planner query interface --------------------------------

    def query(self, hostname: str) -> np.ndarray | None:
        """Return the category vector for ``hostname``, or None if unknown.

        Mirrors the paper's Selenium-driven Display Planner queries: most
        lookups come back empty.
        """
        vector = self._labels.get(hostname)
        return None if vector is None else vector.copy()

    def knows(self, hostname: str) -> bool:
        return hostname in self._labels

    @property
    def labelled_hosts(self) -> list[str]:
        return sorted(self._labels)

    @property
    def stats(self) -> LabelerStats:
        if self._stats is None:
            raise RuntimeError("build_labelled_set has not been called yet")
        return self._stats
