"""Synthetic Adwords-like category catalog.

The paper's ontology (Google Adwords Display Planner, 2018) had 1397 raw
categories under 34 top-level verticals; truncating at hierarchy level 2
yields the 328 categories used for profiling.  Google never published that
taxonomy, so we reconstruct one with the same *shape*:

* 34 top-level verticals (names taken from Figure 6 of the paper);
* 294 hand-written level-2 subcategories (34 + 294 = 328 truncated);
* 1069 procedurally generated level-3..5 categories (total 1397);
* per-vertical depth mirrors the paper's remarks: "Internet & Telecom" has
  exactly two subcategories, "Computers & Electronics" has 123 subcategories
  in a 5-level hierarchy.

Level-2 names are written as ``"<Vertical> / <Sub>"`` so that names are
globally unique (several verticals would otherwise both contain e.g.
"History").
"""

from __future__ import annotations

from repro.ontology.taxonomy import Category, Taxonomy

# Each entry: (vertical name, [level-2 subcategory names],
#              deeper-node budget, max depth of the subtree).
# The budgets are chosen so that the totals match the paper exactly:
# sum(len(subs)) = 294, sum(budget) = 1069, total = 34 + 294 + 1069 = 1397.
VERTICALS: list[tuple[str, list[str], int, int]] = [
    (
        "Arts & Entertainment",
        [
            "Celebrities & Entertainment News", "Comics & Animation",
            "Concerts & Music Festivals", "Movies", "Music & Audio",
            "Performing Arts", "TV Shows & Programs", "Visual Art & Design",
            "Humor", "Events & Listings", "Fun Tests & Quizzes",
            "Online Video", "Radio", "Entertainment Industry",
            "Anime & Manga", "Photography",
        ],
        95, 4,
    ),
    (
        "Autos & Vehicles",
        [
            "Motor Vehicles (New)", "Motor Vehicles (Used)", "Motorcycles",
            "Auto Parts & Accessories", "Vehicle Repair & Maintenance",
            "Commercial Vehicles", "Classic Vehicles", "Vehicle Shopping",
            "Boats & Watercraft", "Vehicle Licensing & Registration",
        ],
        50, 4,
    ),
    (
        "Beauty & Fitness",
        [
            "Face & Body Care", "Fashion & Style", "Fitness", "Hair Care",
            "Spas & Beauty Services", "Weight Loss", "Cosmetic Procedures",
            "Beauty Pageants", "Perfumes & Fragrances",
        ],
        35, 3,
    ),
    (
        "Books & Literature",
        [
            "Children's Literature", "E-Books", "Fan Fiction & Writing",
            "Literary Classics", "Poetry", "Book Retailers", "Magazines",
            "Audiobooks",
        ],
        25, 3,
    ),
    (
        "Business & Industrial",
        [
            "Advertising & Marketing", "Aerospace & Defense",
            "Agriculture & Forestry", "Business Services",
            "Chemicals Industry", "Construction & Maintenance", "Energy",
            "Hospitality Industry", "Industrial Materials & Equipment",
            "Manufacturing", "Metals & Mining", "Pharmaceuticals & Biotech",
            "Printing & Publishing", "Retail Trade", "Textiles & Nonwovens",
            "Transportation & Logistics",
        ],
        80, 4,
    ),
    (
        "Computers & Electronics",
        [
            "CAD & CAM", "Computer Hardware", "Computer Security",
            "Consumer Electronics", "Electronics & Electrical",
            "Enterprise Technology", "Networking", "Programming",
            "Software", "Gadgets & Portable Electronics",
            "Game Systems & Consoles", "Laptops & Notebooks",
            "Mobile Phones", "Audio Equipment", "Camera & Photo Equipment",
            "Cloud Storage", "Operating Systems", "Printers & Scanners",
            "TV & Video Equipment", "Wearable Technology",
        ],
        103, 5,
    ),
    (
        "Finance",
        [
            "Accounting & Auditing", "Banking", "Credit & Lending",
            "Financial Planning & Management", "Grants & Financial Assistance",
            "Insurance", "Investing", "Retirement & Pension",
            "Currencies & Foreign Exchange", "Crypto Assets",
            "Tax Preparation & Planning", "Stock Brokerages",
        ],
        45, 4,
    ),
    (
        "Food & Drink",
        [
            "Beverages", "Cooking & Recipes", "Food & Grocery Retailers",
            "Restaurants", "Baked Goods", "Meat & Seafood",
            "Vegetarian & Vegan Cuisine", "World Cuisines", "Wine & Spirits",
        ],
        30, 3,
    ),
    (
        "Games",
        [
            "Arcade & Coin-Op Games", "Board Games", "Card Games",
            "Computer & Video Games", "Gambling", "Online Games",
            "Puzzles & Brainteasers", "Roleplaying Games",
            "Massively Multiplayer Games", "Game Cheats & Hints",
        ],
        51, 4,
    ),
    (
        "Health",
        [
            "Aging & Geriatrics", "Health Conditions", "Medical Devices",
            "Medical Facilities & Services", "Men's Health", "Mental Health",
            "Nursing", "Nutrition", "Oral & Dental Care", "Pediatrics",
            "Pharmacy", "Public Health", "Reproductive Health",
            "Women's Health",
        ],
        55, 4,
    ),
    (
        "Hobbies & Leisure",
        [
            "Antiques & Collectibles", "Clubs & Organizations", "Crafts",
            "Merit Prizes & Contests", "Outdoors", "Paintball",
            "Radio Control & Modeling", "Recreational Aviation",
            "Water Activities", "Bowling",
        ],
        40, 3,
    ),
    (
        "Home & Garden",
        [
            "Bed & Bath", "Domestic Services", "Gardening & Landscaping",
            "Home Appliances", "Home Furnishings", "Home Improvement",
            "Home Safety & Security", "Homemaking & Interior Decor",
            "Kitchen & Dining", "Laundry",
        ],
        35, 3,
    ),
    (
        "Internet & Telecom",
        # The paper singles this vertical out: "category Telecom only has two
        # subcategories".
        ["Service Providers", "Web Services"],
        0, 2,
    ),
    (
        "Jobs & Education",
        [
            "Education", "Jobs", "Internships", "Job Listings",
            "Resumes & Portfolios", "Vocational & Continuing Education",
            "Distance Learning", "Training & Certification",
        ],
        25, 3,
    ),
    (
        "Law & Government",
        [
            "Government", "Legal", "Military", "Public Safety",
            "Social Services", "Courts & Judiciary", "Visa & Immigration",
            "Elections & Politics",
        ],
        25, 3,
    ),
    (
        "News",
        [
            "Business News", "Gossip & Tabloid News", "Health News",
            "Local News", "Politics News", "Sports News", "Technology News",
            "Weather",
        ],
        20, 3,
    ),
    (
        "Online Communities",
        [
            "Blogging Resources & Services", "Dating & Personals",
            "File Sharing & Hosting", "Forum & Chat Providers",
            "Online Goodies", "Photo & Video Sharing", "Social Networks",
            "Virtual Worlds", "Microblogging",
        ],
        25, 3,
    ),
    (
        "People & Society",
        [
            "Family & Relationships", "Kids & Teens", "Religion & Belief",
            "Seniors & Retirement", "Social Issues & Advocacy",
            "Social Sciences", "Subcultures & Niche Interests",
            "Ethnic & Identity Groups", "Genealogy", "Self-Help & Motivation",
        ],
        30, 3,
    ),
    (
        "Pets & Animals",
        [
            "Animal Products & Services", "Birds", "Cats", "Dogs",
            "Fish & Aquaria", "Horses", "Wildlife",
        ],
        15, 3,
    ),
    (
        "Real Estate",
        [
            "Apartments & Residential Rentals", "Commercial Properties",
            "Property Development", "Property Inspections & Appraisals",
            "Property Management", "Residential Sales",
        ],
        12, 3,
    ),
    (
        "Reference",
        [
            "Dictionaries & Encyclopedias", "Educational Resources",
            "Foreign Language Resources", "General Reference",
            "Geographic Reference", "How-To, DIY & Expert Content",
            "Libraries & Museums",
        ],
        15, 3,
    ),
    (
        "Science",
        [
            "Astronomy", "Biological Sciences", "Chemistry",
            "Computer Science", "Earth Sciences", "Engineering & Technology",
            "Mathematics", "Physics", "Scientific Institutions",
        ],
        25, 3,
    ),
    (
        "Shopping",
        [
            "Antiques & Collectibles Shopping", "Apparel", "Auctions",
            "Classifieds", "Consumer Resources", "Coupons & Discount Offers",
            "Gifts & Special Event Items", "Luxury Goods",
            "Mass Merchants & Department Stores", "Shopping Portals",
            "Sporting Goods Shopping", "Toys", "Jewelry", "Flowers",
            "Price Comparison Services", "Online Marketplaces",
        ],
        60, 4,
    ),
    (
        "Sports",
        [
            "American Football", "Baseball", "Basketball", "Combat Sports",
            "Cycling", "Fantasy Sports", "Golf", "Gymnastics",
            "Ice Hockey", "Motor Sports", "Soccer", "Tennis",
            "Water Sports", "Winter Sports", "Running & Walking",
            "Extreme Sports",
        ],
        75, 4,
    ),
    (
        "Travel",
        [
            "Air Travel", "Bus & Rail", "Car Rental & Taxi Services",
            "Cruises & Charters", "Hotels & Accommodations",
            "Luggage & Travel Accessories", "Specialty Travel",
            "Tourist Destinations", "Travel Agencies & Services",
            "Travel Guides & Travelogues", "Vacation Offers",
            "Honeymoons & Romantic Getaways",
        ],
        58, 4,
    ),
    (
        "Adult",
        [
            "Adult Entertainment", "Adult Dating", "Adult Webcams",
            "Adult Games", "Adult Literature",
        ],
        10, 3,
    ),
    (
        "Reviews & Comparisons",
        [
            "Product Reviews", "Service Reviews", "Comparison Shopping",
            "Consumer Advocacy",
        ],
        6, 3,
    ),
    (
        "DIY & Expert Content",
        [
            "DIY Projects", "Expert Q&A", "Tutorials", "Maker Communities",
        ],
        6, 3,
    ),
    (
        "Clubs & Nightlife",
        ["Bars & Pubs", "Dance Clubs", "Live Music Venues", "Nightlife Guides"],
        6, 3,
    ),
    (
        "Awards & Prizes",
        ["Contests & Sweepstakes", "Film & TV Awards", "Raffles & Lotteries"],
        3, 3,
    ),
    (
        "Scholarships & Financial Aid",
        ["Scholarships", "Student Loans", "Study Grants"],
        3, 3,
    ),
    (
        "Sororities & Student Societies",
        ["Fraternities & Sororities", "Student Associations", "Honor Societies"],
        2, 3,
    ),
    (
        "Crime & Mystery Films",
        ["Crime Films", "Mystery Films", "Film Noir"],
        2, 3,
    ),
    (
        "Telescopes & Optical Devices",
        ["Telescopes", "Binoculars", "Microscopes"],
        2, 3,
    ),
]

# Facet names used when procedurally generating the level-3..5 categories.
# Only the *count and depth* of those deep categories matter to the
# algorithms (they all truncate to their level-2 ancestor), so systematic
# names are appropriate here.
_FACETS: tuple[str, ...] = (
    "Accessories", "Brands", "Beginners", "Professional", "Equipment",
    "Events", "Guides", "History", "Local", "Online", "Pricing", "Rentals",
    "Repair", "Reviews", "Used & Refurbished", "Vintage", "Wholesale",
    "Communities", "Training", "Suppliers", "Comparisons", "Premium",
    "Budget", "Regional", "International", "Seasonal", "Kids", "Luxury",
    "Software", "Hardware", "Services", "Parts", "Maintenance", "News",
    "Research", "Standards", "Trends", "Careers", "Safety", "Regulations",
)

EXPECTED_RAW_CATEGORIES = 1397
EXPECTED_TRUNCATED_CATEGORIES = 328
EXPECTED_TOP_LEVEL = 34


def _expand_subtree(
    taxonomy: Taxonomy,
    level2: list[Category],
    budget: int,
    max_depth: int,
) -> None:
    """Attach ``budget`` procedurally named descendants below ``level2``.

    To honour the per-vertical depth (e.g. the 5-level Computers &
    Electronics subtree), a single spine chain down to ``max_depth`` is built
    first; remaining budget is spent breadth-first so the subtree looks like
    a realistic bushy taxonomy rather than a linked list.
    """
    if budget <= 0 or not level2:
        return
    facet_cursor: dict[int, int] = {}

    def next_child(parent: Category) -> Category:
        cursor = facet_cursor.get(parent.cat_id, 0)
        facet_cursor[parent.cat_id] = cursor + 1
        facet = _FACETS[cursor % len(_FACETS)]
        suffix = "" if cursor < len(_FACETS) else f" {cursor // len(_FACETS) + 1}"
        return taxonomy.add(f"{parent.name} / {facet}{suffix}", parent=parent)

    remaining = budget
    # Spine: one chain from the first level-2 node down to max_depth.
    node = level2[0]
    while node.level < max_depth and remaining > 0:
        node = next_child(node)
        remaining -= 1
    # Breadth-first fill over the whole subtree.
    queue: list[Category] = list(level2)
    while remaining > 0:
        parent = queue.pop(0)
        if parent.level < max_depth:
            child = next_child(parent)
            remaining -= 1
            queue.append(child)
        queue.append(parent)


def build_default_taxonomy() -> Taxonomy:
    """Build the full 1397-category / 328-truncated reference taxonomy."""
    taxonomy = Taxonomy()
    for vertical_name, sub_names, budget, max_depth in VERTICALS:
        vertical = taxonomy.add(vertical_name)
        level2 = [
            taxonomy.add(f"{vertical_name} / {sub}", parent=vertical)
            for sub in sub_names
        ]
        _expand_subtree(taxonomy, level2, budget, max_depth)
    if len(taxonomy) != EXPECTED_RAW_CATEGORIES:
        raise AssertionError(
            f"catalog drifted: built {len(taxonomy)} raw categories, "
            f"expected {EXPECTED_RAW_CATEGORIES}"
        )
    if taxonomy.num_truncated != EXPECTED_TRUNCATED_CATEGORIES:
        raise AssertionError(
            f"catalog drifted: {taxonomy.num_truncated} truncated categories, "
            f"expected {EXPECTED_TRUNCATED_CATEGORIES}"
        )
    return taxonomy
