"""Hierarchical category taxonomy (the "Google Adwords ontology" substrate).

The paper obtained 1397 categories from the Adwords Display Planner, arranged
in a hierarchy of uneven depth (Telecom has two subcategories, Computers &
Electronics has 123 spread over five levels), and truncated it at the second
level to obtain the C = 328 categories actually used for profiling.

This module implements the hierarchy itself plus the truncation: every raw
category maps to its unique level-<=2 ancestor, and category vectors are
expressed over the truncated set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np


@dataclass(frozen=True)
class Category:
    """One node of the taxonomy.

    ``cat_id`` is a stable integer id assigned in insertion order over the
    *whole* raw hierarchy.  ``level`` is 1 for top-level verticals.
    """

    cat_id: int
    name: str
    level: int
    parent_id: int | None

    @property
    def is_top_level(self) -> bool:
        return self.level == 1


class Taxonomy:
    """A rooted forest of categories with level-2 truncation support.

    The truncated categories (level <= 2) get dense *truncated indices*
    ``0..C-1`` used as vector coordinates everywhere else in the library.
    """

    def __init__(self) -> None:
        self._categories: list[Category] = []
        self._by_name: dict[str, int] = {}
        self._children: dict[int | None, list[int]] = {}
        self._truncated_index: dict[int, int] = {}

    # -- construction ------------------------------------------------------

    def add(self, name: str, parent: Category | None = None) -> Category:
        """Add a category under ``parent`` (or as a top-level vertical)."""
        if name in self._by_name:
            raise ValueError(f"duplicate category name: {name!r}")
        if parent is not None and parent.cat_id >= len(self._categories):
            raise ValueError(f"unknown parent: {parent!r}")
        level = 1 if parent is None else parent.level + 1
        category = Category(
            cat_id=len(self._categories),
            name=name,
            level=level,
            parent_id=None if parent is None else parent.cat_id,
        )
        self._categories.append(category)
        self._by_name[name] = category.cat_id
        self._children.setdefault(category.parent_id, []).append(category.cat_id)
        if level <= 2:
            self._truncated_index[category.cat_id] = len(self._truncated_index)
        return category

    # -- lookup ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._categories)

    def __iter__(self) -> Iterator[Category]:
        return iter(self._categories)

    def by_id(self, cat_id: int) -> Category:
        return self._categories[cat_id]

    def by_name(self, name: str) -> Category:
        try:
            return self._categories[self._by_name[name]]
        except KeyError:
            raise KeyError(f"no category named {name!r}") from None

    def children(self, category: Category) -> list[Category]:
        return [self._categories[i] for i in self._children.get(category.cat_id, [])]

    def top_level(self) -> list[Category]:
        return [self._categories[i] for i in self._children.get(None, [])]

    def path(self, category: Category) -> list[Category]:
        """Root-to-node path, e.g. [Travel, Air Travel, Budget Airlines]."""
        chain: list[Category] = [category]
        while chain[-1].parent_id is not None:
            chain.append(self._categories[chain[-1].parent_id])
        return list(reversed(chain))

    def descendants(self, category: Category) -> list[Category]:
        """All strict descendants, depth-first."""
        out: list[Category] = []
        stack = list(self._children.get(category.cat_id, []))
        while stack:
            cat_id = stack.pop()
            out.append(self._categories[cat_id])
            stack.extend(self._children.get(cat_id, []))
        return out

    def max_depth(self, category: Category) -> int:
        """Depth of the subtree rooted at ``category`` (1 = leaf)."""
        kids = self.children(category)
        if not kids:
            return 1
        return 1 + max(self.max_depth(child) for child in kids)

    # -- level-2 truncation (the paper's C = 328 category space) ------------

    @property
    def num_truncated(self) -> int:
        """Number of level-<=2 categories; the paper's ``C``."""
        return len(self._truncated_index)

    def truncated_categories(self) -> list[Category]:
        """The level-<=2 categories in truncated-index order."""
        ordered = sorted(self._truncated_index.items(), key=lambda kv: kv[1])
        return [self._categories[cat_id] for cat_id, _ in ordered]

    def truncate(self, category: Category) -> Category:
        """Map a raw category to its unique level-<=2 ancestor."""
        node = category
        while node.level > 2:
            assert node.parent_id is not None
            node = self._categories[node.parent_id]
        return node

    def truncated_index(self, category: Category) -> int:
        """Dense coordinate (0..C-1) of ``category``'s level-<=2 ancestor."""
        return self._truncated_index[self.truncate(category).cat_id]

    def top_level_index_of(self, truncated_idx: int) -> int:
        """Map a truncated coordinate to the index of its top-level vertical.

        Used by the Figure 6 analysis, which reports only the 34 top-level
        topics "to ease readability".
        """
        category = self.truncated_categories()[truncated_idx]
        root = self.path(category)[0]
        return self._children[None].index(root.cat_id)

    def vector(
        self, weighted_categories: Iterable[tuple[Category, float]]
    ) -> np.ndarray:
        """Build a category vector c^h over the truncated space.

        Each (category, importance) pair contributes its importance to the
        coordinate of the category's level-<=2 ancestor; coordinates are
        capped at 1 so that, as in the paper, every component lies in [0, 1]
        without the vector being a probability distribution.
        """
        vec = np.zeros(self.num_truncated, dtype=np.float64)
        for category, importance in weighted_categories:
            if not 0.0 <= importance <= 1.0:
                raise ValueError(
                    f"importance must be in [0, 1], got {importance!r}"
                )
            idx = self.truncated_index(category)
            vec[idx] = min(1.0, vec[idx] + importance)
        return vec
