"""Minimal IPv4/TCP/UDP packet codecs.

The observer substrate works on real byte layouts so that the SNI
extraction path is the one an actual on-path eavesdropper runs: parse IP,
demultiplex the transport, find the TLS/QUIC/DNS payload.  Only the fields
an observer needs are modelled; options, fragmentation and IPv6 are out of
scope (documented in DESIGN.md).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

IP_PROTO_TCP = 6
IP_PROTO_UDP = 17

_IPV4_HEADER = struct.Struct("!BBHHHBBH4s4s")
_TCP_HEADER = struct.Struct("!HHIIBBHHH")
_UDP_HEADER = struct.Struct("!HHHH")


class PacketError(ValueError):
    """Raised when bytes cannot be parsed as the expected packet layout."""


def ip_to_bytes(address: str) -> bytes:
    parts = address.split(".")
    if len(parts) != 4:
        raise PacketError(f"not an IPv4 address: {address!r}")
    try:
        octets = [int(p) for p in parts]
    except ValueError:
        raise PacketError(f"not an IPv4 address: {address!r}") from None
    if any(not 0 <= o <= 255 for o in octets):
        raise PacketError(f"not an IPv4 address: {address!r}")
    return bytes(octets)


def bytes_to_ip(raw: bytes) -> str:
    if len(raw) != 4:
        raise PacketError("IPv4 address must be 4 bytes")
    return ".".join(str(b) for b in raw)


def checksum16(data: bytes) -> int:
    """RFC 1071 ones-complement checksum over 16-bit words."""
    if len(data) % 2:
        data += b"\x00"
    total = sum(struct.unpack(f"!{len(data) // 2}H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


@dataclass(frozen=True)
class Packet:
    """A parsed (or to-be-serialized) IPv4 packet with TCP or UDP payload."""

    src_ip: str
    dst_ip: str
    protocol: int          # IP_PROTO_TCP or IP_PROTO_UDP
    src_port: int
    dst_port: int
    payload: bytes
    timestamp: float = 0.0

    def __post_init__(self):
        if self.protocol not in (IP_PROTO_TCP, IP_PROTO_UDP):
            raise PacketError(f"unsupported protocol {self.protocol}")
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 0xFFFF:
                raise PacketError(f"invalid port {port}")

    @property
    def flow_key(self) -> tuple[str, str, int, int, int]:
        """5-tuple identifying the flow this packet belongs to."""
        return (
            self.src_ip, self.dst_ip, self.protocol,
            self.src_port, self.dst_port,
        )

    def reversed_flow_key(self) -> tuple[str, str, int, int, int]:
        return (
            self.dst_ip, self.src_ip, self.protocol,
            self.dst_port, self.src_port,
        )

    # -- wire format -----------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to an IPv4 packet with a valid header checksum."""
        if self.protocol == IP_PROTO_TCP:
            transport = self._tcp_segment()
        else:
            transport = self._udp_datagram()
        total_length = _IPV4_HEADER.size + len(transport)
        header_wo_checksum = _IPV4_HEADER.pack(
            0x45,                   # version 4, IHL 5
            0,                      # DSCP/ECN
            total_length,
            0,                      # identification
            0x4000,                 # flags: don't fragment
            64,                     # TTL
            self.protocol,
            0,                      # checksum placeholder
            ip_to_bytes(self.src_ip),
            ip_to_bytes(self.dst_ip),
        )
        check = checksum16(header_wo_checksum)
        header = header_wo_checksum[:10] + struct.pack("!H", check) \
            + header_wo_checksum[12:]
        return header + transport

    def _pseudo_header(self, transport_length: int) -> bytes:
        return (
            ip_to_bytes(self.src_ip)
            + ip_to_bytes(self.dst_ip)
            + struct.pack("!BBH", 0, self.protocol, transport_length)
        )

    def _tcp_segment(self) -> bytes:
        header_wo_checksum = _TCP_HEADER.pack(
            self.src_port, self.dst_port,
            1,                      # sequence number
            0,                      # ack number
            5 << 4,                 # data offset 5 words
            0x18,                   # PSH|ACK
            0xFFFF,                 # window
            0,                      # checksum placeholder
            0,                      # urgent pointer
        )
        segment = header_wo_checksum + self.payload
        check = checksum16(self._pseudo_header(len(segment)) + segment)
        return segment[:16] + struct.pack("!H", check) + segment[18:]

    def _udp_datagram(self) -> bytes:
        length = _UDP_HEADER.size + len(self.payload)
        header_wo_checksum = _UDP_HEADER.pack(
            self.src_port, self.dst_port, length, 0
        )
        datagram = header_wo_checksum + self.payload
        check = checksum16(self._pseudo_header(length) + datagram)
        if check == 0:
            check = 0xFFFF          # RFC 768: 0 means "no checksum"
        return datagram[:6] + struct.pack("!H", check) + datagram[8:]

    @classmethod
    def from_bytes(cls, data: bytes, timestamp: float = 0.0) -> "Packet":
        """Parse an IPv4/TCP or IPv4/UDP packet; verifies the IP checksum."""
        if len(data) < _IPV4_HEADER.size:
            raise PacketError("truncated IPv4 header")
        (
            version_ihl, _dscp, total_length, _ident, _flags, _ttl,
            protocol, _checksum, src_raw, dst_raw,
        ) = _IPV4_HEADER.unpack_from(data)
        if version_ihl >> 4 != 4:
            raise PacketError("not IPv4")
        ihl_bytes = (version_ihl & 0x0F) * 4
        if ihl_bytes < _IPV4_HEADER.size or len(data) < ihl_bytes:
            raise PacketError("bad IHL")
        if checksum16(data[:ihl_bytes]) != 0:
            raise PacketError("IPv4 header checksum mismatch")
        if total_length > len(data):
            raise PacketError("truncated packet body")
        body = data[ihl_bytes:total_length]
        if protocol == IP_PROTO_TCP:
            if len(body) < _TCP_HEADER.size:
                raise PacketError("truncated TCP header")
            src_port, dst_port = struct.unpack_from("!HH", body)
            offset_words = body[12] >> 4
            payload = body[offset_words * 4:]
        elif protocol == IP_PROTO_UDP:
            if len(body) < _UDP_HEADER.size:
                raise PacketError("truncated UDP header")
            src_port, dst_port, udp_len, _ = _UDP_HEADER.unpack_from(body)
            if udp_len < _UDP_HEADER.size or udp_len > len(body):
                raise PacketError("bad UDP length")
            payload = body[_UDP_HEADER.size:udp_len]
        else:
            raise PacketError(f"unsupported protocol {protocol}")
        return cls(
            src_ip=bytes_to_ip(src_raw),
            dst_ip=bytes_to_ip(dst_raw),
            protocol=protocol,
            src_port=src_port,
            dst_port=dst_port,
            payload=payload,
            timestamp=timestamp,
        )
