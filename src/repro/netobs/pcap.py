"""PCAP file reading and writing (libpcap classic format).

Lets the observer consume real ``tcpdump``/Wireshark captures and lets the
traffic synthesizer export captures other tools can open.  Implements the
classic pcap container from scratch: 24-byte global header (magic
0xA1B2C3D4, microsecond timestamps, both endiannesses accepted on read)
followed by 16-byte per-packet record headers.  Two link types are
supported — LINKTYPE_RAW (IPv4 directly) and LINKTYPE_ETHERNET (a 14-byte
Ethernet header is synthesized/stripped).
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable, Iterator

from repro.netobs.packets import Packet, PacketError

PCAP_MAGIC = 0xA1B2C3D4
LINKTYPE_ETHERNET = 1
LINKTYPE_RAW = 101
_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")
_ETHERTYPE_IPV4 = 0x0800


class PcapError(ValueError):
    """Raised for malformed pcap containers."""


def _ethernet_frame(ip_packet: bytes) -> bytes:
    # Locally administered, stable dummy addresses.
    dst = b"\x02\x00\x00\x00\x00\x01"
    src = b"\x02\x00\x00\x00\x00\x02"
    return dst + src + struct.pack("!H", _ETHERTYPE_IPV4) + ip_packet


def _strip_ethernet(frame: bytes) -> bytes | None:
    if len(frame) < 14:
        raise PcapError("truncated Ethernet frame")
    ethertype = struct.unpack_from("!H", frame, 12)[0]
    if ethertype != _ETHERTYPE_IPV4:
        return None  # ARP, IPv6, VLAN... not ours
    return frame[14:]


class PcapWriter:
    """Writes packets into a classic pcap file."""

    def __init__(
        self,
        path: str | Path,
        linktype: int = LINKTYPE_RAW,
        snaplen: int = 65535,
    ):
        if linktype not in (LINKTYPE_RAW, LINKTYPE_ETHERNET):
            raise ValueError(f"unsupported linktype {linktype}")
        self.path = Path(path)
        self.linktype = linktype
        self._handle = self.path.open("wb")
        self._handle.write(
            _GLOBAL_HEADER.pack(
                PCAP_MAGIC, 2, 4, 0, 0, snaplen, linktype
            )
        )
        self.packets_written = 0

    def write(self, packet: Packet) -> None:
        payload = packet.to_bytes()
        if self.linktype == LINKTYPE_ETHERNET:
            payload = _ethernet_frame(payload)
        seconds = int(packet.timestamp)
        micros = int(round((packet.timestamp - seconds) * 1_000_000))
        if micros >= 1_000_000:      # rounding can carry into the seconds
            seconds += 1
            micros -= 1_000_000
        self._handle.write(
            _RECORD_HEADER.pack(seconds, micros, len(payload), len(payload))
        )
        self._handle.write(payload)
        self.packets_written += 1

    def write_all(self, packets: Iterable[Packet]) -> int:
        for packet in packets:
            self.write(packet)
        return self.packets_written

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_pcap(path: str | Path) -> Iterator[Packet]:
    """Yield the IPv4 TCP/UDP packets of a pcap file.

    Non-IPv4 frames and packets our codec cannot parse (ICMP, fragments)
    are skipped — an SNI-extracting observer does the same.
    """
    data = Path(path).read_bytes()
    if len(data) < _GLOBAL_HEADER.size:
        raise PcapError("truncated global header")
    magic_le = struct.unpack_from("<I", data)[0]
    magic_be = struct.unpack_from(">I", data)[0]
    if magic_le == PCAP_MAGIC:
        endian = "<"
    elif magic_be == PCAP_MAGIC:
        endian = ">"
    else:
        raise PcapError(f"bad magic 0x{magic_le:08x}")
    header = struct.Struct(endian + "IHHiIII")
    record = struct.Struct(endian + "IIII")
    (_magic, major, _minor, _tz, _sig, _snaplen, linktype) = (
        header.unpack_from(data)
    )
    if major != 2:
        raise PcapError(f"unsupported pcap version {major}")
    if linktype not in (LINKTYPE_RAW, LINKTYPE_ETHERNET):
        raise PcapError(f"unsupported linktype {linktype}")

    offset = header.size
    while offset + record.size <= len(data):
        seconds, micros, caplen, origlen = record.unpack_from(data, offset)
        offset += record.size
        if offset + caplen > len(data):
            raise PcapError("truncated packet record")
        frame = data[offset:offset + caplen]
        offset += caplen
        if caplen < origlen:
            continue  # snapped packet: the payload is incomplete
        if linktype == LINKTYPE_ETHERNET:
            stripped = _strip_ethernet(frame)
            if stripped is None:
                continue
            frame = stripped
        try:
            yield Packet.from_bytes(
                frame, timestamp=seconds + micros / 1_000_000
            )
        except PacketError:
            continue


def write_pcap(
    path: str | Path,
    packets: Iterable[Packet],
    linktype: int = LINKTYPE_RAW,
) -> int:
    """Convenience: write ``packets`` to ``path``; returns the count."""
    with PcapWriter(path, linktype=linktype) as writer:
        return writer.write_all(packets)
