"""QUIC Initial packets carrying a ClientHello (RFC 9000 framing).

The paper (Section 7.2): "Both HTTPS and QUIC leak to a network observer
the hostname requested by the user in the SNI field ... [by] checking the
UDP datagrams of QUIC".  We model the part of QUIC an SNI-extracting
observer interacts with: the long-header Initial packet layout, variable-
length integers, and CRYPTO frames whose payload is the TLS ClientHello.

Simplification (documented in DESIGN.md): real Initial payloads are
protected with keys derived from the destination connection id; since that
protection is removable by any observer (the derivation is public, by
design), we transport the CRYPTO frames unprotected.  The parsing logic an
observer needs — header walk, varints, frame walk, ClientHello reassembly —
is identical.
"""

from __future__ import annotations

import struct

from repro.netobs.tls import TLSParseError, parse_client_hello_sni

QUIC_VERSION_1 = 0x00000001
FRAME_PADDING = 0x00
FRAME_PING = 0x01
FRAME_CRYPTO = 0x06
_LONG_HEADER_BIT = 0x80
_FIXED_BIT = 0x40
_INITIAL_TYPE = 0x00


class QUICParseError(ValueError):
    """Raised when bytes are not a parseable QUIC Initial."""


def encode_varint(value: int) -> bytes:
    """RFC 9000 variable-length integer (2-bit length prefix)."""
    if value < 0:
        raise ValueError("varint cannot be negative")
    if value < 1 << 6:
        return bytes([value])
    if value < 1 << 14:
        return struct.pack("!H", value | 0x4000)
    if value < 1 << 30:
        return struct.pack("!I", value | 0x80000000)
    if value < 1 << 62:
        return struct.pack("!Q", value | 0xC000000000000000)
    raise ValueError("varint out of range (max 2^62 - 1)")


def decode_varint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint at ``offset``; returns (value, bytes consumed)."""
    if offset >= len(data):
        raise QUICParseError("truncated varint")
    prefix = data[offset] >> 6
    length = 1 << prefix
    if offset + length > len(data):
        raise QUICParseError("truncated varint body")
    value = data[offset] & 0x3F
    for i in range(1, length):
        value = (value << 8) | data[offset + i]
    return value, length


def build_initial_packet(
    hostname: str | None,
    dcid: bytes = b"\x01\x02\x03\x04\x05\x06\x07\x08",
    scid: bytes = b"\xaa\xbb\xcc\xdd",
    pad_to: int = 1200,
) -> bytes:
    """A QUIC v1 Initial whose CRYPTO frame carries a ClientHello.

    Padded to ``pad_to`` bytes as RFC 9000 requires of client Initials.
    """
    if len(dcid) > 20 or len(scid) > 20:
        raise ValueError("connection ids must be <= 20 bytes")
    from repro.netobs.tls import build_client_hello

    client_hello_record = build_client_hello(hostname)
    # CRYPTO frames carry the handshake *without* the 5-byte record layer.
    crypto_payload = client_hello_record[5:]
    frame = (
        bytes([FRAME_CRYPTO])
        + encode_varint(0)                       # offset
        + encode_varint(len(crypto_payload))
        + crypto_payload
    )
    packet_number = b"\x00"
    payload = frame
    header = (
        bytes([_LONG_HEADER_BIT | _FIXED_BIT | (_INITIAL_TYPE << 4)])
        + struct.pack("!I", QUIC_VERSION_1)
        + bytes([len(dcid)]) + dcid
        + bytes([len(scid)]) + scid
        + encode_varint(0)                       # token length
    )
    body = packet_number + payload
    packet = header + encode_varint(len(body)) + body
    if len(packet) < pad_to:
        packet += bytes(pad_to - len(packet))    # PADDING frames (0x00)
    return packet


def parse_initial_sni(datagram: bytes) -> str | None:
    """Walk a QUIC Initial datagram and extract the SNI, if any.

    Returns None for Initials without SNI; raises :class:`QUICParseError`
    for malformed or non-Initial datagrams.
    """
    if not datagram:
        raise QUICParseError("empty datagram")
    first = datagram[0]
    if not first & _LONG_HEADER_BIT:
        raise QUICParseError("not a long-header packet")
    if (first & 0x30) >> 4 != _INITIAL_TYPE:
        raise QUICParseError("not an Initial packet")
    pos = 1
    if pos + 4 > len(datagram):
        raise QUICParseError("truncated version")
    version = struct.unpack_from("!I", datagram, pos)[0]
    if version != QUIC_VERSION_1:
        raise QUICParseError(f"unsupported QUIC version 0x{version:08x}")
    pos += 4

    for _ in range(2):                           # DCID then SCID
        if pos >= len(datagram):
            raise QUICParseError("truncated connection id length")
        cid_length = datagram[pos]
        pos += 1 + cid_length
        if pos > len(datagram):
            raise QUICParseError("truncated connection id")

    token_length, consumed = decode_varint(datagram, pos)
    pos += consumed + token_length
    length, consumed = decode_varint(datagram, pos)
    pos += consumed
    if pos + length > len(datagram):
        raise QUICParseError("truncated packet body")
    body = datagram[pos:pos + length]

    # Skip the (1-byte, in our builder) packet number, then walk frames.
    frames = body[1:]
    fpos = 0
    crypto_chunks: list[tuple[int, bytes]] = []
    while fpos < len(frames):
        frame_type = frames[fpos]
        if frame_type == FRAME_PADDING or frame_type == FRAME_PING:
            fpos += 1
            continue
        if frame_type == FRAME_CRYPTO:
            fpos += 1
            offset, consumed = decode_varint(frames, fpos)
            fpos += consumed
            data_length, consumed = decode_varint(frames, fpos)
            fpos += consumed
            if fpos + data_length > len(frames):
                raise QUICParseError("truncated CRYPTO frame")
            crypto_chunks.append(
                (offset, frames[fpos:fpos + data_length])
            )
            fpos += data_length
            continue
        # Unknown frame: an Initial from our builder never contains one,
        # and a real observer would need the full frame grammar; stop.
        break

    if not crypto_chunks:
        return None
    crypto_chunks.sort(key=lambda c: c[0])
    handshake = b"".join(chunk for _, chunk in crypto_chunks)
    # Re-wrap as a TLS record for the shared ClientHello parser.
    record = bytes([22]) + b"\x03\x01" + struct.pack("!H", len(handshake)) \
        + handshake
    try:
        return parse_client_hello_sni(record)
    except TLSParseError as exc:
        raise QUICParseError(f"bad ClientHello in CRYPTO frame: {exc}") from exc
