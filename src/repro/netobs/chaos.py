"""Deterministic fault injection for the observer substrate.

Real wire data is lossy, reordered and partially corrupt; the chaos engine
manufactures exactly that, reproducibly, so tests can prove the runtime
degrades gracefully.  Given a clean packet stream it injects:

* **corruption** — the payload of a parseable handshake/query packet is
  replaced by a poison that is *guaranteed* to raise in the matching
  parser (so quarantine counters can be asserted exactly);
* **truncation** — the payload is cut mid-header, same guarantee;
* **duplication** — the packet is delivered twice (flow dedup must absorb
  it);
* **drops** — the packet never arrives;
* **reordering** — delivery is delayed by a bounded random amount, so the
  stream sees bounded out-of-order arrivals with original timestamps;
* **clock skew** — the timestamp itself is shifted backwards, modelling a
  misbehaving capture clock.

Every decision draws from one seeded generator: same seed, same faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.netobs.flows import PORT_DNS, PORT_HTTPS
from repro.netobs.packets import IP_PROTO_TCP, IP_PROTO_UDP, Packet
from repro.utils.randomness import derive_rng

# Poison payloads per parser path.  Each keeps the demultiplexing prefix
# intact (content type / long-header bit) so the parser is entered, then
# fails: TLS promises a 0xffff-byte record it doesn't carry; QUIC claims
# version 0; DNS ends inside its fixed header.
_POISON_TLS = b"\x16\x03\x01\xff\xff" + bytes(8)
_POISON_QUIC = b"\xc0\x00\x00\x00\x00" + bytes(8)
_POISON_DNS = b"\x00\x00\x01"
_TRUNCATE_BYTES = 4


@dataclass
class ChaosConfig:
    """Fault mix; fractions are per-packet probabilities."""

    corrupt_fraction: float = 0.0
    truncate_fraction: float = 0.0
    duplicate_fraction: float = 0.0
    drop_fraction: float = 0.0
    reorder_fraction: float = 0.0
    reorder_max_delay_seconds: float = 1.0
    clock_skew_fraction: float = 0.0
    clock_skew_seconds: float = 0.0
    seed: int = 0

    def validate(self) -> None:
        fractions = (
            "corrupt_fraction", "truncate_fraction", "duplicate_fraction",
            "drop_fraction", "reorder_fraction", "clock_skew_fraction",
        )
        for name in fractions:
            if not 0 <= getattr(self, name) <= 1:
                raise ValueError(f"{name} must be in [0, 1]")
        total = (
            self.corrupt_fraction + self.truncate_fraction
            + self.duplicate_fraction + self.drop_fraction
        )
        if total > 1:
            raise ValueError(
                "corrupt + truncate + duplicate + drop fractions exceed 1"
            )
        if self.reorder_max_delay_seconds < 0:
            raise ValueError("reorder_max_delay_seconds must be >= 0")
        if self.clock_skew_seconds < 0:
            raise ValueError("clock_skew_seconds must be >= 0")


@dataclass
class ChaosStats:
    """Exactly what was injected — the ground truth tests assert against."""

    packets_seen: int = 0
    corrupted: int = 0
    truncated: int = 0
    duplicated: int = 0
    dropped: int = 0
    reordered: int = 0
    skewed: int = 0


def _poison_for(packet: Packet) -> bytes | None:
    """The guaranteed-to-fail payload for this packet's parser path.

    Returns None for packets no parser ever touches (follow-up flow data,
    unknown ports): corrupting those would be invisible, which would break
    the fault-count-equals-quarantine-count contract.
    """
    if (
        packet.protocol == IP_PROTO_TCP
        and packet.dst_port == PORT_HTTPS
        and packet.payload[:1] == b"\x16"
    ):
        return _POISON_TLS
    if (
        packet.protocol == IP_PROTO_UDP
        and packet.dst_port == PORT_HTTPS
        and packet.payload
        and packet.payload[0] & 0x80
    ):
        return _POISON_QUIC
    if packet.protocol == IP_PROTO_UDP and packet.dst_port == PORT_DNS:
        return _POISON_DNS
    return None


class ChaosEngine:
    """Applies a seeded fault mix to a packet stream."""

    def __init__(self, config: ChaosConfig | None = None):
        self.config = config or ChaosConfig()
        self.config.validate()
        self._rng = derive_rng(self.config.seed, "chaos")
        self.stats = ChaosStats()

    def _mutate(self, packet: Packet, payload: bytes) -> Packet:
        return Packet(
            src_ip=packet.src_ip,
            dst_ip=packet.dst_ip,
            protocol=packet.protocol,
            src_port=packet.src_port,
            dst_port=packet.dst_port,
            payload=payload,
            timestamp=packet.timestamp,
        )

    def apply(self, packets: Iterable[Packet]) -> list[Packet]:
        """Injected copy of ``packets`` in (possibly reordered) arrival order.

        Content faults (corrupt/truncate/duplicate/drop) are mutually
        exclusive per packet; timing faults (reorder, skew) compose with
        any of them.  Corruption and truncation only ever target packets a
        parser would actually read, so every such fault produces exactly
        one parse failure downstream.
        """
        cfg = self.config
        arrivals: list[tuple[float, int, Packet]] = []
        sequence = 0

        def deliver(packet: Packet, arrival: float) -> None:
            nonlocal sequence
            arrivals.append((arrival, sequence, packet))
            sequence += 1

        for packet in packets:
            self.stats.packets_seen += 1
            # Arrival position is anchored to the true wire time: a packet
            # whose *timestamp* is skewed backwards still arrives where it
            # really was, which is exactly what makes it look out-of-order.
            wire_time = packet.timestamp
            roll = float(self._rng.random())
            poison = _poison_for(packet)

            if roll < cfg.drop_fraction:
                self.stats.dropped += 1
                continue
            roll -= cfg.drop_fraction
            faulted = packet
            if roll < cfg.corrupt_fraction:
                if poison is not None:
                    faulted = self._mutate(packet, poison)
                    self.stats.corrupted += 1
            elif roll - cfg.corrupt_fraction < cfg.truncate_fraction:
                if poison is not None:
                    faulted = self._mutate(
                        packet, packet.payload[:_TRUNCATE_BYTES]
                    )
                    self.stats.truncated += 1
            elif (
                roll - cfg.corrupt_fraction - cfg.truncate_fraction
                < cfg.duplicate_fraction
            ):
                self.stats.duplicated += 1
                deliver(faulted, wire_time)

            if (
                cfg.clock_skew_fraction
                and float(self._rng.random()) < cfg.clock_skew_fraction
            ):
                skewed = max(0.0, faulted.timestamp - cfg.clock_skew_seconds)
                if skewed != faulted.timestamp:
                    faulted = Packet(
                        src_ip=faulted.src_ip,
                        dst_ip=faulted.dst_ip,
                        protocol=faulted.protocol,
                        src_port=faulted.src_port,
                        dst_port=faulted.dst_port,
                        payload=faulted.payload,
                        timestamp=skewed,
                    )
                    self.stats.skewed += 1

            delay = 0.0
            if (
                cfg.reorder_fraction
                and float(self._rng.random()) < cfg.reorder_fraction
            ):
                delay = float(
                    self._rng.uniform(0.0, cfg.reorder_max_delay_seconds)
                )
                if delay > 0:
                    self.stats.reordered += 1
            deliver(faulted, wire_time + delay)

        arrivals.sort(key=lambda entry: (entry[0], entry[1]))
        return [packet for _, _, packet in arrivals]
