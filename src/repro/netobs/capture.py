"""Traffic synthesis: what the wire would carry for a browsing trace.

Bridges the traffic substrate and the observer substrate: every abstract
:class:`Request` becomes the packets a real client would emit — usually a
DNS query, then a TLS ClientHello over TCP 443 (or a QUIC Initial over UDP
443), then follow-up packets of the same flow that carry no SNI and must
not produce duplicate events.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.netobs.packets import IP_PROTO_TCP, IP_PROTO_UDP, Packet
from repro.netobs.quic import build_initial_packet
from repro.netobs.tls import build_client_hello
from repro.netobs.dnswire import build_query
from repro.obs.logging import get_logger
from repro.traffic.categories import SHARED_CDN_SLDS
from repro.traffic.events import Request
from repro.utils.hostnames import registrable_domain
from repro.utils.randomness import derive_rng

RESOLVER_IP = "9.9.9.9"

log = get_logger("netobs.capture")


@dataclass
class CaptureConfig:
    """Mix of protocols the synthetic clients speak."""

    quic_fraction: float = 0.25   # share of requests using QUIC, not TCP
    dns_fraction: float = 0.8     # share of requests preceded by a query
    # Extra same-flow packets after the handshake (application data the
    # observer must ignore).
    followup_packets: int = 2
    client_subnet: str = "10.0"   # clients live in 10.0.0.0/16

    def validate(self) -> None:
        for name in ("quic_fraction", "dns_fraction"):
            if not 0 <= getattr(self, name) <= 1:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.followup_packets < 0:
            raise ValueError("followup_packets must be >= 0")


class TrafficSynthesizer:
    """Deterministically turns requests into byte-accurate packets."""

    def __init__(self, seed: int = 0, config: CaptureConfig | None = None):
        self.seed = int(seed)
        self.config = config or CaptureConfig()
        self.config.validate()
        self._rng = derive_rng(self.seed, "capture")
        self._next_port: dict[int, int] = {}
        self._server_ips: dict[str, str] = {}

    def client_ip(self, user_id: int) -> str:
        """Stable per-user client address in the configured subnet.

        The prefix length sets the population the capture can carry: the
        default ``"10.0"`` (/16) addresses 65536 clients; million-user
        worlds use ``"10"`` (/8) for 16.7M.
        """
        prefix_octets = self.config.client_subnet.split(".")
        free_octets = 4 - len(prefix_octets)
        capacity = 256 ** free_octets
        if not 0 <= user_id < capacity:
            raise ValueError(
                f"user_id must fit the /{8 * len(prefix_octets)} client "
                f"subnet {self.config.client_subnet} "
                f"({capacity} addresses)"
            )
        octets, value = [], user_id
        for _ in range(free_octets):
            octets.append(str(value % 256))
            value //= 256
        return ".".join(prefix_octets + octets[::-1])

    def server_ip(self, hostname: str) -> str:
        """Stable fake server address per hostname (hash-derived).

        Hostnames under a shared-CDN second-level domain resolve into a
        small per-CDN address pool — as real CDNs do — so an IP-only
        observer cannot tell which site's content a CDN connection
        fetched.  Other hostnames get their own address.
        """
        if hostname not in self._server_ips:
            sld = registrable_domain(hostname)
            if sld in SHARED_CDN_SLDS:
                # one of 8 front-end addresses per CDN
                pool_slot = int.from_bytes(
                    hashlib.sha256(hostname.encode()).digest()[:2], "little"
                ) % 8
                cdn_index = SHARED_CDN_SLDS.index(sld)
                address = f"203.0.{cdn_index + 1}.{pool_slot + 1}"
            else:
                digest = int.from_bytes(
                    hashlib.sha256(hostname.encode()).digest()[:4], "little"
                )
                address = (
                    f"198.{digest % 64 + 18}.{digest // 64 % 256}"
                    f".{digest // 16384 % 254 + 1}"
                )
            self._server_ips[hostname] = address
        return self._server_ips[hostname]

    def _ephemeral_port(self, user_id: int) -> int:
        port = self._next_port.get(user_id, 49152)
        self._next_port[user_id] = 49152 + (port - 49152 + 1) % 16000
        return port

    def packets_for_request(self, request: Request) -> list[Packet]:
        """All packets one hostname request puts on the wire."""
        cfg = self.config
        client = self.client_ip(request.user_id)
        server = self.server_ip(request.hostname)
        packets: list[Packet] = []
        t = request.timestamp

        if self._rng.random() < cfg.dns_fraction:
            packets.append(
                Packet(
                    src_ip=client,
                    dst_ip=RESOLVER_IP,
                    protocol=IP_PROTO_UDP,
                    src_port=self._ephemeral_port(request.user_id),
                    dst_port=53,
                    payload=build_query(
                        request.hostname,
                        query_id=int(self._rng.integers(0, 65536)),
                    ),
                    timestamp=t,
                )
            )
            t += 0.02

        src_port = self._ephemeral_port(request.user_id)
        use_quic = self._rng.random() < cfg.quic_fraction
        if use_quic:
            packets.append(
                Packet(
                    src_ip=client,
                    dst_ip=server,
                    protocol=IP_PROTO_UDP,
                    src_port=src_port,
                    dst_port=443,
                    payload=build_initial_packet(request.hostname),
                    timestamp=t,
                )
            )
        else:
            random_bytes = self._rng.bytes(32)
            packets.append(
                Packet(
                    src_ip=client,
                    dst_ip=server,
                    protocol=IP_PROTO_TCP,
                    src_port=src_port,
                    dst_port=443,
                    payload=build_client_hello(
                        request.hostname, random_bytes=random_bytes
                    ),
                    timestamp=t,
                )
            )
        # Follow-up application data on the same flow: protected records
        # the observer cannot read and must not double-count.
        for i in range(cfg.followup_packets):
            packets.append(
                Packet(
                    src_ip=client,
                    dst_ip=server,
                    protocol=IP_PROTO_UDP if use_quic else IP_PROTO_TCP,
                    src_port=src_port,
                    dst_port=443,
                    payload=(
                        b"\x17\x03\x03\x00\x10" + bytes(16)
                        if not use_quic
                        else b"\x40" + bytes(24)  # short-header QUIC
                    ),
                    timestamp=t + 0.05 * (i + 1),
                )
            )
        return packets

    def synthesize(self, requests: Iterable[Request]) -> Iterator[Packet]:
        """Packet stream for a request stream (per-request time order)."""
        n_requests = 0
        n_packets = 0
        for request in requests:
            n_requests += 1
            for packet in self.packets_for_request(request):
                n_packets += 1
                yield packet
        log.debug(
            "traffic synthesized",
            requests=n_requests, packets=n_packets, seed=self.seed,
        )
