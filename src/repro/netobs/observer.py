"""The network observer: packets in, per-client hostname sequences out.

This is the eavesdropper's front-end.  It demultiplexes packets through a
:class:`FlowTable`, keeps per-client time-ordered hostname sequences, and
exports them in the representation the profiling core consumes.  The
``vantage`` setting selects what kind of observer is simulated:

* ``"sni"``   — an on-path ISP/WiFi observer reading TLS and QUIC SNI;
* ``"dns"``   — a DNS resolver operator seeing only queries;
* ``"all"``   — both signals (an ISP that also runs the resolver).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, replace

from repro.netobs.dnswire import DNSParseError
from repro.netobs.flows import FlowTable, HostnameEvent
from repro.netobs.packets import Packet, PacketError
from repro.netobs.quarantine import Quarantine
from repro.netobs.quic import QUICParseError
from repro.netobs.tls import TLSParseError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_TRACER, HeadSampler, Tracer, use_trace
from repro.traffic.events import HostKind, Request

# Malformed-input errors the observer quarantines instead of propagating.
_WIRE_ERRORS = (TLSParseError, QUICParseError, DNSParseError, PacketError)

_VANTAGE_SOURCES = {
    "sni": {"tls-sni", "quic-sni"},
    "dns": {"dns"},
    "all": {"tls-sni", "quic-sni", "dns"},
    # Encrypted-SNI world (Section 7.2): only destination addresses leak.
    "ip": {"ip"},
}


@dataclass
class ObserverConfig:
    vantage: str = "sni"
    max_flows: int = 1_000_000
    # Dead-letter buffer for malformed input (see repro.netobs.quarantine):
    # how many offending payloads to retain, and how many leading bytes of
    # each.  Counters are unbounded either way.
    quarantine_capacity: int = 256
    quarantine_sample_bytes: int = 64

    def validate(self) -> None:
        if self.vantage not in _VANTAGE_SOURCES:
            raise ValueError(
                f"vantage must be one of {sorted(_VANTAGE_SOURCES)}, "
                f"got {self.vantage!r}"
            )
        if self.max_flows <= 0:
            raise ValueError(f"max_flows must be positive, got {self.max_flows}")
        if self.quarantine_capacity < 0:
            raise ValueError("quarantine_capacity must be >= 0")
        if self.quarantine_sample_bytes < 0:
            raise ValueError("quarantine_sample_bytes must be >= 0")


class NetworkObserver:
    """Accumulates hostname events per client from a packet stream."""

    def __init__(
        self,
        config: ObserverConfig | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        trace_sampler: HeadSampler | None = None,
    ):
        self.config = config or ObserverConfig()
        self.config.validate()
        self._accepted_sources = _VANTAGE_SOURCES[self.config.vantage]
        # Request-scoped tracing: ``trace_sampler`` decides per client
        # (deterministically) whether a packet's ingest starts a trace;
        # the resulting context rides out on ``HostnameEvent.trace`` so
        # downstream consumers join the same trace tree.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.trace_sampler = trace_sampler
        # One registry covers the observer, its flow table and quarantine;
        # pass a shared one to fold them into a pipeline-wide export.
        self.registry = registry if registry is not None else MetricsRegistry()
        self.quarantine = Quarantine(
            capacity=self.config.quarantine_capacity,
            sample_bytes=self.config.quarantine_sample_bytes,
            registry=self.registry,
        )
        self.flow_table = FlowTable(
            max_flows=self.config.max_flows,
            ip_only=self.config.vantage == "ip",
            quarantine=self.quarantine,
            registry=self.registry,
        )
        if not self.tracer.null:
            self.flow_table.tracer = self.tracer
        self._events: dict[str, list[HostnameEvent]] = defaultdict(list)
        self._clients_gauge = self.registry.gauge(
            "netobs_clients",
            "Distinct client addresses with at least one hostname event.",
        )
        self._vantage_filtered_total = self.registry.counter(
            "netobs_events_outside_vantage_total",
            "Events discarded because their source is outside the vantage.",
        )

    def ingest(self, packet: Packet) -> HostnameEvent | None:
        """Feed one packet; store and return its event, if any.

        Never raises on malformed payloads: wire-format errors are counted
        and sampled into :attr:`quarantine`, and the packet is skipped —
        a live observer must survive whatever the wire carries.

        With a ``trace_sampler``, a sampled client's packet opens a
        ``netobs.ingest`` root span (flow-table work becomes its child)
        and the emitted event carries the trace context onward.
        """
        if self.trace_sampler is None or self.tracer.null:
            return self._ingest(packet)
        ctx = self.trace_sampler.start(packet.src_ip)
        if ctx is None:
            return self._ingest(packet)
        with use_trace(ctx):
            with self.tracer.span(
                "netobs.ingest", client=packet.src_ip
            ) as span:
                event = self._ingest(packet)
        if event is None:
            return None
        # Downstream spans become children of the ingest span.
        return replace(event, trace=ctx.child(span.span_id))

    def _ingest(self, packet: Packet) -> HostnameEvent | None:
        try:
            event = self.flow_table.observe(packet)
        except _WIRE_ERRORS as error:
            # The flow table quarantines parse failures on its known paths;
            # this is the backstop for anything that still escapes.
            self.quarantine.admit(
                error, packet.payload,
                timestamp=packet.timestamp, context="observe",
            )
            return None
        if event is None:
            return None
        if event.source not in self._accepted_sources:
            self._vantage_filtered_total.inc()
            return None
        self._events[event.client_ip].append(event)
        self._clients_gauge.set(len(self._events))
        return event

    def ingest_bytes(
        self, data: bytes, timestamp: float = 0.0
    ) -> HostnameEvent | None:
        """Feed one raw IPv4 packet (as captured off the wire).

        Undecodable packets are quarantined, not raised.
        """
        try:
            packet = Packet.from_bytes(data, timestamp=timestamp)
        except PacketError as error:
            self.quarantine.admit(
                error, data, timestamp=timestamp, context="ingest-bytes"
            )
            return None
        return self.ingest(packet)

    def ingest_many(self, packets) -> list[HostnameEvent]:
        events = []
        for packet in packets:
            event = self.ingest(packet)
            if event is not None:
                events.append(event)
        return events

    # -- exports ---------------------------------------------------------------

    @property
    def clients(self) -> list[str]:
        return sorted(self._events)

    def events_for(self, client_ip: str) -> list[HostnameEvent]:
        return list(self._events.get(client_ip, []))

    def client_sequences(self) -> dict[str, list[tuple[float, str]]]:
        """Per-client time-ordered (timestamp, hostname) sequences."""
        return {
            client: [(e.timestamp, e.hostname) for e in events]
            for client, events in self._events.items()
        }

    def as_requests(
        self, user_of_client: dict[str, int] | None = None
    ) -> dict[int, list[Request]]:
        """Convert observations into the profiling core's request streams.

        Without a mapping, clients get dense pseudo user ids in sorted-IP
        order — which is all a real eavesdropper has anyway.  Host kind is
        unknown to an observer, so every request is marked SITE.
        """
        if user_of_client is None:
            user_of_client = {
                ip: index for index, ip in enumerate(self.clients)
            }
        streams: dict[int, list[Request]] = defaultdict(list)
        for client, events in self._events.items():
            if client not in user_of_client:
                continue
            user_id = user_of_client[client]
            for event in events:
                streams[user_id].append(
                    Request(
                        user_id=user_id,
                        timestamp=event.timestamp,
                        hostname=event.hostname,
                        kind=HostKind.SITE,
                        site_domain=event.hostname,
                    )
                )
        for stream in streams.values():
            stream.sort(key=lambda r: r.timestamp)
        return dict(streams)
