"""The network observer: packets in, per-client hostname sequences out.

This is the eavesdropper's front-end.  It demultiplexes packets through a
:class:`FlowTable`, keeps per-client time-ordered hostname sequences, and
exports them in the representation the profiling core consumes.  The
``vantage`` setting selects what kind of observer is simulated:

* ``"sni"``   — an on-path ISP/WiFi observer reading TLS and QUIC SNI;
* ``"dns"``   — a DNS resolver operator seeing only queries;
* ``"all"``   — both signals (an ISP that also runs the resolver).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.netobs.flows import FlowTable, HostnameEvent
from repro.netobs.packets import Packet
from repro.traffic.events import HostKind, Request

_VANTAGE_SOURCES = {
    "sni": {"tls-sni", "quic-sni"},
    "dns": {"dns"},
    "all": {"tls-sni", "quic-sni", "dns"},
    # Encrypted-SNI world (Section 7.2): only destination addresses leak.
    "ip": {"ip"},
}


@dataclass
class ObserverConfig:
    vantage: str = "sni"
    max_flows: int = 1_000_000

    def validate(self) -> None:
        if self.vantage not in _VANTAGE_SOURCES:
            raise ValueError(
                f"vantage must be one of {sorted(_VANTAGE_SOURCES)}, "
                f"got {self.vantage!r}"
            )


class NetworkObserver:
    """Accumulates hostname events per client from a packet stream."""

    def __init__(self, config: ObserverConfig | None = None):
        self.config = config or ObserverConfig()
        self.config.validate()
        self._accepted_sources = _VANTAGE_SOURCES[self.config.vantage]
        self.flow_table = FlowTable(
            max_flows=self.config.max_flows,
            ip_only=self.config.vantage == "ip",
        )
        self._events: dict[str, list[HostnameEvent]] = defaultdict(list)

    def ingest(self, packet: Packet) -> HostnameEvent | None:
        """Feed one packet; store and return its event, if any."""
        event = self.flow_table.observe(packet)
        if event is None or event.source not in self._accepted_sources:
            return None
        self._events[event.client_ip].append(event)
        return event

    def ingest_bytes(
        self, data: bytes, timestamp: float = 0.0
    ) -> HostnameEvent | None:
        """Feed one raw IPv4 packet (as captured off the wire)."""
        return self.ingest(Packet.from_bytes(data, timestamp=timestamp))

    def ingest_many(self, packets) -> list[HostnameEvent]:
        events = []
        for packet in packets:
            event = self.ingest(packet)
            if event is not None:
                events.append(event)
        return events

    # -- exports ---------------------------------------------------------------

    @property
    def clients(self) -> list[str]:
        return sorted(self._events)

    def events_for(self, client_ip: str) -> list[HostnameEvent]:
        return list(self._events.get(client_ip, []))

    def client_sequences(self) -> dict[str, list[tuple[float, str]]]:
        """Per-client time-ordered (timestamp, hostname) sequences."""
        return {
            client: [(e.timestamp, e.hostname) for e in events]
            for client, events in self._events.items()
        }

    def as_requests(
        self, user_of_client: dict[str, int] | None = None
    ) -> dict[int, list[Request]]:
        """Convert observations into the profiling core's request streams.

        Without a mapping, clients get dense pseudo user ids in sorted-IP
        order — which is all a real eavesdropper has anyway.  Host kind is
        unknown to an observer, so every request is marked SITE.
        """
        if user_of_client is None:
            user_of_client = {
                ip: index for index, ip in enumerate(self.clients)
            }
        streams: dict[int, list[Request]] = defaultdict(list)
        for client, events in self._events.items():
            if client not in user_of_client:
                continue
            user_id = user_of_client[client]
            for event in events:
                streams[user_id].append(
                    Request(
                        user_id=user_id,
                        timestamp=event.timestamp,
                        hostname=event.hostname,
                        kind=HostKind.SITE,
                        site_domain=event.hostname,
                    )
                )
        for stream in streams.values():
            stream.sort(key=lambda r: r.timestamp)
        return dict(streams)
