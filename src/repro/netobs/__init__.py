"""Network-observer substrate: wire formats, flow tracking, vantages.

What a passive eavesdropper actually runs: IPv4/TCP/UDP codecs, TLS
ClientHello SNI extraction (RFC 6066), QUIC Initial parsing (RFC 9000),
DNS query parsing (RFC 1035), per-flow hostname deduplication, NAT-merged
clients, and a synthesizer that turns abstract browsing traces into the
byte-accurate packets these parsers consume.
"""

from repro.netobs.capture import CaptureConfig, RESOLVER_IP, TrafficSynthesizer
from repro.netobs.chaos import ChaosConfig, ChaosEngine, ChaosStats
from repro.netobs.dnswire import (
    DNSParseError,
    build_query,
    decode_qname,
    encode_qname,
    parse_query,
)
from repro.netobs.flows import FlowStats, FlowTable, HostnameEvent
from repro.netobs.nat import NatBox, NatExhaustionError, NatStats
from repro.netobs.observer import NetworkObserver, ObserverConfig
from repro.netobs.pcap import (
    LINKTYPE_ETHERNET,
    LINKTYPE_RAW,
    PcapError,
    PcapWriter,
    read_pcap,
    write_pcap,
)
from repro.netobs.packets import (
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    Packet,
    PacketError,
    checksum16,
)
from repro.netobs.quarantine import Quarantine, QuarantineRecord
from repro.netobs.quic import (
    QUICParseError,
    build_initial_packet,
    decode_varint,
    encode_varint,
    parse_initial_sni,
)
from repro.netobs.tls import (
    TLSParseError,
    build_client_hello,
    build_sni_extension,
    parse_client_hello_sni,
)

__all__ = [
    "CaptureConfig",
    "ChaosConfig",
    "ChaosEngine",
    "ChaosStats",
    "DNSParseError",
    "FlowStats",
    "FlowTable",
    "HostnameEvent",
    "IP_PROTO_TCP",
    "IP_PROTO_UDP",
    "LINKTYPE_ETHERNET",
    "LINKTYPE_RAW",
    "NatBox",
    "NatExhaustionError",
    "NatStats",
    "NetworkObserver",
    "ObserverConfig",
    "Packet",
    "PacketError",
    "PcapError",
    "PcapWriter",
    "QUICParseError",
    "Quarantine",
    "QuarantineRecord",
    "RESOLVER_IP",
    "TLSParseError",
    "TrafficSynthesizer",
    "build_client_hello",
    "build_initial_packet",
    "build_query",
    "build_sni_extension",
    "checksum16",
    "decode_qname",
    "decode_varint",
    "encode_qname",
    "encode_varint",
    "parse_client_hello_sni",
    "parse_initial_sni",
    "parse_query",
    "read_pcap",
    "write_pcap",
]
